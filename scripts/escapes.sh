#!/usr/bin/env bash
# escapes.sh — compiler-truth escape-analysis gate for the hot packages.
#
# simlint's hotpath/hotcall analyzers enforce the repo's allocation
# discipline structurally, but the compiler's escape analysis is the
# ground truth for what actually reaches the heap. This gate freezes
# that truth: it runs `go build -gcflags=-m` over the three packages on
# the packet hot path (internal/sim, internal/network, internal/routing),
# keeps the "escapes to heap" / "moved to heap" verdicts, and diffs them
# against the checked-in golden (scripts/escapes.golden).
#
# A diff is not automatically a bug — a new deliberate cold-path
# allocation legitimately grows the golden — but it must be a conscious
# decision: regenerate with `scripts/escapes.sh -update` and let review
# see exactly which values started escaping. An UNintentional diff is
# the compiler telling you a refactor un-stack-allocated something that
# simlint's structural rules could not see (e.g. a closure that started
# capturing by reference, or an interface conversion the inliner no
# longer eliminates).
#
# Line/column numbers are stripped so unrelated edits above an
# allocation don't churn the golden; entries are keyed by file and
# diagnostic text, sorted. Diagnostics replay from the build cache, so
# repeat runs are cheap.
#
# Usage: scripts/escapes.sh [-update]
set -euo pipefail
cd "$(dirname "$0")/.."

golden=scripts/escapes.golden
pkgs=(repro/internal/sim repro/internal/network repro/internal/routing)

# -gcflags without a package pattern applies only to the packages named
# on the command line, so dependencies compile normally (and stay cached).
actual=$(go build -gcflags=-m "${pkgs[@]}" 2>&1 |
	grep -E 'escapes to heap|moved to heap' |
	sed -E 's/^([^:]+):[0-9]+:[0-9]+:/\1:/' |
	LC_ALL=C sort -u)

if [[ "${1:-}" == "-update" ]]; then
	printf '%s\n' "$actual" >"$golden"
	echo "escapes.golden updated: $(printf '%s\n' "$actual" | wc -l | tr -d ' ') entries" >&2
	exit 0
fi

if ! diff -u "$golden" <(printf '%s\n' "$actual"); then
	cat >&2 <<'EOF'

escape-analysis drift against scripts/escapes.golden (see above).
  lines starting with '+' are new heap escapes; '-' lines stopped escaping.
  If the change is intentional, regenerate: scripts/escapes.sh -update
EOF
	exit 1
fi
echo "escape golden clean" >&2
