#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and emit BENCH_3.json.
#
# Measures the three layers of the zero-allocation packet path (kernel
# event dispatch, routing decision, end-to-end packet delivery) plus the
# ensemble worker sweep (-j 1,2,4,8), all with -benchmem, and writes a
# machine-readable summary next to the repo root. The baseline_pre_pr
# block in the output is the recorded pre-optimization measurement
# (commit 67da470, same benchmark definitions) that the current numbers
# are compared against. host_cpus is recorded because the scaling curve
# is only meaningful where the host allows real parallelism: on a 1-CPU
# machine every -j point collapses onto sequential throughput.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-BENCH_3.json}

echo "== sim benchmarks ==" >&2
sim=$(go test -run xxx -bench 'BenchmarkEventThroughput$|BenchmarkTypedEventThroughput' \
	-benchmem -benchtime 2s ./internal/sim/)
echo "== network benchmarks ==" >&2
net=$(go test -run xxx -bench 'BenchmarkPacketDelivery|BenchmarkAdaptiveRoute$|BenchmarkRouteInto' \
	-benchmem ./internal/network/)
echo "== ensemble worker sweep (slow) ==" >&2
ens=$(go test -run xxx -bench 'BenchmarkEnsembleSequential$|BenchmarkEnsembleWorkers' \
	-benchtime 3x -benchmem -timeout 60m .)

SIM_OUT="$sim" NET_OUT="$net" ENS_OUT="$ens" OUT="$out" python3 - << 'EOF'
import json, os, re

def parse(block):
    rows = {}
    for line in block.splitlines():
        m = re.match(r'(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)', line.strip())
        if not m:
            continue
        name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
        row = {'ns_op': ns}
        for val, unit in re.findall(r'([\d.]+) (\S+)', rest):
            row[unit.replace('/', '_per_')] = float(val)
        rows[name] = row
    return rows

sim = parse(os.environ['SIM_OUT'])
net = parse(os.environ['NET_OUT'])
ens = parse(os.environ['ENS_OUT'])

pkt = net['BenchmarkPacketDelivery']
seq = ens['BenchmarkEnsembleSequential']

# Pre-optimization numbers (commit 67da470, BENCH_2.json "current"),
# same machine and benchmark definitions, recorded before machine reuse
# and same-timestamp event batching landed.
baseline = {
    'commit': '67da470',
    'ensemble_sequential_ns_op': 5128026221,
    'ensemble_sequential_B_op': 100535106,
    'ensemble_sequential_allocs_op': 622741,
    'ensemble_parallel_ns_op': 6322861396,
    'ensemble_parallel_speedup': 0.81,
    'packet_delivery_ns_op': 9757,
    'events_per_packet': 22.68,
    'adaptive_route_ns_op': 748.2,
    'typed_event_ns_op': 10.72,
}

workers = {}
for j in (1, 2, 4, 8):
    row = ens.get(f'BenchmarkEnsembleWorkers/j{j}')
    if row:
        workers[f'j{j}'] = {
            'ns_op': row['ns_op'],
            'B_op': row.get('B_per_op'),
            'allocs_op': row.get('allocs_per_op'),
            'speedup_vs_j1': 0.0,  # filled below
        }
j1 = workers.get('j1', {'ns_op': seq['ns_op']})
for j, row in workers.items():
    row['speedup_vs_j1'] = round(j1['ns_op'] / row['ns_op'], 2)

current = {
    'sim': {
        'closure_event_ns_op': sim['BenchmarkEventThroughput']['ns_op'],
        'typed_event_ns_op': sim['BenchmarkTypedEventThroughput']['ns_op'],
        'typed_event_allocs_op': sim['BenchmarkTypedEventThroughput']['allocs_per_op'],
    },
    'network': {
        'packet_delivery_ns_op': pkt['ns_op'],
        'events_per_packet': pkt.get('events_per_pkt', 0),
        'allocs_per_packet': pkt['allocs_per_op'],
        'B_per_packet': pkt['B_per_op'],
        'events_per_sec': round(pkt.get('events_per_pkt', 0) / (pkt['ns_op'] * 1e-9)),
        'adaptive_route_ns_op': net['BenchmarkAdaptiveRoute']['ns_op'],
        'route_into_ns_op': net['BenchmarkRouteInto']['ns_op'],
        'route_into_allocs_op': net['BenchmarkRouteInto']['allocs_per_op'],
    },
    'ensemble': {
        'sequential_ns_op': seq['ns_op'],
        'sequential_B_op': seq['B_per_op'],
        'sequential_allocs_op': seq['allocs_per_op'],
        'worker_sweep': workers,
    },
}

host_cpus = os.cpu_count()
report = {
    'issue': 3,
    'generated_by': 'scripts/bench.sh',
    'host_cpus': host_cpus,
    'host_cpus_note': ('parallel speedup requires host_cpus >= workers; '
                       'on a 1-CPU host every -j point measures sequential '
                       'throughput plus scheduling overhead'),
    'baseline_pre_pr': baseline,
    'current': current,
    'sequential_improvement_vs_baseline': round(
        1 - current['ensemble']['sequential_ns_op'] / baseline['ensemble_sequential_ns_op'], 3),
    'events_per_packet_improvement': round(
        1 - current['network']['events_per_packet'] / baseline['events_per_packet'], 3),
    'parallel_speedup_j4': workers.get('j4', {}).get('speedup_vs_j1'),
    'parallel_speedup_j4_vs_pre_pr_parallel': round(
        baseline['ensemble_parallel_ns_op'] / workers['j4']['ns_op'], 2) if 'j4' in workers else None,
}
with open(os.environ['OUT'], 'w') as f:
    json.dump(report, f, indent=2)
    f.write('\n')
print(f"wrote {os.environ['OUT']}")
print(f"host cpus: {host_cpus}")
print(f"sequential ensemble improvement vs baseline: "
      f"{report['sequential_improvement_vs_baseline']:.1%}")
print(f"events/packet: {current['network']['events_per_packet']} "
      f"({report['events_per_packet_improvement']:.1%} better)")
for j, row in workers.items():
    print(f"  {j}: {row['ns_op']/1e9:.2f}s  speedup {row['speedup_vs_j1']}x")
EOF
