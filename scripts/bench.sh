#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and emit BENCH_2.json.
#
# Measures the three layers of the zero-allocation packet path (kernel
# event dispatch, routing decision, end-to-end packet delivery) plus the
# sequential-vs-parallel production ensemble, all with -benchmem, and
# writes a machine-readable summary next to the repo root. The
# baseline_pre_pr block in the output is the recorded pre-optimization
# measurement (commit fa73dce, same benchmark definitions) that the
# current numbers are compared against.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-BENCH_2.json}

echo "== sim benchmarks ==" >&2
sim=$(go test -run xxx -bench 'BenchmarkEventThroughput$|BenchmarkTypedEventThroughput' \
	-benchmem -benchtime 2s ./internal/sim/)
echo "== network benchmarks ==" >&2
net=$(go test -run xxx -bench 'BenchmarkPacketDelivery|BenchmarkAdaptiveRoute$|BenchmarkRouteInto' \
	-benchmem ./internal/network/)
echo "== ensemble benchmarks (slow) ==" >&2
ens=$(go test -run xxx -bench 'BenchmarkEnsemble' -benchtime 3x -benchmem -timeout 60m .)

SIM_OUT="$sim" NET_OUT="$net" ENS_OUT="$ens" OUT="$out" python3 - << 'EOF'
import json, os, re

def parse(block):
    rows = {}
    for line in block.splitlines():
        m = re.match(r'(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(.*)', line.strip())
        if not m:
            continue
        name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
        row = {'ns_op': ns}
        for val, unit in re.findall(r'([\d.]+) (\S+)', rest):
            row[unit.replace('/', '_per_')] = float(val)
        rows[name] = row
    return rows

sim = parse(os.environ['SIM_OUT'])
net = parse(os.environ['NET_OUT'])
ens = parse(os.environ['ENS_OUT'])

pkt = net['BenchmarkPacketDelivery']
seq = ens['BenchmarkEnsembleSequential']
par = ens['BenchmarkEnsembleParallel']

# Pre-optimization numbers, same machine and benchmark definitions,
# recorded before the zero-allocation hot path landed.
baseline = {
    'commit': 'fa73dce',
    'ensemble_sequential_ns_op': 7514224871,
    'ensemble_sequential_B_op': 753055186,
    'ensemble_sequential_allocs_op': 24340992,
    'packet_delivery_ns_op': 13651,
    'packet_delivery_events_per_pkt': 24.02,
    'packet_delivery_B_op': 1350,
    'packet_delivery_allocs_op': 46,
    'adaptive_route_ns_op': 713.7,
    'adaptive_route_B_op': 108,
    'adaptive_route_allocs_op': 6,
    'event_throughput_ns_op': 9.256,
}

current = {
    'sim': {
        'closure_event_ns_op': sim['BenchmarkEventThroughput']['ns_op'],
        'typed_event_ns_op': sim['BenchmarkTypedEventThroughput']['ns_op'],
        'typed_event_allocs_op': sim['BenchmarkTypedEventThroughput']['allocs_per_op'],
    },
    'network': {
        'packet_delivery_ns_op': pkt['ns_op'],
        'events_per_packet': pkt.get('events_per_pkt', 0),
        'allocs_per_packet': pkt['allocs_per_op'],
        'B_per_packet': pkt['B_per_op'],
        'events_per_sec': round(pkt.get('events_per_pkt', 0) / (pkt['ns_op'] * 1e-9)),
        'adaptive_route_ns_op': net['BenchmarkAdaptiveRoute']['ns_op'],
        'route_into_ns_op': net['BenchmarkRouteInto']['ns_op'],
        'route_into_allocs_op': net['BenchmarkRouteInto']['allocs_per_op'],
    },
    'ensemble': {
        'sequential_ns_op': seq['ns_op'],
        'sequential_B_op': seq['B_per_op'],
        'sequential_allocs_op': seq['allocs_per_op'],
        'parallel_ns_op': par['ns_op'],
        'parallel_B_op': par['B_per_op'],
        'parallel_allocs_op': par['allocs_per_op'],
        'parallel_speedup': round(seq['ns_op'] / par['ns_op'], 2),
    },
}

report = {
    'issue': 2,
    'generated_by': 'scripts/bench.sh',
    'baseline_pre_pr': baseline,
    'current': current,
    'sequential_improvement_vs_baseline': round(
        1 - current['ensemble']['sequential_ns_op'] / baseline['ensemble_sequential_ns_op'], 3),
}
with open(os.environ['OUT'], 'w') as f:
    json.dump(report, f, indent=2)
    f.write('\n')
print(f"wrote {os.environ['OUT']}")
print(f"sequential ensemble improvement vs baseline: "
      f"{report['sequential_improvement_vs_baseline']:.1%}")
EOF
