#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and emit BENCH_7.json.
#
# Measures the three layers of the zero-allocation packet path (kernel
# event dispatch, routing decision, end-to-end packet delivery) — now in
# both link modes, reference and fused (Params.FuseLinks) — plus the
# ensemble worker sweep (-j 1,2,4,8), all with -benchmem, and writes a
# machine-readable summary next to the repo root. The baseline_pre_pr
# block is the recorded pre-link-fusion measurement (commit 6f9136e,
# BENCH_3.json "current", same benchmark definitions).
#
# host_cpus is recorded because wall-clock numbers from a shared 1-CPU
# host carry ±20% run-to-run noise: identical code measured minutes
# apart lands anywhere in a ~700-900ns band for the routing decision,
# which is how BENCH_3's adaptive_route_ns_op=962.6 came to be recorded
# against an earlier 748 — re-benchmarking both commits shows the same
# band, i.e. the "regression" was measurement noise, not code (see
# DESIGN.md). The deterministic metrics — events/packet, allocs/op,
# load queries per decision (TestRouteLoadQueryBudget) — are the
# numbers to gate on; ns/op is context.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-BENCH_7.json}

echo "== sim benchmarks ==" >&2
sim=$(go test -run xxx -bench 'BenchmarkEventThroughput$|BenchmarkTypedEventThroughput' \
	-benchmem -benchtime 2s ./internal/sim/)
echo "== network benchmarks ==" >&2
# Packet delivery runs at a FIXED 2000-packet workload (-benchtime
# 2000x): with a free-running b.N the injected load — and therefore
# congestion, retries, and the events/pkt metric itself — varies with
# host speed. Pinning N makes events/pkt a deterministic function of
# the code (the same workload TestEventsPerPacketCeiling gates).
net=$(go test -run xxx -bench 'BenchmarkPacketDelivery' \
	-benchtime 2000x -benchmem ./internal/network/)
net+=$'\n'
net+=$(go test -run xxx -bench 'BenchmarkAdaptiveRoute$|BenchmarkRouteInto' \
	-benchmem ./internal/network/)
echo "== ensemble worker sweep (slow) ==" >&2
ens=$(go test -run xxx -bench 'BenchmarkEnsembleSequential$|BenchmarkEnsembleWorkers' \
	-benchtime 3x -benchmem -timeout 60m .)

SIM_OUT="$sim" NET_OUT="$net" ENS_OUT="$ens" OUT="$out" python3 - << 'EOF'
import json, os, re

def parse(block):
    rows = {}
    for line in block.splitlines():
        m = re.match(r'(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)', line.strip())
        if not m:
            continue
        name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
        row = {'ns_op': ns}
        for val, unit in re.findall(r'([\d.]+) (\S+)', rest):
            row[unit.replace('/', '_per_')] = float(val)
        rows[name] = row
    return rows

sim = parse(os.environ['SIM_OUT'])
net = parse(os.environ['NET_OUT'])
ens = parse(os.environ['ENS_OUT'])

pkt = net['BenchmarkPacketDelivery']
pktf = net['BenchmarkPacketDeliveryFused']
seq = ens['BenchmarkEnsembleSequential']

# Pre-link-fusion numbers (commit 6f9136e, BENCH_3.json "current"),
# same benchmark definitions, recorded before evFinishTx+evArrive were
# collapsed into the fused evHopDone. adaptive_route_ns_op is kept for
# the record but sits inside the host's ~700-900ns noise band (see
# header comment); events_per_packet is the trustworthy baseline.
baseline = {
    'commit': '6f9136e',
    'packet_delivery_ns_op': 6906,
    'events_per_packet': 20.63,
    'adaptive_route_ns_op': 962.6,
    'typed_event_ns_op': 11.92,
    'ensemble_sequential_ns_op': 4458941873,
    'ensemble_sequential_allocs_op': 428129,
}

workers = {}
for j in (1, 2, 4, 8):
    row = ens.get(f'BenchmarkEnsembleWorkers/j{j}')
    if row:
        workers[f'j{j}'] = {
            'ns_op': row['ns_op'],
            'B_op': row.get('B_per_op'),
            'allocs_op': row.get('allocs_per_op'),
            'speedup_vs_j1': 0.0,  # filled below
        }
j1 = workers.get('j1', {'ns_op': seq['ns_op']})
for j, row in workers.items():
    row['speedup_vs_j1'] = round(j1['ns_op'] / row['ns_op'], 2)

current = {
    'sim': {
        'closure_event_ns_op': sim['BenchmarkEventThroughput']['ns_op'],
        'typed_event_ns_op': sim['BenchmarkTypedEventThroughput']['ns_op'],
        'typed_event_allocs_op': sim['BenchmarkTypedEventThroughput']['allocs_per_op'],
    },
    'network': {
        'packet_delivery_ns_op': pkt['ns_op'],
        'events_per_packet': pkt.get('events_per_pkt', 0),
        'allocs_per_packet': pkt['allocs_per_op'],
        'packet_delivery_fused_ns_op': pktf['ns_op'],
        'events_per_packet_fused': pktf.get('events_per_pkt', 0),
        'allocs_per_packet_fused': pktf['allocs_per_op'],
        'adaptive_route_ns_op': net['BenchmarkAdaptiveRoute']['ns_op'],
        'route_into_ns_op': net['BenchmarkRouteInto']['ns_op'],
        'route_into_allocs_op': net['BenchmarkRouteInto']['allocs_per_op'],
    },
    'ensemble': {
        'sequential_ns_op': seq['ns_op'],
        'sequential_B_op': seq['B_per_op'],
        'sequential_allocs_op': seq['allocs_per_op'],
        'worker_sweep': workers,
    },
}

host_cpus = os.cpu_count()
report = {
    'issue': 7,
    'generated_by': 'scripts/bench.sh',
    'host_cpus': host_cpus,
    'host_cpus_note': ('wall-clock ns/op from a shared 1-CPU host varies '
                       '+/-20% between identical back-to-back runs '
                       '(adaptive_route lands anywhere in ~700-900ns; '
                       'the 748->963 jump recorded across BENCH_2/BENCH_3 '
                       'reproduces on NEITHER commit) and up to ~2x '
                       'across days (packet_delivery measured 6906 at '
                       'BENCH_3 time, ~11-14000 on the same code when '
                       'BENCH_7 was taken). Cross-file ns/op deltas are '
                       'meaningless; gate on the deterministic metrics: '
                       'events/packet, allocs/op, load queries per '
                       'decision.'),
    'baseline_pre_pr': baseline,
    'current': current,
    'events_per_packet_fused_improvement': round(
        1 - current['network']['events_per_packet_fused'] / baseline['events_per_packet'], 3),
    'parallel_speedup_j4': workers.get('j4', {}).get('speedup_vs_j1'),
}
with open(os.environ['OUT'], 'w') as f:
    json.dump(report, f, indent=2)
    f.write('\n')
print(f"wrote {os.environ['OUT']}")
print(f"host cpus: {host_cpus}")
print(f"events/packet: reference {current['network']['events_per_packet']} "
      f"fused {current['network']['events_per_packet_fused']} "
      f"({report['events_per_packet_fused_improvement']:.1%} below pre-PR baseline)")
for j, row in workers.items():
    print(f"  {j}: {row['ns_op']/1e9:.2f}s  speedup {row['speedup_vs_j1']}x")
EOF
