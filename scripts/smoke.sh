#!/usr/bin/env bash
# smoke.sh — boot the simd daemon and drive one end-to-end query, the
# exact sequence CI's service-smoke job runs. Gates, in order:
#   1. simlint over the service packages (the pool checkout path carries
#      hotpath/resetcheck annotations; see DESIGN.md "Service layer")
#   2. simd builds and starts serving with -prewarm test
#   3. GET /healthz answers "ok"
#   4. POST /v1/query on the tiny "test" topology returns HTTP 200 with
#      a recommendation, and the same query repeated (warm pool) returns
#      byte-identical bytes
#   5. GET /metrics reflects the queries: executed counter, pool hits,
#      zero misses (the -prewarm flag absorbed the cold start), the
#      simulation-cost gauges (events/packet, warm fabric reuses), and
#      the streaming-reduction gauges (every retained sample compact,
#      nonzero digest bytes)
#
# Usage: scripts/smoke.sh [port]   (default 8091)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-8091}"
addr="127.0.0.1:${port}"
query='{"topology":"test","app":"MILC","nodes":8,"modes":["AD0","AD3"],"runs":2,"seed":42}'

echo "== simlint (service packages) ==" >&2
go run ./cmd/simlint ./internal/service ./internal/parallel ./cmd/simd

echo "== build ==" >&2
go build -o /tmp/simd-smoke ./cmd/simd

echo "== boot ==" >&2
/tmp/simd-smoke -listen "$addr" -profile bench -j 2 -prewarm test &
simd_pid=$!
trap 'kill "$simd_pid" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
	if curl -sf "http://${addr}/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$simd_pid" 2>/dev/null; then
		echo "simd exited before serving" >&2
		exit 1
	fi
	sleep 0.2
done

echo "== healthz ==" >&2
health=$(curl -sf "http://${addr}/healthz")
[[ "$health" == "ok" ]] || { echo "healthz said: $health" >&2; exit 1; }

echo "== query (cold) ==" >&2
cold=$(curl -sf -X POST "http://${addr}/v1/query" -d "$query")
grep -q '"recommended"' <<<"$cold" || { echo "no recommendation in: $cold" >&2; exit 1; }

echo "== query (warm, must be byte-identical) ==" >&2
warm=$(curl -sf -X POST "http://${addr}/v1/query" -d "$query")
if [[ "$cold" != "$warm" ]]; then
	echo "warm-pool response differs from cold:" >&2
	diff <(echo "$cold") <(echo "$warm") >&2 || true
	exit 1
fi

echo "== metrics ==" >&2
metrics=$(curl -sf "http://${addr}/metrics")
grep -q '^simd_queries_executed_total 2$' <<<"$metrics" || {
	echo "metrics did not count 2 executions:" >&2
	echo "$metrics" >&2
	exit 1
}
grep -q '^simd_pool_hits_total [1-9]' <<<"$metrics" || {
	echo "second query never hit the warm pool:" >&2
	echo "$metrics" >&2
	exit 1
}
grep -q '^simd_pool_misses_total 0$' <<<"$metrics" || {
	echo "-prewarm test did not absorb the cold start (expected 0 misses):" >&2
	echo "$metrics" >&2
	exit 1
}
grep -q '^simd_pool_prewarmed_total 2$' <<<"$metrics" || {
	echo "prewarm counter missing or wrong (expected 2 for -j 2):" >&2
	echo "$metrics" >&2
	exit 1
}
grep -Eq '^simd_events_per_packet [1-9][0-9]*(\.[0-9]+)?$' <<<"$metrics" || {
	echo "events_per_packet missing or zero after executed queries:" >&2
	echo "$metrics" >&2
	exit 1
}
grep -q '^simd_machine_warm_reuses_total [1-9]' <<<"$metrics" || {
	echo "no warm fabric reuses recorded on a prewarmed pool:" >&2
	echo "$metrics" >&2
	exit 1
}
grep -q '^simd_machine_cold_builds_total 0$' <<<"$metrics" || {
	echo "serving path built fabrics cold despite -prewarm:" >&2
	echo "$metrics" >&2
	exit 1
}
# 2 executions x 2 runs x 2 modes: every sample must come back as a
# compact digest (report dropped on the worker).
grep -q '^simd_samples_reduced_total 8$' <<<"$metrics" || {
	echo "expected all 8 samples reduced to compact digests:" >&2
	echo "$metrics" >&2
	exit 1
}
grep -q '^simd_retained_digest_bytes [1-9]' <<<"$metrics" || {
	echo "retained digest bytes missing or zero:" >&2
	echo "$metrics" >&2
	exit 1
}

kill "$simd_pid"
wait "$simd_pid" 2>/dev/null || true
trap - EXIT
echo "smoke clean" >&2
