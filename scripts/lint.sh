#!/usr/bin/env bash
# lint.sh — the exact static checks CI's lint job runs, for local use.
#
# Four gates, same flags as .github/workflows/ci.yml:
#   1. gofmt -l   — no unformatted files (the simlint directive comments
#                   are gofmt-stable; drift here usually means a hand
#                   edit skipped gofmt)
#   2. go vet     — the stock toolchain analyzers
#   3. simlint    — the repo's own analyzer suite (detrand, resetcheck,
#                   hotpath, hotcall, detflow, sharecheck); see
#                   internal/analyzers and DESIGN.md "Static invariants".
#                   Built once and run as a binary — the module driver
#                   loads the whole tree in one pass, so one process
#                   covers every package.
#   4. escapes    — compiler-truth escape-analysis golden for the hot
#                   packages (scripts/escapes.sh)
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt ==" >&2
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ==" >&2
go vet ./...

echo "== simlint ==" >&2
simlint_dir=$(mktemp -d)
trap 'rm -rf "$simlint_dir"' EXIT
go build -o "$simlint_dir/simlint" ./cmd/simlint
"$simlint_dir/simlint" ./...

echo "== escape golden ==" >&2
scripts/escapes.sh

echo "lint clean" >&2
