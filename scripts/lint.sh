#!/usr/bin/env bash
# lint.sh — the exact static checks CI's lint job runs, for local use.
#
# Three gates, same flags as .github/workflows/ci.yml:
#   1. gofmt -l   — no unformatted files (the simlint directive comments
#                   are gofmt-stable; drift here usually means a hand
#                   edit skipped gofmt)
#   2. go vet     — the stock toolchain analyzers
#   3. simlint    — the repo's own analyzers (detrand, resetcheck,
#                   hotpath); see internal/analyzers and DESIGN.md
#                   "Static invariants"
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt ==" >&2
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
	echo "gofmt needed:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ==" >&2
go vet ./...

echo "== simlint ==" >&2
go run ./cmd/simlint ./...

echo "lint clean" >&2
