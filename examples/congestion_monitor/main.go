// Congestion monitor: run a production campaign while an LDMS-style
// daemon samples every router's counters, then print the system-wide
// congestion time series — the global view the paper uses in Section V to
// justify changing the facility default.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ldms"
	"repro/internal/mpi"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	modeStr := flag.String("mode", "AD0", "system default routing mode")
	window := flag.Float64("window", 0.03, "campaign length, virtual seconds")
	flag.Parse()

	mode, err := routing.ParseMode(*modeStr)
	if err != nil {
		log.Fatal(err)
	}
	machine, err := core.NewMachine(topology.ThetaMiniConfig())
	if err != nil {
		log.Fatal(err)
	}

	bg := core.DefaultBackground()
	bg.Env = mpi.UniformEnv(mode) // every job uses the system default
	campaign, err := machine.RunCampaign(
		sim.FromSeconds(*window), *bg,
		ldms.Options{
			Period:             5 * sim.Millisecond,
			RecordRouterRatios: true,
			RecordNICLatency:   true,
		}, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system default %s, %v campaign\n\n", mode, sim.FromSeconds(*window))
	fmt.Printf("%-10s %-14s %-14s %-8s %-10s\n", "t", "netFlits", "netStalls", "ratio", "p99 lat")
	for _, s := range campaign.LDMS.Samples() {
		var flits uint64
		var stalls float64
		for _, class := range []topology.TileClass{
			topology.TileRank1, topology.TileRank2, topology.TileRank3,
		} {
			flits += s.Totals.Flits[class]
			stalls += s.Totals.Stalls[class]
		}
		ratio := 0.0
		if flits > 0 {
			ratio = stalls / float64(flits)
		}
		p99 := stats.Percentile(s.NICLatency, 99) * 1e6
		fmt.Printf("%-10v %-14d %-14.0f %-8.3f %8.1fus\n", s.At, flits, stalls, ratio, p99)
	}
	fmt.Printf("\noverall network stalls-to-flits: %.3f\n",
		campaign.Global.TotalStalls()/float64(campaign.Global.TotalFlits()))
}
