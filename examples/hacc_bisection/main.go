// HACC bisection study: the one workload class the paper finds prefers
// the equal-bias default. An ensemble of HACC jobs (3D-FFT transposes over
// random rank pairs, stressing global bisection) runs under AD0 and AD3;
// strong minimal bias concentrates the load on a subset of rank-3 links,
// raising peak stalls and hurting runtime — the paper's Fig. 12.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	machine, err := core.NewMachine(topology.ThetaMiniConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		// Four simultaneous 24-node HACC jobs: a controlled ensemble.
		specs := make([]core.JobSpec, 4)
		for i := range specs {
			specs[i] = core.JobSpec{
				App:       apps.HACC{},
				Cfg:       apps.Config{Iterations: 2, Scale: 0.1, Seed: int64(i + 1)},
				Nodes:     24,
				Placement: placement.Dispersed,
				Env:       mpi.UniformEnv(mode),
			}
		}
		res, err := machine.Run(specs, core.RunOpts{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, j := range res.Jobs {
			mean += j.Runtime.Seconds()
		}
		mean /= float64(len(res.Jobs))

		// Peak per-tile stalls on rank-3 links: the hot-spot metric.
		peak := 0.0
		c := res.GlobalCounters
		topo := machine.Topo
		for r := range c.Stalls {
			for t := range c.Stalls[r] {
				if topo.TileClassOf(t) == topology.TileRank3 && c.Stalls[r][t] > peak {
					peak = c.Stalls[r][t]
				}
			}
		}
		fmt.Printf("%s: mean runtime %.4fs, rank-3 flits %d, peak rank-3 tile stalls %.0f\n",
			mode, mean,
			res.Global.Flits[topology.TileRank3], peak)
	}
	fmt.Println("\nexpected shape (paper Fig. 12): AD3 slower, higher peak rank-3 stalls")
}
