// Routing sweep: run one application across every routing policy — the
// four Aries adaptive presets (AD0..AD3) plus the pure MIN/VAL baselines
// from the dragonfly literature — and print a comparison table. This is
// the per-application tuning study the paper recommends facilities run.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	appName := flag.String("app", "MILC", "application to sweep")
	runs := flag.Int("runs", 3, "runs per mode")
	nodes := flag.Int("nodes", 24, "job size")
	flag.Parse()

	machine, err := core.NewMachine(topology.ThetaMiniConfig())
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}

	modes := []routing.Mode{
		routing.MinimalOnly, routing.ValiantOnly,
		routing.AD0, routing.AD1, routing.AD2, routing.AD3,
	}
	fmt.Printf("%-5s %-10s %-10s %-10s %-12s\n", "mode", "mean(s)", "std(s)", "p95(s)", "nonminimal")
	for _, mode := range modes {
		var times []float64
		nonMin, total := uint64(0), uint64(0)
		for run := 0; run < *runs; run++ {
			job := core.JobSpec{
				App:       app,
				Cfg:       apps.Config{Iterations: 5, Scale: 0.1, Seed: int64(run + 1)},
				Nodes:     *nodes,
				Placement: placement.Dispersed,
				Env:       mpi.UniformEnv(mode),
			}
			res, _, err := machine.RunOne(job, core.RunOpts{
				Seed:       int64(run + 1),
				Background: core.DefaultBackground(),
				Warmup:     sim.Millisecond,
			})
			if err != nil {
				log.Fatal(err)
			}
			times = append(times, res.Runtime.Seconds())
			nonMin += res.NonMinimalPkts
			total += res.MinimalPkts + res.NonMinimalPkts
		}
		mean, std := stats.MeanStd(times)
		frac := 0.0
		if total > 0 {
			frac = 100 * float64(nonMin) / float64(total)
		}
		fmt.Printf("%-5s %-10.4f %-10.4f %-10.4f %10.1f%%\n",
			mode, mean, std, stats.Percentile(times, 95), frac)
	}
}
