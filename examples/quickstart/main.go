// Quickstart: build a scaled-down Theta, run the MILC proxy on a busy
// machine under the default routing (AD0) and under strong minimal bias
// (AD3), and compare — the paper's core production experiment in one
// program.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// A 12-group dragonfly with Theta's structure and bandwidth ratios.
	machine, err := core.NewMachine(topology.ThetaMiniConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		job := core.JobSpec{
			App:       apps.MILC{},
			Cfg:       apps.Config{Iterations: 6, Scale: 0.1, Seed: 42},
			Nodes:     24,
			Placement: placement.Dispersed,
			// The paper's experiments set both Cray MPI routing
			// variables to the mode under test.
			Env: mpi.UniformEnv(mode),
		}
		result, _, err := machine.RunOne(job, core.RunOpts{
			Seed:       42,
			Background: core.DefaultBackground(), // production noise
			Warmup:     sim.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		nonMinPct := 0.0
		if t := result.MinimalPkts + result.NonMinimalPkts; t > 0 {
			nonMinPct = 100 * float64(result.NonMinimalPkts) / float64(t)
		}
		fmt.Printf("%s: runtime %v over %d groups, %.0f%% MPI, %.1f%% packets non-minimal\n",
			mode, result.Runtime, result.GroupsSpanned,
			100*result.Report.MPIFraction(), nonMinPct)
	}
}
