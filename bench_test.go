package repro_test

// One benchmark per table and figure of the paper's evaluation section,
// each regenerating the experiment at bench scale (see
// experiments.Bench). Run them all with:
//
//	go test -bench=. -benchmem
//
// Custom metrics: comparison benchmarks report the headline AD3-vs-AD0
// observable of their experiment (e.g. ad3_improvement_%). Seeds are
// fixed so the measured work is identical across iterations; runs that
// share a campaign (Table II -> Figs. 2, 5-8; Fig. 13 -> Fig. 14)
// memoize it, exactly as cmd/reproduce does.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/routing"
)

func benchProfile() experiments.Profile { return experiments.Bench() }

// ensembleProfile sizes the sequential-vs-parallel benchmark pair: enough
// independent runs (Runs x 2 modes) to keep every worker busy.
func ensembleProfile(workers int) experiments.Profile {
	p := benchProfile()
	p.Runs = 4
	p.Workers = workers
	return p
}

func benchEnsemble(b *testing.B, workers int) []experiments.Sample {
	b.Helper()
	p := ensembleProfile(workers)
	var samples []experiments.Sample
	for i := 0; i < b.N; i++ {
		s, err := experiments.ProductionEnsemble(p, apps.MILC{}, p.NodesMedium,
			[]routing.Mode{routing.AD0, routing.AD3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		samples = s
	}
	return samples
}

// BenchmarkEnsembleSequential and BenchmarkEnsembleParallel measure the
// same MILC production campaign with 1 worker and with all CPUs; compare
// with `go test -bench=BenchmarkEnsemble`. The parallel run's merged
// output is checked against the sequential result inside
// BenchmarkEnsembleParallel, so the speedup never comes at the cost of
// determinism.
func BenchmarkEnsembleSequential(b *testing.B) {
	benchEnsemble(b, 1)
}

func BenchmarkEnsembleParallel(b *testing.B) {
	par := benchEnsemble(b, runtime.NumCPU())
	b.StopTimer()
	p := ensembleProfile(1)
	seq, err := experiments.ProductionEnsemble(p, apps.MILC{}, p.NodesMedium,
		[]routing.Mode{routing.AD0, routing.AD3}, 1)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		b.Fatal("parallel ensemble diverged from sequential result")
	}
}

// BenchmarkEnsembleWorkers is the worker-sweep scaling curve: the same
// MILC campaign at -j 1, 2, 4, and 8, the measurement scripts/bench.sh
// turns into BENCH_3.json's speedup-vs-workers trajectory. On a
// single-CPU host all points collapse onto sequential throughput (the
// workers run concurrently but not in parallel); the curve is only
// meaningful where runtime.NumCPU allows real overlap, which is why the
// emitted report records host_cpus alongside it.
func BenchmarkEnsembleWorkers(b *testing.B) {
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			benchEnsemble(b, j)
		})
	}
}

// The Table II production campaign feeds six benchmarks (as it does six
// artifacts in cmd/reproduce); it is memoized per seed so a full
// `go test -bench=.` pass regenerates it once, not six times.
var table2Memo = map[int64]*experiments.Table2Result{}

// Fig. 13's two campaigns likewise feed both Fig. 13 and Fig. 14.
var fig13Memo = map[int64]*experiments.Fig13Result{}

func BenchmarkFig1JobSizeCCDF(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1JobSizes(p, 1)
		if len(r.CCDF) == 0 {
			b.Fatal("empty ccdf")
		}
	}
}

func BenchmarkTable1AppCharacterization(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1Characterization(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

// table2 runs the shared production campaign; Figs. 2, 5-8 derive from it.
func runTable2(b *testing.B, seed int64) *experiments.Table2Result {
	b.Helper()
	if t2, ok := table2Memo[seed]; ok {
		return t2
	}
	t2, err := experiments.Table2AllApps(benchProfile(), seed)
	if err != nil {
		b.Fatal(err)
	}
	table2Memo[seed] = t2
	return t2
}

func BenchmarkTable2AllApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTable2(b, 1)
		for _, row := range t2.Rows {
			if row.App == "MILC" {
				b.ReportMetric(row.ImprovePct, "ad3_improvement_%")
			}
		}
	}
}

func BenchmarkFig2MILCRuntimePDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTable2(b, 1)
		r := experiments.Fig2FromSamples(t2.Nodes, t2.Samples)
		a0 := r.PerApp["MILC"][routing.AD0]
		a3 := r.PerApp["MILC"][routing.AD3]
		if a0.Mean > 0 {
			b.ReportMetric(100*(a0.Mean-a3.Mean)/a0.Mean, "ad3_improvement_%")
		}
	}
}

func BenchmarkFig3MILCByGroups(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3GroupsSpanned(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanImprovement["MILC"][p.NodesMedium], "ad3_improvement_%")
	}
}

func BenchmarkFig4CoriMILC(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4CoriGroupsSpanned(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanImprovement["MILC"][p.CoriNodesMedium], "ad3_improvement_%")
	}
}

func BenchmarkFig5MILCBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTable2(b, 1)
		r := experiments.Fig5FromSamples(t2.Samples)
		if len(r.Runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkFig6TileRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTable2(b, 1)
		r := experiments.Fig6FromTable2(t2)
		if len(r.Ratios) == 0 {
			b.Fatal("no ratios")
		}
	}
}

func BenchmarkFig7NormalizedAllApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTable2(b, 1)
		r := experiments.Fig7NormalizedAllApps(t2)
		if len(r.Order) != 6 {
			b.Fatal("missing apps")
		}
	}
}

func BenchmarkFig8HACCBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := runTable2(b, 1)
		r := experiments.Fig8HACCBreakdown(t2)
		if len(r.Runs) == 0 {
			b.Fatal("no HACC runs")
		}
	}
}

func BenchmarkFig9ControlledAllModes(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9ControlledAllModes(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Headline ordering metric: AD0 mean z minus AD3 mean z
		// (positive = AD3 faster).
		b.ReportMetric(r.Mean[routing.AD0]-r.Mean[routing.AD3], "z_AD0_minus_AD3")
	}
}

func BenchmarkFig10MILCEnsemble(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10MILCEnsembleCounters(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		a0 := r.PerMode[routing.AD0]
		a3 := r.PerMode[routing.AD3]
		if f := a0.Totals.TotalFlits(); f > 0 {
			b.ReportMetric(float64(a3.Totals.TotalFlits())/float64(f), "ad3_flit_ratio")
		}
	}
}

func BenchmarkFig11RegimeComparison(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11RegimeComparison(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Ratios) == 0 {
			b.Fatal("no regimes")
		}
	}
}

func BenchmarkFig12HACCEnsemble(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12HACCEnsembleCounters(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		a0 := r.PerMode[routing.AD0]
		a3 := r.PerMode[routing.AD3]
		if a0.PeakRank3Stalls > 0 {
			// Paper Fig. 12: localized rank-3 hot spots under AD3.
			b.ReportMetric(a3.PeakRank3Stalls/a0.PeakRank3Stalls, "ad3_peak_stall_ratio")
		}
	}
}

func benchFig13(b *testing.B, seed int64) *experiments.Fig13Result {
	b.Helper()
	if r, ok := fig13Memo[seed]; ok {
		return r
	}
	r, err := experiments.Fig13DefaultSwitch(benchProfile(), seed)
	if err != nil {
		b.Fatal(err)
	}
	fig13Memo[seed] = r
	return r
}

func BenchmarkFig13DefaultSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchFig13(b, 1)
		if before := r.Before.NetworkRatio(); before > 0 {
			b.ReportMetric(100*(before-r.After.NetworkRatio())/before, "stall_ratio_improvement_%")
		}
	}
}

func BenchmarkFig14LatencyPercentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14LatencyPercentiles(benchFig13(b, 1))
		// Tail latency change at P99 (paper: -20 to -30%).
		b.ReportMetric(r.ChangePct[6], "p99_change_%")
	}
}

// Ablation benchmarks: design-choice sweeps called out in DESIGN.md,
// at one run per configuration.

func ablationProfile() experiments.Profile {
	p := benchProfile()
	p.Runs = 1
	return p
}

func BenchmarkAblationCandidates(b *testing.B) {
	p := ablationProfile()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCandidates(p, routing.AD0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBufferDepth(b *testing.B) {
	p := ablationProfile()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBufferDepth(p, routing.AD0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEstimateQuality(b *testing.B) {
	p := ablationProfile()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEstimateQuality(p, routing.AD0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProgressiveAD1(b *testing.B) {
	p := ablationProfile()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationProgressiveAD1(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaselines(b *testing.B) {
	p := ablationProfile()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBaselines(p, 1)
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}
