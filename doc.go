// Package repro is a from-scratch Go reproduction of "Performance
// Evaluation of Adaptive Routing on Dragonfly-based Production Systems"
// (Chunduri et al., IPDPS 2021): a packet-level discrete-event simulator
// of the Cray Aries dragonfly interconnect, the four adaptive routing
// bias modes (AD0..AD3), an MPI-like runtime, proxies for the paper's
// five production applications, AutoPerf/LDMS-style telemetry, and a
// harness that regenerates every table and figure of the evaluation.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// paper-to-module mapping, and EXPERIMENTS.md for measured-vs-paper
// results. The benchmarks in bench_test.go regenerate each experiment.
package repro
