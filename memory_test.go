package repro_test

// The streaming-reduction memory gate: production campaigns digest each
// run's full autoperf.Report into a fixed-size Reduced digest on the
// worker and drop the report before the sample is retained, so the
// retained heap of a finished campaign is bounded by the digest set —
// it must NOT scale with Runs the way retaining the reports would.
//
// The gate measures the retained-heap growth from a Runs=N to a Runs=4N
// campaign and requires it to stay below what the extra runs' full
// reports would have cost (probed by retaining one real report graph).

import (
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
)

// retainedBytes measures the retained heap attributable to build's
// return value: GC-settled heap before, minus GC-settled heap after,
// with everything else build allocated dead by then.
func retainedBytes(t *testing.T, build func() any) int64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	kept := build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	d := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	runtime.KeepAlive(kept)
	return d
}

func TestCampaignMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("memory gate runs two full campaigns; skipped under -short")
	}
	modes := []routing.Mode{routing.AD0, routing.AD3}
	base := benchProfile().Runs
	campaign := func(runs int) func() any {
		return func() any {
			p := benchProfile()
			p.Workers = 2
			p.Runs = runs
			samples, err := experiments.ProductionEnsemble(p, apps.MILC{}, p.NodesMedium, modes, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(samples) != runs*len(modes) {
				t.Fatalf("got %d samples, want %d", len(samples), runs*len(modes))
			}
			for i := range samples {
				if samples[i].Report != nil || samples[i].Reduced == nil {
					t.Fatalf("sample %d retained a full report (or lost its digest)", i)
				}
			}
			return samples
		}
	}

	// Probe: the retained size of one real report graph, measured on an
	// already-warm machine so the machine's own steady-state allocations
	// don't leak into the delta.
	p := benchProfile()
	m, err := core.NewMachine(p.Theta)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.JobSpec{
		App:       apps.MILC{},
		Cfg:       apps.Config{Iterations: p.Iterations["MILC"], Scale: p.Scale["MILC"], Seed: 42},
		Nodes:     p.NodesMedium,
		Placement: placement.Dispersed,
		Env:       mpi.UniformEnv(routing.AD0),
	}
	opts := core.RunOpts{Seed: 42, Background: core.DefaultBackground(), Warmup: p.Warmup}
	if _, _, err := m.RunOne(spec, opts); err != nil { // warm the fabric
		t.Fatal(err)
	}
	probe := retainedBytes(t, func() any {
		job, _, err := m.RunOne(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		return job.Report
	})
	runtime.KeepAlive(m)
	if probe <= 0 {
		t.Fatalf("report probe measured %d bytes retained; expected a positive report graph", probe)
	}

	campaign(base)() // settle one-time allocations (pools, lazy globals)
	small := retainedBytes(t, campaign(base))
	large := retainedBytes(t, campaign(4*base))
	growth := large - small
	extraTasks := 3 * base * len(modes)
	budget := int64(extraTasks) * probe
	t.Logf("retained: runs=%d %dB, runs=%d %dB, growth %dB; one-report probe %dB, budget (%d reports) %dB",
		base, small, 4*base, large, growth, probe, extraTasks, budget)
	if growth >= budget {
		t.Errorf("retained heap grew %dB from runs=%d to runs=%d — at least as much as the %d extra runs' full reports (%dB): the campaign is retaining report-scale state",
			growth, base, 4*base, extraTasks, budget)
	}
}
