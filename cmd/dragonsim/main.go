// Command dragonsim runs one application on a simulated dragonfly system
// and prints its runtime, AutoPerf profile, and routing statistics.
//
// Usage:
//
//	dragonsim [-machine theta-mini|cori-mini|theta|cori] [-app MILC]
//	          [-nodes 24] [-mode AD0|AD1|AD2|AD3|MIN|VAL]
//	          [-placement compact|dispersed] [-groups N]
//	          [-iters 10] [-scale 0.1] [-noise] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	machine := flag.String("machine", "theta-mini", "theta-mini, cori-mini, theta, or cori")
	appName := flag.String("app", "MILC", "application: "+strings.Join(apps.Names(), ", "))
	nodes := flag.Int("nodes", 24, "job size in nodes")
	modeStr := flag.String("mode", "AD0", "routing mode: AD0..AD3, MIN, VAL")
	place := flag.String("placement", "dispersed", "compact or dispersed")
	groups := flag.Int("groups", 0, "fragmented placement over ~N groups (overrides -placement)")
	iters := flag.Int("iters", 10, "application iterations")
	scale := flag.Float64("scale", 0.1, "message size scale (1.0 = paper sizes)")
	noise := flag.Bool("noise", false, "fill the rest of the machine with production noise")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var cfg topology.Config
	switch *machine {
	case "theta-mini":
		cfg = topology.ThetaMiniConfig()
	case "cori-mini":
		cfg = topology.CoriMiniConfig()
	case "theta":
		cfg = topology.ThetaConfig()
	case "cori":
		cfg = topology.CoriConfig()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	mode, err := parseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	policy := placement.Dispersed
	if *place == "compact" {
		policy = placement.Compact
	}
	spec := core.JobSpec{
		App:           app,
		Cfg:           apps.Config{Iterations: *iters, Scale: *scale, Seed: *seed},
		Nodes:         *nodes,
		Placement:     policy,
		ClusterGroups: *groups,
		Env:           mpi.UniformEnv(mode),
	}
	opts := core.RunOpts{Seed: *seed}
	if *noise {
		opts.Background = core.DefaultBackground()
		opts.Warmup = sim.Millisecond
	}
	start := time.Now()
	job, res, err := m.RunOne(spec, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine=%s app=%s nodes=%d mode=%s placement=%s groupsSpanned=%d\n",
		cfg.Name, job.App, *nodes, mode, *place, job.GroupsSpanned)
	fmt.Printf("runtime=%v (virtual)  wall=%.1fs  events=%d\n",
		job.Runtime, time.Since(start).Seconds(), res.EventsExecuted)
	total := job.MinimalPkts + job.NonMinimalPkts
	if total > 0 {
		fmt.Printf("job packets: %d (%.1f%% non-minimal)  mean transit=%v\n",
			total, 100*float64(job.NonMinimalPkts)/float64(total), job.MeanTransit)
	}
	fmt.Println()
	fmt.Print(job.Report.String())
}

func parseMode(s string) (routing.Mode, error) {
	switch s {
	case "MIN":
		return routing.MinimalOnly, nil
	case "VAL":
		return routing.ValiantOnly, nil
	}
	return routing.ParseMode(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dragonsim:", err)
	os.Exit(1)
}
