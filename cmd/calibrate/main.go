// Command calibrate is the model-tuning workbench used while fitting the
// simulator to the paper's observables: it runs one application under the
// pure MIN/VAL baselines and the AD0/AD3 presets on a noisy machine and
// prints paired-seed runtimes, per-call time decompositions, per-class
// counter ratios, and the job's non-minimal packet share. The flags sweep
// the model knobs (noise intensity, buffer depth, message scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	prof := flag.String("cpuprofile", "", "write cpu profile")
	appName := flag.String("app", "MILC", "app to run")
	runs := flag.Int("runs", 6, "runs per mode")
	iters := flag.Int("iters", 10, "app iterations")
	scale := flag.Float64("scale", 0.25, "message scale")
	nodes := flag.Int("nodes", 24, "job nodes")
	util := flag.Float64("util", 0.75, "background utilization")
	gapmul := flag.Float64("gapmul", 1.0, "multiply noise gaps (smaller=more intense)")
	uniformNoise := flag.Bool("uniformnoise", false, "background is uniform-random only")
	buffer := flag.Int("buffer", 0, "override BufferFlits")
	flag.Parse()

	if *prof != "" {
		f, _ := os.Create(*prof)
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	m, err := core.NewMachine(topology.ThetaMiniConfig())
	if err != nil {
		panic(err)
	}
	if *buffer > 0 {
		m.Net.BufferFlits = *buffer
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		panic(err)
	}
	for _, mode := range []routing.Mode{routing.MinimalOnly, routing.ValiantOnly, routing.AD0, routing.AD3} {
		var runtimes, ratio []float64
		t0 := time.Now()
		var events uint64
		callTime := map[string]float64{}
		compute := 0.0
		for run := 0; run < *runs; run++ {
			spec := core.JobSpec{
				App:       app,
				Cfg:       apps.Config{Iterations: *iters, Scale: *scale, Seed: int64(run + 1)},
				Nodes:     *nodes,
				Placement: placement.Dispersed,
				Env:       mpi.UniformEnv(mode),
			}
			bg := core.DefaultBackground()
			bg.TargetUtilization = *util
			if *uniformNoise {
				bg.Classes = []workload.TrafficClass{
					{Pattern: apps.NoiseUniform, MsgBytes: 128 * 1024, Gap: 300 * sim.Microsecond, Weight: 1},
				}
			}
			for i := range bg.Classes {
				bg.Classes[i].Gap = sim.Time(float64(bg.Classes[i].Gap) * *gapmul)
			}
			job, res, err := m.RunOne(spec, core.RunOpts{
				Seed:       int64(run + 1),
				Background: bg,
				Warmup:     1 * sim.Millisecond,
			})
			if err != nil {
				panic(err)
			}
			runtimes = append(runtimes, job.Runtime.Seconds())
			lt := job.Report.LocalTiles
			ratio = append(ratio, lt.TotalStalls()/float64(lt.TotalFlits()))
			events += res.EventsExecuted
			if run == 0 {
				fmt.Printf("    transit min=%.2fus (n=%dk) nonmin=%.2fus (n=%dk)\n",
					res.MinTransitUS, res.MinCountK, res.NonMinTransitUS, res.NonMinCountK)
				g := res.Global
				for c := topology.TileClass(0); c < topology.NumTileClasses; c++ {
					fmt.Printf("    %-9s flits=%-12d ratio=%.3f\n", c, g.Flits[c], g.Ratio(c))
				}
			}
			prof := job.Report.Profile
			for name, st := range prof.ByCall {
				callTime[name] += st.Time.Seconds() / float64(job.Report.Ranks)
			}
			compute += prof.ComputeTime.Seconds() / float64(job.Report.Ranks)
			fmt.Printf("  seed=%d mode=%s runtime=%.4fs nonmin=%.1f%% transit=%.2fus\n", run+1, mode,
				job.Runtime.Seconds(),
				100*float64(job.NonMinimalPkts)/float64(job.MinimalPkts+job.NonMinimalPkts+1),
				job.MeanTransit.Seconds()*1e6)
		}
		mean, std := stats.MeanStd(runtimes)
		fmt.Printf("%-6s %s mean=%.4fs std=%.4fs stall/flit=%.3f wall=%.1fs events=%dM\n",
			*appName, mode, mean, std, stats.Mean(ratio), time.Since(t0).Seconds(), events/1e6)
		fmt.Printf("    compute=%.4f", compute/float64(*runs))
		for _, name := range []string{"MPI_Allreduce", "MPI_Waitall", "MPI_Wait", "MPI_Isend", "MPI_Alltoallv", "MPI_Recv", "MPI_Barrier"} {
			if v, ok := callTime[name]; ok {
				fmt.Printf(" %s=%.4f", name[4:], v/float64(*runs))
			}
		}
		fmt.Println()
	}
}
