// Command simd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server answering routing what-if queries from config-keyed
// pools of warm machines.
//
// Usage:
//
//	simd [-listen :8080] [-profile quick|bench|standard] [-j N]
//	     [-pool N] [-tenant-limit N] [-timeout D] [-prewarm topo1,topo2]
//
// Endpoints:
//
//	POST /v1/query   routing what-if query (JSON; see internal/service)
//	GET  /healthz    liveness probe
//	GET  /metrics    pool hit rate, queue depth, per-query latency
//
// Example:
//
//	simd -listen :8080 &
//	curl -s -X POST localhost:8080/v1/query -d '{
//	  "topology": "theta-mini", "app": "MILC", "nodes": 32,
//	  "modes": ["AD0", "AD3"], "runs": 4, "seed": 1
//	}'
//
// The same request body always yields the same response bytes,
// regardless of pool warmth, worker count, or request coalescing — the
// determinism contract the test suite enforces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/service"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve on")
	profileName := flag.String("profile", "quick", "simulation scale: quick, bench, or standard")
	jobs := flag.Int("j", runtime.NumCPU(), "per-query ensemble fan-out (responses are identical for any value)")
	poolCap := flag.Int("pool", 0, "idle machines retained per topology (default 2x -j)")
	tenantLimit := flag.Int("tenant-limit", 4, "max concurrent requests per tenant (0 = unlimited)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-query simulation timeout")
	prewarm := flag.String("prewarm", "", "comma-separated topologies to build warm machines for before serving (e.g. theta-mini,cori-mini)")
	flag.Parse()

	var profile experiments.Profile
	switch *profileName {
	case "quick":
		profile = experiments.Quick()
	case "bench":
		profile = experiments.Bench()
	case "standard":
		profile = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "simd: unknown profile %q (quick, bench, or standard)\n", *profileName)
		os.Exit(2)
	}

	srv := service.New(service.Config{
		Profile:      profile,
		Workers:      parallel.Workers(*jobs),
		PoolCap:      *poolCap,
		TenantLimit:  *tenantLimit,
		QueryTimeout: *timeout,
	})

	// Prewarm before the listener opens: the first query against each
	// named topology then checks out a warm machine instead of paying
	// topology+fabric construction inside its own latency.
	if *prewarm != "" {
		names := strings.Split(*prewarm, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		start := time.Now()
		if err := srv.Prewarm(names); err != nil {
			fmt.Fprintf(os.Stderr, "simd: %v\n", err)
			os.Exit(2)
		}
		log.Printf("simd: prewarmed %s (%d machines each) in %s",
			strings.Join(names, ", "), parallel.Workers(*jobs), time.Since(start).Round(time.Millisecond))
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight queries.
	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-done
		log.Printf("simd: %s received, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout+10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("simd: shutdown: %v", err)
		}
	}()

	log.Printf("simd: serving on %s (profile=%s, workers=%d, tenant-limit=%d, timeout=%s)",
		*listen, profile.Name, parallel.Workers(*jobs), *tenantLimit, *timeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("simd: %v", err)
	}
	log.Printf("simd: stopped")
}
