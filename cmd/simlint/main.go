// Command simlint runs the repository's custom static-analysis suite
// (detrand, resetcheck, hotpath, hotcall, detflow, sharecheck — see
// DESIGN.md "Static invariants") over the module, mirroring a x/tools
// multichecker:
//
//	go run ./cmd/simlint ./...
//
// Unlike a per-package checker, simlint loads every requested package
// (plus its module-internal dependencies) into one driver run, builds
// the static call graph across them, and lets analyzers exchange
// per-function facts — the interprocedural checks (transitive hot-path
// allocation, output-order taint, worker isolation) need the whole
// module in view.
//
// It prints one line per finding — or one JSON object per line with
// -json, for CI to turn into per-file annotations — and exits nonzero
// when any survive their //simlint:allow / //simlint:resetsafe /
// //simlint:cold suppressions. CI treats a nonzero exit as a build
// failure, which is the point: the invariants these analyzers enforce
// (explicit RNG streams, complete Reset coverage, allocation-free hot
// paths, deterministic output rendering, per-worker machine ownership)
// fail silently at runtime but loudly here.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-json] [packages]\n\npatterns: ./... style walks, or package directories\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modDir, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	roots := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		importPath, err := dirImportPath(modDir, modPath, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		roots = append(roots, importPath)
	}

	mod, err := analysis.LoadModule(modDir, modPath, roots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := mod.Run(analyzers.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		if *jsonOut {
			enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Column   int    `json:"column"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			continue
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModule walks up from dir to the enclosing go.mod, returning the
// module directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// expand resolves CLI patterns to package directories containing Go
// files. "dir/..." walks recursively, skipping testdata, hidden, and
// underscore directories (the go tool's rules).
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "/..."); ok {
			if base == "." || base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(p)
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		return true
	}
	return false
}

// dirImportPath maps a package directory to its import path inside the
// module.
func dirImportPath(modDir, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, modPath)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
