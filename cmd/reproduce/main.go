// Command reproduce regenerates every table and figure from the paper's
// evaluation section and writes the rendered text artifacts.
//
// Usage:
//
//	reproduce [-profile quick|standard] [-exp all|fig1|table1|fig2|...] [-seed N] [-j N] [-out DIR]
//	          [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// With -out set, each experiment's output is also written to
// DIR/<exp>.txt. Figures 2/5/6/7/8 are derived from the Table II
// production campaign, so requesting any of them runs that campaign once.
//
// -j sets how many runs execute concurrently (default: all CPUs). Each
// worker simulates on its own machine instance (reused warm across the
// runs assigned to its slot) and results are merged in seed order, so
// the output is identical for every -j value.
//
// -cpuprofile / -memprofile / -trace write pprof CPU and heap profiles and
// a runtime execution trace covering the selected experiments; pair them
// with -exp to profile one campaign in isolation. Ensemble worker
// goroutines carry the pprof label worker=<slot>, so per-slot time splits
// are one `pprof -tagfocus worker=N` (or the trace viewer's goroutine
// grouping) away. The heap profile is written at exit after a forced GC,
// so it shows live retained memory; inspect with `go tool pprof` /
// `go tool trace`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// renderer produces one experiment's text.
type renderer interface{ Render() string }

func main() {
	profileName := flag.String("profile", "quick", "experiment scale: quick or standard")
	exp := flag.String("exp", "all", "experiment to run: all, fig1, table1, fig2..fig14, table2")
	seed := flag.Int64("seed", 1, "base random seed")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel runs per campaign (output is identical for any value)")
	out := flag.String("out", "", "directory for text artifacts (optional)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (live objects after GC) to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		atExit(func() {
			pprof.StopCPUProfile()
			pf.Close()
		})
	}
	if *traceFile != "" {
		tf, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(tf); err != nil {
			fatal(err)
		}
		atExit(func() {
			trace.Stop()
			tf.Close()
		})
	}
	if *memProfile != "" {
		path := *memProfile
		atExit(func() {
			mf, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // flush dead objects so the profile shows live memory
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "reproduce:", err)
			}
		})
	}
	defer runExitHooks()

	var p experiments.Profile
	switch *profileName {
	case "quick":
		p = experiments.Quick()
	case "standard":
		p = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileName)
		os.Exit(2)
	}
	p.Workers = parallel.Workers(*jobs)

	// "t2family" regenerates the six artifacts derived from the Table II
	// production campaign in one pass.
	t2family := map[string]bool{"table2": true, "fig2": true, "fig5": true,
		"fig6": true, "fig7": true, "fig8": true}
	want := func(name string) bool {
		if *exp == "t2family" && t2family[name] {
			return true
		}
		return *exp == "all" || *exp == name
	}
	emit := func(name string, r renderer) {
		text := r.Render()
		fmt.Println(text)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	step := func(name string) func() {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== %s (%s profile) ==\n", name, p.Name)
		return func() {
			fmt.Fprintf(os.Stderr, "== %s done in %.1fs ==\n", name, time.Since(start).Seconds())
		}
	}

	ran := 0
	if want("fig1") {
		done := step("fig1")
		emit("fig1", experiments.Fig1JobSizes(p, *seed))
		done()
		ran++
	}
	if want("table1") {
		done := step("table1")
		r, err := experiments.Table1Characterization(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("table1", r)
		done()
		ran++
	}

	// The Table II campaign also feeds Figs. 2, 5, 6, 7 and 8.
	needT2 := false
	for _, n := range []string{"table2", "fig2", "fig5", "fig6", "fig7", "fig8"} {
		if want(n) {
			needT2 = true
		}
	}
	if needT2 {
		done := step("table2 campaign")
		t2, err := experiments.Table2AllApps(p, *seed)
		if err != nil {
			fatal(err)
		}
		done()
		if want("table2") {
			emit("table2", t2)
			ran++
		}
		if want("fig2") {
			emit("fig2", experiments.Fig2FromSamples(t2.Nodes, t2.Samples))
			ran++
		}
		if want("fig5") {
			emit("fig5", experiments.Fig5FromSamples(t2.Samples))
			ran++
		}
		if want("fig6") {
			emit("fig6", experiments.Fig6FromTable2(t2))
			ran++
		}
		if want("fig7") {
			emit("fig7", experiments.Fig7NormalizedAllApps(t2))
			ran++
		}
		if want("fig8") {
			emit("fig8", experiments.Fig8HACCBreakdown(t2))
			ran++
		}
	}

	if want("fig3") {
		done := step("fig3")
		r, err := experiments.Fig3GroupsSpanned(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig3", r)
		done()
		ran++
	}
	if want("fig4") {
		done := step("fig4")
		r, err := experiments.Fig4CoriGroupsSpanned(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig4", r)
		done()
		ran++
	}
	if want("fig9") {
		done := step("fig9")
		r, err := experiments.Fig9ControlledAllModes(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig9", r)
		done()
		ran++
	}
	if want("fig10") {
		done := step("fig10")
		r, err := experiments.Fig10MILCEnsembleCounters(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig10", r)
		done()
		ran++
	}
	if want("fig11") {
		done := step("fig11")
		r, err := experiments.Fig11RegimeComparison(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig11", r)
		done()
		ran++
	}
	if want("fig12") {
		done := step("fig12")
		r, err := experiments.Fig12HACCEnsembleCounters(p, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig12", r)
		done()
		ran++
	}
	if want("fig13") || want("fig14") {
		done := step("fig13+fig14 campaigns")
		r, err := experiments.Fig13DefaultSwitch(p, *seed)
		if err != nil {
			fatal(err)
		}
		done()
		if want("fig13") {
			emit("fig13", r)
			ran++
		}
		if want("fig14") {
			emit("fig14", experiments.Fig14LatencyPercentiles(r))
			ran++
		}
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: all fig1..fig14 table1 table2\n", *exp)
		runExitHooks()
		os.Exit(2)
	}
}

// exitHooks are profiler/trace finalizers that must flush even on the
// os.Exit paths (defers don't run there).
var exitHooks []func()

func atExit(fn func()) { exitHooks = append(exitHooks, fn) }

func runExitHooks() {
	for i := len(exitHooks) - 1; i >= 0; i-- {
		exitHooks[i]()
	}
	exitHooks = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	runExitHooks()
	os.Exit(1)
}
