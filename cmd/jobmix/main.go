// Command jobmix prints the synthetic Theta job-size distribution (the
// paper's Fig. 1): the CCDF of core-hours over job size for a sampled
// campaign.
//
// Usage:
//
//	jobmix [-jobs 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 20000, "number of jobs to sample")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	mix := workload.ThetaMix()
	rng := rand.New(rand.NewSource(*seed))
	ccdf := mix.CoreHourCCDF(*jobs, rng)
	fmt.Printf("%-8s %s\n", "nodes", "share of core-hours at >= nodes")
	for _, pt := range ccdf {
		bar := int(pt.Frac * 50)
		fmt.Printf("%-8.0f %-6.3f %s\n", pt.X, pt.Frac, stars(bar))
	}
	fmt.Printf("\n128-512 node share: %.1f%% (paper: ~40%%)\n",
		100*mix.FractionInRange(128, 512))
}

func stars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
