package service

import (
	"sync"

	"repro/internal/core"
)

// MachinePool keeps warm core.Machines keyed by topology configuration.
// A checked-in machine retains its kernel/fabric pair, so the next query
// against the same topology rewinds it in place (core.Machine's warm
// path) instead of rebuilding — construction is half the allocation
// volume of a run, and skipping it is what makes per-query marginal cost
// nearly free for a long-lived daemon.
//
// Correctness leans on two invariants, both machine-checked:
//   - a machine is never live in two requests at once (Checkout/Checkin
//     panic on double handout; the soak test hammers this under -race);
//   - a warm machine is behaviourally identical to a cold one
//     (core.Machine's reset-equivalence tests, plus this package's
//     cold-vs-warm byte-identity test on the full HTTP path).
type MachinePool struct {
	mu sync.Mutex //simlint:resetsafe synchronization primitive, never rewound
	// keyCap bounds the idle machines retained per key; extra checkins
	// are discarded so one burst cannot pin memory forever.
	keyCap int //simlint:resetsafe configuration; Reset discards machines, not limits
	free   map[string][]*core.Machine
	// inUse maps every checked-out machine to its key: the double-
	// handout detector and the checkin validator.
	inUse map[*core.Machine]string //simlint:resetsafe live machines keep their checkout identity across Reset

	hits, misses, discarded, prewarmed uint64
}

// PoolStats is a point-in-time snapshot of pool activity.
type PoolStats struct {
	Hits      uint64 // checkouts served by a warm machine
	Misses    uint64 // checkouts that had to build a machine
	Discarded uint64 // checkins dropped because the key was at capacity
	Prewarmed uint64 // machines built ahead of demand by Prewarm
	Idle      int    // machines currently parked
	Live      int    // machines currently checked out
}

// HitRate returns Hits/(Hits+Misses), 0 before the first checkout.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewMachinePool builds a pool retaining up to keyCap idle machines per
// topology key.
func NewMachinePool(keyCap int) *MachinePool {
	if keyCap < 1 {
		keyCap = 1
	}
	return &MachinePool{
		keyCap: keyCap,
		free:   make(map[string][]*core.Machine),
		inUse:  make(map[*core.Machine]string),
	}
}

// Checkout hands out one machine for the topology key, preferring the
// most recently parked (warmest) machine and building a fresh one on a
// pool miss. The caller must Checkin the machine when its query
// completes, success or failure.
//
//simlint:hotpath
func (p *MachinePool) Checkout(key string) (*core.Machine, error) {
	p.mu.Lock()
	if free := p.free[key]; len(free) > 0 {
		m := free[len(free)-1]
		p.free[key] = free[:len(free)-1]
		if _, live := p.inUse[m]; live {
			badCheckout()
		}
		p.inUse[m] = key
		p.hits++
		p.mu.Unlock()
		return m, nil
	}
	p.misses++
	p.mu.Unlock()

	// Build outside the lock: construction is the expensive path, and
	// concurrent misses for different keys shouldn't serialize on it.
	m, err := buildMachine(key)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.inUse[m] = key
	p.mu.Unlock()
	return m, nil
}

// Prewarm parks up to n freshly built, fabric-constructed machines for
// key before any query asks for them, so the first checkout is a pool
// hit and its run rewinds a warm fabric instead of building one. The
// count is clamped to the pool's per-key capacity and reduced by
// machines already idle under the key; prewarm builds are tallied in
// PoolStats.Prewarmed, not Misses — a miss means demand arrived cold,
// which is exactly what prewarming exists to prevent.
func (p *MachinePool) Prewarm(key string, n int) error {
	p.mu.Lock()
	if n > p.keyCap {
		n = p.keyCap
	}
	n -= len(p.free[key])
	p.mu.Unlock()
	for i := 0; i < n; i++ {
		// Build outside the lock, like the miss path: construction and
		// fabric prewarming dominate, and concurrent checkouts for other
		// keys shouldn't stall behind a boot-time warmup.
		m, err := buildMachine(key)
		if err != nil {
			return err
		}
		m.Prewarm()
		p.mu.Lock()
		if len(p.free[key]) >= p.keyCap {
			p.discarded++
		} else {
			p.free[key] = append(p.free[key], m)
			p.prewarmed++
		}
		p.mu.Unlock()
	}
	return nil
}

// CheckoutN checks out n machines for one key, unwinding on failure.
func (p *MachinePool) CheckoutN(key string, n int) ([]*core.Machine, error) {
	machines := make([]*core.Machine, 0, n)
	for i := 0; i < n; i++ {
		m, err := p.Checkout(key)
		if err != nil {
			p.CheckinAll(machines)
			return nil, err
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// Checkin parks a machine back in the pool (or discards it when the key
// already holds keyCap idle machines). Checking in a machine that is not
// currently checked out is a caller bug and panics.
//
//simlint:hotpath
func (p *MachinePool) Checkin(m *core.Machine) {
	p.mu.Lock()
	key, live := p.inUse[m]
	if !live {
		badCheckin()
	}
	delete(p.inUse, m)
	if len(p.free[key]) >= p.keyCap {
		p.discarded++
		p.mu.Unlock()
		return
	}
	p.free[key] = append(p.free[key], m)
	p.mu.Unlock()
}

// CheckinAll parks every machine in ms.
func (p *MachinePool) CheckinAll(ms []*core.Machine) {
	for _, m := range ms {
		p.Checkin(m)
	}
}

// Stats snapshots the pool counters.
func (p *MachinePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, free := range p.free { //simlint:allow detflow order-insensitive sum
		idle += len(free)
	}
	return PoolStats{
		Hits: p.hits, Misses: p.misses, Discarded: p.discarded,
		Prewarmed: p.prewarmed,
		Idle:      idle, Live: len(p.inUse),
	}
}

// Reset discards all idle machines and zeroes the counters. With no
// queries in flight (the only state tests call it in) every subsequent
// checkout is cold; a machine still live across a Reset keeps its
// checkout identity and parks normally at its checkin. Serving never
// needs Reset — tests use it as the explicit cold path.
func (p *MachinePool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = make(map[string][]*core.Machine)
	p.hits, p.misses, p.discarded, p.prewarmed = 0, 0, 0, 0
}

// buildMachine constructs a fresh machine for a pool key (a validated
// topology name — DecodeRequest only admits names in the topologies
// table).
//
//simlint:cold pool-miss construction path; fabric build dominates any formatting
func buildMachine(key string) (*core.Machine, error) {
	cfgFn, ok := topologies[key]
	if !ok {
		return nil, errUnknownPoolKey(key)
	}
	return core.NewMachine(cfgFn())
}

// Cold panic/error helpers, outlined so the annotated hot paths stay
// free of boxing and formatting.

func badCheckout() {
	panic("service: pool handed out a machine that is already live")
}

func badCheckin() {
	panic("service: checkin of a machine that was never checked out")
}

func errUnknownPoolKey(key string) error {
	return &unknownPoolKeyError{key: key}
}

type unknownPoolKeyError struct{ key string }

func (e *unknownPoolKeyError) Error() string {
	return "service: unknown pool key " + e.key
}
