package service

import (
	"fmt"
	"strings"
	"sync"
)

// metrics aggregates serving observability: everything wall-clock or
// load-dependent lives here, exposed on /metrics only, never in a query
// response (which must stay a deterministic function of the query).
// The exposition format is Prometheus-compatible text.
type metrics struct {
	mu sync.Mutex

	requests       uint64  // POST /v1/query requests received
	clientErrors   uint64  // rejected with 4xx (validation, limits)
	serverErrors   uint64  // failed with 5xx
	coalesced      uint64  // requests served by riding another execution
	executed       uint64  // ensembles actually simulated
	rejectedTenant uint64  // 429s from the per-tenant cap
	queueDepth     int64   // requests currently inside the handler
	latencySum     float64 // seconds spent executing ensembles
	latencyCount   uint64
	latencyMax     float64

	// Simulation-cost counters, aggregated over every executed run:
	// kernel events and delivered packets (their ratio is the
	// events-per-packet figure link fusion drives down), and how many
	// runs rewound a warm fabric versus building one cold.
	simEvents  uint64
	simPackets uint64
	warmReuses uint64
	coldBuilds uint64

	// Streaming-reduction counters: how many samples came back compact
	// (full report digested on the worker and dropped) and the retained
	// size of those digests in bytes — the O(runs)-vs-O(workers) memory
	// story made observable.
	samplesReduced uint64
	digestBytes    uint64
}

func (m *metrics) requestStart() {
	m.mu.Lock()
	m.requests++
	m.queueDepth++
	m.mu.Unlock()
}

func (m *metrics) requestEnd(status int) {
	m.mu.Lock()
	m.queueDepth--
	switch {
	case status == 429:
		m.rejectedTenant++
		m.clientErrors++
	case status >= 400 && status < 500:
		m.clientErrors++
	case status >= 500:
		m.serverErrors++
	}
	m.mu.Unlock()
}

func (m *metrics) recordCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *metrics) recordExecution(seconds float64) {
	m.mu.Lock()
	m.executed++
	m.latencySum += seconds
	m.latencyCount++
	if seconds > m.latencyMax {
		m.latencyMax = seconds
	}
	m.mu.Unlock()
}

func (m *metrics) recordSim(events, packets, warmReuses, coldBuilds uint64) {
	m.mu.Lock()
	m.simEvents += events
	m.simPackets += packets
	m.warmReuses += warmReuses
	m.coldBuilds += coldBuilds
	m.mu.Unlock()
}

func (m *metrics) recordReduced(samples, bytes uint64) {
	m.mu.Lock()
	m.samplesReduced += samples
	m.digestBytes += bytes
	m.mu.Unlock()
}

// render writes the exposition text. Pool stats are passed in so the
// metrics page is one consistent snapshot.
func (m *metrics) render(pool PoolStats) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	line := func(name string, format string, v any) {
		fmt.Fprintf(&b, "simd_%s "+format+"\n", name, v)
	}
	line("requests_total", "%d", m.requests)
	line("requests_coalesced_total", "%d", m.coalesced)
	line("requests_rejected_tenant_total", "%d", m.rejectedTenant)
	line("request_errors_client_total", "%d", m.clientErrors)
	line("request_errors_server_total", "%d", m.serverErrors)
	line("queries_executed_total", "%d", m.executed)
	line("queue_depth", "%d", m.queueDepth)
	line("pool_hits_total", "%d", pool.Hits)
	line("pool_misses_total", "%d", pool.Misses)
	line("pool_discarded_total", "%d", pool.Discarded)
	line("pool_prewarmed_total", "%d", pool.Prewarmed)
	line("pool_idle_machines", "%d", pool.Idle)
	line("pool_live_machines", "%d", pool.Live)
	line("pool_hit_rate", "%g", pool.HitRate())
	line("sim_events_total", "%d", m.simEvents)
	line("sim_packets_delivered_total", "%d", m.simPackets)
	epp := 0.0
	if m.simPackets > 0 {
		epp = float64(m.simEvents) / float64(m.simPackets)
	}
	line("events_per_packet", "%g", epp)
	line("machine_warm_reuses_total", "%d", m.warmReuses)
	line("machine_cold_builds_total", "%d", m.coldBuilds)
	line("samples_reduced_total", "%d", m.samplesReduced)
	line("retained_digest_bytes", "%d", m.digestBytes)
	line("query_latency_seconds_count", "%d", m.latencyCount)
	line("query_latency_seconds_sum", "%g", m.latencySum)
	line("query_latency_seconds_max", "%g", m.latencyMax)
	return b.String()
}
