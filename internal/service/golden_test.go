package service

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenResponsePerMode pins the exact JSON response bytes for one
// single-mode query per routing-bias mode AD0–AD3. Any change to the
// wire format, float rendering, field order, or the simulated numbers
// themselves shows up as a golden diff — deliberate changes regenerate
// with:
//
//	go test ./internal/service -run TestGolden -update
//
// The goldens double as wire-format documentation: they are the literal
// bytes a client receives.
func TestGoldenResponsePerMode(t *testing.T) {
	srv := New(testConfig())
	h := srv.Handler()
	for _, mode := range []string{"AD0", "AD1", "AD2", "AD3"} {
		t.Run(mode, func(t *testing.T) {
			body := fmt.Sprintf(
				`{"topology":"test","app":"MILC","nodes":8,"modes":[%q],"runs":2,"seed":42}`, mode)
			got := mustPost(t, h, body)
			checkGolden(t, "query_"+mode+".golden", got)
		})
	}
}

// TestGoldenMultiModeResponse pins the canonical two-mode comparison
// response, including the "recommended" field the what-if workflow is
// built around.
func TestGoldenMultiModeResponse(t *testing.T) {
	got := mustPost(t, New(testConfig()).Handler(), canonicalBody)
	checkGolden(t, "query_AD0_vs_AD3.golden", got)
}

// checkGolden compares got against testdata/name, rewriting under
// -update (same idiom as internal/experiments/golden_test.go).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/service -run TestGolden -update`): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("response deviates from %s (rerun with -update if deliberate):\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}
