// Package service is the simulation-as-a-service layer behind cmd/simd:
// a long-running HTTP/JSON daemon answering routing what-if queries
// ("this app mix, this routing mode, this background load → predicted
// runtime, stall ratio, tail latency") from config-keyed pools of warm
// core.Machines.
//
// The hard contract is determinism: one request produces one byte
// sequence. The same canonical query returns a byte-identical response
// body whether the machine pool is cold or warm, whether the ensemble
// fans out over 1 worker or 8, and whether the request executed alone or
// was coalesced with concurrent duplicates — the service inherits the
// simulator's seed-determinism and the seed-order merge of
// internal/parallel, and the test suite checks the inheritance on the
// full HTTP path rather than trusting the layering. Wall-clock
// observability (latency, pool hit rate, queue depth) is therefore
// confined to /metrics and never enters a query response.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Request is the wire format of one what-if query (POST /v1/query).
// Unknown fields are rejected so schema typos fail loudly.
type Request struct {
	// Topology names the machine configuration: "theta-mini" (default),
	// "cori-mini", "theta", "cori", or "test" (a tiny 4-group dragonfly
	// for smoke checks). It is the machine-pool key.
	Topology string `json:"topology,omitempty"`
	// App is the proxy application, e.g. "MILC" (see apps.Names).
	App string `json:"app"`
	// Nodes is the job size in compute nodes.
	Nodes int `json:"nodes"`
	// Modes lists the routing modes to compare ("AD0".."AD3"); empty
	// means all four.
	Modes []string `json:"modes,omitempty"`
	// Runs is the number of seeded runs per mode (default 4).
	Runs int `json:"runs,omitempty"`
	// Seed is the base seed; run i uses Seed+i (default 1). Must be
	// non-negative.
	Seed *int64 `json:"seed,omitempty"`
	// Background describes the production noise filling the rest of the
	// machine. Omitted means the paper's production default (75%
	// utilization, system-default routing); utilization 0 runs the app
	// on an otherwise idle machine.
	Background *BackgroundRequest `json:"background,omitempty"`
	// Tenant attributes the request for per-tenant concurrency limits
	// (default "default"). It never influences the response bytes.
	Tenant string `json:"tenant,omitempty"`
}

// BackgroundRequest selects the background load of a query.
type BackgroundRequest struct {
	// Utilization is the fraction (0..1) of the machine's remaining
	// nodes kept busy with noise jobs.
	Utilization float64 `json:"utilization"`
	// Mode, when set, routes all background traffic with one mode;
	// empty keeps the Cray default environment (AD0, alltoall AD1).
	Mode string `json:"mode,omitempty"`
}

// Limits bounds what one request may ask for. The zero value of a field
// means its DefaultLimits entry.
type Limits struct {
	MaxRuns  int   // seeded runs per mode
	MaxModes int   // routing modes per query
	MaxNodes int   // job size cap (also capped by the topology's nodes)
	MaxBody  int64 // request body bytes
}

// DefaultLimits returns the daemon defaults.
func DefaultLimits() Limits {
	return Limits{MaxRuns: 16, MaxModes: 8, MaxNodes: 1 << 14, MaxBody: 1 << 16}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxRuns <= 0 {
		l.MaxRuns = d.MaxRuns
	}
	if l.MaxModes <= 0 {
		l.MaxModes = d.MaxModes
	}
	if l.MaxNodes <= 0 {
		l.MaxNodes = d.MaxNodes
	}
	if l.MaxBody <= 0 {
		l.MaxBody = d.MaxBody
	}
	return l
}

// topologies maps request topology names to configurations. The map is
// never ranged over — lookup only — so iteration order cannot leak into
// responses.
var topologies = map[string]func() topology.Config{
	"theta-mini": topology.ThetaMiniConfig,
	"cori-mini":  topology.CoriMiniConfig,
	"theta":      topology.ThetaConfig,
	"cori":       topology.CoriConfig,
	"test":       func() topology.Config { return topology.TestConfig(4) },
}

// TopologyNames lists the accepted topology names, sorted.
func TopologyNames() []string {
	out := make([]string, 0, len(topologies))
	for name := range topologies { //simlint:allow detrand sorted immediately below
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Query is a validated, normalized request: defaults applied, names
// resolved, bounds checked. Everything that influences simulation output
// is in here; Tenant rides along for admission only.
type Query struct {
	Topology string
	App      apps.App
	Nodes    int
	Modes    []routing.Mode
	Runs     int
	Seed     int64
	// BGUtil/BGMode describe the background: BGUtil 0 means isolated.
	// BGModeSet distinguishes an explicit uniform mode from the default
	// mixed environment.
	BGUtil    float64
	BGMode    routing.Mode
	BGModeSet bool
	Tenant    string
}

// Key canonically identifies the simulation a query requests — topology,
// app, size, modes, seeds, background — and deliberately excludes the
// tenant: two tenants asking the same question share one answer. It is
// the coalescing key, and its topology prefix is the machine-pool key.
func (q Query) Key() string {
	modes := make([]string, len(q.Modes))
	for i, m := range q.Modes {
		modes[i] = m.String()
	}
	bg := "none"
	if q.BGUtil > 0 {
		if q.BGModeSet {
			bg = fmt.Sprintf("%.6g@%s", q.BGUtil, q.BGMode)
		} else {
			bg = fmt.Sprintf("%.6g@default", q.BGUtil)
		}
	}
	return fmt.Sprintf("%s|%s|n%d|%s|r%d|s%d|bg:%s",
		q.Topology, q.App.Name(), q.Nodes, strings.Join(modes, ","), q.Runs, q.Seed, bg)
}

// DecodeRequest parses and validates one request body into a Query.
// Every failure is a client error (HTTP 400): malformed JSON, unknown
// fields, out-of-range sizes, negative seeds. It never panics and never
// allocates proportionally to hostile size fields — only to the body
// itself, which is capped by lim.MaxBody.
func DecodeRequest(data []byte, lim Limits) (Query, error) {
	lim = lim.withDefaults()
	if int64(len(data)) > lim.MaxBody {
		return Query{}, fmt.Errorf("request body %d bytes exceeds limit %d", len(data), lim.MaxBody)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Query{}, fmt.Errorf("malformed request: %w", err)
	}
	if dec.More() {
		return Query{}, fmt.Errorf("malformed request: trailing data after JSON object")
	}
	return req.normalize(lim)
}

// normalize applies defaults and bounds-checks every field.
func (req Request) normalize(lim Limits) (Query, error) {
	q := Query{}

	name := req.Topology
	if name == "" {
		name = "theta-mini"
	}
	cfgFn, ok := topologies[name]
	if !ok {
		return Query{}, fmt.Errorf("unknown topology %q (one of %s)",
			name, strings.Join(TopologyNames(), ", "))
	}
	cfg := cfgFn()
	q.Topology = name

	app, err := apps.ByName(req.App)
	if err != nil {
		return Query{}, err
	}
	q.App = app

	maxNodes := cfg.ActiveNodes
	if lim.MaxNodes < maxNodes {
		maxNodes = lim.MaxNodes
	}
	if req.Nodes < 1 || req.Nodes > maxNodes {
		return Query{}, fmt.Errorf("nodes %d out of range 1..%d for topology %q",
			req.Nodes, maxNodes, name)
	}
	q.Nodes = req.Nodes

	modeNames := req.Modes
	if len(modeNames) == 0 {
		modeNames = []string{"AD0", "AD1", "AD2", "AD3"}
	}
	if len(modeNames) > lim.MaxModes {
		return Query{}, fmt.Errorf("%d modes exceeds limit %d", len(modeNames), lim.MaxModes)
	}
	q.Modes = make([]routing.Mode, len(modeNames))
	for i, s := range modeNames {
		m, err := routing.ParseMode(s)
		if err != nil {
			return Query{}, err
		}
		for _, prev := range q.Modes[:i] {
			if prev == m {
				return Query{}, fmt.Errorf("duplicate mode %q", m)
			}
		}
		q.Modes[i] = m
	}

	q.Runs = req.Runs
	if q.Runs == 0 {
		q.Runs = 4
	}
	if q.Runs < 1 || q.Runs > lim.MaxRuns {
		return Query{}, fmt.Errorf("runs %d out of range 1..%d", req.Runs, lim.MaxRuns)
	}

	q.Seed = 1
	if req.Seed != nil {
		if *req.Seed < 0 {
			return Query{}, fmt.Errorf("seed %d must be non-negative", *req.Seed)
		}
		q.Seed = *req.Seed
	}

	q.BGUtil = 0.75 // the paper's production default
	if req.Background != nil {
		u := req.Background.Utilization
		if u < 0 || u > 1 {
			return Query{}, fmt.Errorf("background utilization %g out of range 0..1", u)
		}
		q.BGUtil = u
		if req.Background.Mode != "" {
			m, err := routing.ParseMode(req.Background.Mode)
			if err != nil {
				return Query{}, err
			}
			q.BGMode = m
			q.BGModeSet = true
		}
	}

	q.Tenant = req.Tenant
	if q.Tenant == "" {
		q.Tenant = "default"
	}
	if len(q.Tenant) > 64 {
		return Query{}, fmt.Errorf("tenant name exceeds 64 bytes")
	}
	return q, nil
}
