package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// Service tests run at the Bench profile on the tiny "test" dragonfly:
// the smallest scale that still drives placement, background noise,
// adaptive routing, and the counter machinery end to end. The profile is
// deliberately NOT -short-sensitive — golden bytes must not depend on
// test flags.

// testConfig returns the baseline server config for tests.
func testConfig() Config {
	return Config{Profile: experiments.Bench(), Workers: 2}
}

// canonicalBody is the fixed request the determinism gate replays under
// every execution condition.
const canonicalBody = `{"topology":"test","app":"MILC","nodes":8,"modes":["AD0","AD3"],"runs":2,"seed":42}`

// post drives one query through the handler and returns status and body.
func post(t *testing.T, h http.Handler, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// mustPost is post asserting HTTP 200.
func mustPost(t *testing.T, h http.Handler, body string) []byte {
	t.Helper()
	status, resp := post(t, h, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", status, resp)
	}
	return resp
}

// TestEndToEndOverHTTP exercises the daemon through a real listener:
// health probe, one query, and the metrics page reflecting it.
func TestEndToEndOverHTTP(t *testing.T) {
	srv := New(testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if status, body := get("/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", status, body)
	}

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(canonicalBody))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body:\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"recommended"`) {
		t.Fatalf("response missing recommendation:\n%s", body)
	}

	status, metrics := get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, want := range []string{
		"simd_requests_total 1",
		"simd_queries_executed_total 1",
		"simd_pool_misses_total 2", // workers=2, cold pool
		"simd_pool_prewarmed_total 0",
		"simd_queue_depth 0",
		"simd_query_latency_seconds_count 1",
		"simd_sim_events_total ",
		"simd_sim_packets_delivered_total ",
		"simd_events_per_packet ",
		"simd_machine_warm_reuses_total ",
		"simd_machine_cold_builds_total ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// One executed query must leave real simulation cost on the page:
	// zero events, packets, or events/packet means the plumbing from
	// RunResult through Sample to /metrics is severed.
	for _, zero := range []string{
		"simd_sim_events_total 0\n",
		"simd_sim_packets_delivered_total 0\n",
		"simd_events_per_packet 0\n",
	} {
		if strings.Contains(metrics, zero) {
			t.Errorf("metrics shows %q after an executed query:\n%s", strings.TrimSpace(zero), metrics)
		}
	}
}

// TestPrewarmServesFirstQueryWarm drives a query into a prewarmed
// server: every checkout must be a pool hit, every run must rewind a
// warm fabric (zero cold builds during serving), and — the part that
// makes prewarming safe to ship — the response bytes must be identical
// to a cold server's.
func TestPrewarmServesFirstQueryWarm(t *testing.T) {
	cold := New(testConfig())
	coldResp := mustPost(t, cold.Handler(), canonicalBody)

	srv := New(testConfig())
	if err := srv.Prewarm([]string{"test"}); err != nil {
		t.Fatal(err)
	}
	if s := srv.PoolStats(); s.Prewarmed != 2 || s.Idle != 2 { // Workers=2
		t.Fatalf("after Prewarm: %+v", s)
	}

	warmResp := mustPost(t, srv.Handler(), canonicalBody)
	if string(warmResp) != string(coldResp) {
		t.Errorf("prewarmed response differs from cold response:\nwarm: %s\ncold: %s",
			warmResp, coldResp)
	}
	s := srv.PoolStats()
	if s.Hits != 2 || s.Misses != 0 {
		t.Fatalf("first query on prewarmed pool should be all hits: %+v", s)
	}

	// 2 runs x 2 modes on fabric-prewarmed machines: 4 warm rewinds,
	// no cold builds inside the serving path.
	metrics := srv.metrics.render(srv.PoolStats())
	for _, want := range []string{
		"simd_pool_prewarmed_total 2",
		"simd_machine_warm_reuses_total 4",
		"simd_machine_cold_builds_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	if err := srv.Prewarm([]string{"no-such-topology"}); err == nil {
		t.Fatal("Prewarm accepted an unknown topology")
	}
}

// TestRequestValidationStatusCodes pins the 4xx surface of the request
// parser on the HTTP path: malformed bodies, absurd sizes, and negative
// seeds must be client errors, never 500s (and never panics — the fuzz
// target covers the long tail).
func TestRequestValidationStatusCodes(t *testing.T) {
	srv := New(testConfig())
	h := srv.Handler()
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `hello`},
		{"wrong type", `[1,2,3]`},
		{"truncated", `{"app":"MILC"`},
		{"unknown field", `{"app":"MILC","nodes":8,"frobnicate":1}`},
		{"trailing data", canonicalBody + `{"again":true}`},
		{"unknown app", `{"app":"LINPACK","nodes":8}`},
		{"unknown topology", `{"topology":"summit","app":"MILC","nodes":8}`},
		{"zero nodes", `{"topology":"test","app":"MILC","nodes":0}`},
		{"negative nodes", `{"topology":"test","app":"MILC","nodes":-4}`},
		{"absurd nodes", `{"topology":"test","app":"MILC","nodes":1000000000}`},
		{"negative seed", `{"topology":"test","app":"MILC","nodes":8,"seed":-1}`},
		{"negative runs", `{"topology":"test","app":"MILC","nodes":8,"runs":-2}`},
		{"absurd runs", `{"topology":"test","app":"MILC","nodes":8,"runs":1000000}`},
		{"bad mode", `{"topology":"test","app":"MILC","nodes":8,"modes":["AD9"]}`},
		{"duplicate mode", `{"topology":"test","app":"MILC","nodes":8,"modes":["AD0","AD0"]}`},
		{"bad utilization", `{"topology":"test","app":"MILC","nodes":8,"background":{"utilization":1.5}}`},
		{"huge body", `{"app":"MILC","nodes":8,"tenant":"` + strings.Repeat("x", 1<<17) + `"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, h, tc.body)
			if status < 400 || status >= 500 {
				t.Fatalf("status = %d, want 4xx; body:\n%s", status, body)
			}
		})
	}
	if status, _ := post(t, h, `{"topology":"test","app":"MILC","nodes":8,"runs":1,"modes":["AD0"]}`); status != http.StatusOK {
		t.Fatalf("valid request after rejections: status = %d", status)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/query", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status = %d, want 405", rec.Code)
	}
}

// TestQueryTimeoutReturns504 pins the request-timeout path: a timeout
// that has already expired lets no run dispatch (parallel.MapContext's
// caller-cancels contract), and the client sees a 504, not a hang or a
// partial response presented as complete.
func TestQueryTimeoutReturns504(t *testing.T) {
	cfg := testConfig()
	cfg.QueryTimeout = 1 // nanosecond: expired before the first run
	srv := New(cfg)
	status, body := post(t, srv.Handler(), canonicalBody)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body:\n%s", status, body)
	}
	if !strings.Contains(string(body), "timeout") {
		t.Fatalf("body does not mention the timeout:\n%s", body)
	}
}
