package service

import "sync"

// tenantLimiter enforces per-tenant concurrency caps. Admission is
// non-blocking: a tenant already running `limit` requests gets an
// immediate 429 rather than a queue slot, which keeps one tenant's burst
// from occupying the accept loop and makes rejection deterministic to
// test. Admission happens before coalescing, so the cap counts a
// tenant's in-flight requests whether they execute or ride another
// execution.
type tenantLimiter struct {
	mu    sync.Mutex
	limit int            // 0 disables limiting
	inUse map[string]int // tenant → live request count
}

func newTenantLimiter(limit int) *tenantLimiter {
	return &tenantLimiter{limit: limit, inUse: make(map[string]int)}
}

// tryAcquire claims one slot for tenant, reporting false at the cap.
func (l *tenantLimiter) tryAcquire(tenant string) bool {
	if l.limit <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse[tenant] >= l.limit {
		return false
	}
	l.inUse[tenant]++
	return true
}

// release returns tenant's slot.
func (l *tenantLimiter) release(tenant string) {
	if l.limit <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inUse[tenant] <= 1 {
		delete(l.inUse, tenant)
	} else {
		l.inUse[tenant]--
	}
}
