package service

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzRequestDecode throws arbitrary bytes at the request parser. The
// contract under fuzzing: DecodeRequest either returns a valid,
// limit-respecting Query or an error — it never panics, never allocates
// proportionally to claimed (rather than actual) input size, and never
// lets an out-of-range value (absurd node counts, negative seeds,
// unknown modes) through to the simulator. The seed corpus in
// testdata/fuzz/FuzzRequestDecode covers each validation branch so even
// a plain `go test` run (which executes seeds only) exercises them.
func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		canonicalBody,
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"app":"MILC"`,
		`{"topology":"test","app":"MILC","nodes":8}`,
		`{"topology":"summit","app":"MILC","nodes":8}`,
		`{"app":"LINPACK","nodes":8}`,
		`{"app":"MILC","nodes":-1}`,
		`{"app":"MILC","nodes":1000000000}`,
		`{"app":"MILC","nodes":8,"seed":-42}`,
		`{"app":"MILC","nodes":8,"seed":9223372036854775807}`,
		`{"app":"MILC","nodes":8,"runs":-5}`,
		`{"app":"MILC","nodes":8,"runs":999999}`,
		`{"app":"MILC","nodes":8,"modes":["AD9"]}`,
		`{"app":"MILC","nodes":8,"modes":["AD0","AD0"]}`,
		`{"app":"MILC","nodes":8,"modes":["AD0","AD1","AD2","AD3","AD0","AD1","AD2","AD3","AD0"]}`,
		`{"app":"MILC","nodes":8,"background":{"utilization":-0.5}}`,
		`{"app":"MILC","nodes":8,"background":{"utilization":2}}`,
		`{"app":"MILC","nodes":8,"background":{"mode":"AD7"}}`,
		`{"app":"MILC","nodes":8,"frobnicate":true}`,
		canonicalBody + `{"again":true}`,
		`{"app":"MILC","nodes":8,"tenant":"` + strings.Repeat("x", 100) + `"}`,
		`{"nodes":8.5,"app":"MILC"}`,
		"{\"app\":\"MILC\",\"nodes\":8}\x00",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeRequest(data, lim)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		// Anything accepted must be inside the validated envelope: these
		// are the invariants the simulator relies on.
		if q.Nodes < 1 || q.Nodes > lim.MaxNodes {
			t.Fatalf("accepted out-of-range nodes %d from %q", q.Nodes, data)
		}
		if q.Runs < 1 || q.Runs > lim.MaxRuns {
			t.Fatalf("accepted out-of-range runs %d from %q", q.Runs, data)
		}
		if q.Seed < 0 {
			t.Fatalf("accepted negative seed %d from %q", q.Seed, data)
		}
		if len(q.Modes) == 0 || len(q.Modes) > lim.MaxModes {
			t.Fatalf("accepted %d modes from %q", len(q.Modes), data)
		}
		if q.BGUtil < 0 || q.BGUtil > 1 {
			t.Fatalf("accepted out-of-range utilization %v from %q", q.BGUtil, data)
		}
		if q.Tenant == "" || len(q.Tenant) > 64 || !utf8.ValidString(q.Tenant) {
			t.Fatalf("accepted bad tenant %q from %q", q.Tenant, data)
		}
		if _, ok := topologies[q.Topology]; !ok {
			t.Fatalf("accepted unknown topology %q from %q", q.Topology, data)
		}
		// The canonical key must be stable: decoding the same bytes twice
		// yields the same coalescing identity.
		q2, err := DecodeRequest(data, lim)
		if err != nil || q.Key() != q2.Key() {
			t.Fatalf("unstable decode for %q: %v", data, err)
		}
	})
}
