package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPoolCheckoutCheckin exercises the pool's bookkeeping: cold
// checkouts miss, checkins park, warm checkouts hit LIFO (warmest
// first), and the per-key cap discards the overflow.
func TestPoolCheckoutCheckin(t *testing.T) {
	p := NewMachinePool(2)
	m1, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	m3, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Misses != 3 || s.Hits != 0 || s.Live != 3 {
		t.Fatalf("after 3 cold checkouts: %+v", s)
	}

	p.Checkin(m1)
	p.Checkin(m2)
	p.Checkin(m3) // over cap 2: discarded
	s := p.Stats()
	if s.Idle != 2 || s.Discarded != 1 || s.Live != 0 {
		t.Fatalf("after 3 checkins with cap 2: %+v", s)
	}

	got, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	if got != m2 {
		t.Errorf("checkout is not LIFO: got %p, want most recently parked %p", got, m2)
	}
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("warm checkout should hit: %+v", s)
	}
}

// TestPoolPrewarm pins the prewarm contract: prewarmed machines are
// parked idle with their fabric already constructed, the first checkout
// against the key is a pool hit (not a miss), and the first run on that
// machine takes the warm rewind path — the entire point of paying
// construction at boot instead of inside the first request's latency.
func TestPoolPrewarm(t *testing.T) {
	p := NewMachinePool(4)
	if err := p.Prewarm("test", 2); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Prewarmed != 2 || s.Idle != 2 || s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("after prewarm(2): %+v", s)
	}

	m, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("first checkout after prewarm should hit: %+v", s)
	}
	// The prewarmed machine's fabric exists already (one cold build on
	// the books); its first real run must reuse it warm.
	if warm, cold := m.ReuseStats(); warm != 0 || cold != 1 {
		t.Fatalf("prewarmed machine reuse stats = warm %d cold %d, want 0/1", warm, cold)
	}
	m.Prewarm() // idempotent: already warm, builds and counts nothing
	if warm, cold := m.ReuseStats(); warm != 0 || cold != 1 {
		t.Fatalf("re-prewarm changed the books: warm %d cold %d, want 0/1", warm, cold)
	}

	// Prewarm tops up to n, counting machines already idle; unknown
	// topologies fail like any other build.
	p.Checkin(m)
	if err := p.Prewarm("test", 3); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Idle != 3 || s.Prewarmed != 3 {
		t.Fatalf("top-up prewarm: %+v", s)
	}
	if err := p.Prewarm("summit", 1); err == nil {
		t.Fatal("prewarm of unknown topology did not fail")
	}
}

// TestPoolKeysAreIsolated checks machines park under their own topology
// key: a warm "test" machine must never satisfy a "theta-mini" query.
func TestPoolKeysAreIsolated(t *testing.T) {
	p := NewMachinePool(4)
	m, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(m)

	if _, err := p.Checkout("theta-mini"); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("cross-key checkout must miss: %+v", s)
	}
}

// TestPoolDoubleCheckinPanics pins the double-handout gate: returning a
// machine the pool does not consider live is a bug in the caller, and
// the pool refuses to continue rather than hand the same machine to two
// queries later.
func TestPoolDoubleCheckinPanics(t *testing.T) {
	p := NewMachinePool(4)
	m, err := p.Checkout("test")
	if err != nil {
		t.Fatal(err)
	}
	p.Checkin(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double checkin did not panic")
		}
	}()
	p.Checkin(m)
}

// TestPoolUnknownKey checks Checkout surfaces a build error for a key
// with no registered topology instead of panicking.
func TestPoolUnknownKey(t *testing.T) {
	p := NewMachinePool(4)
	if _, err := p.Checkout("no-such-topology"); err == nil {
		t.Fatal("checkout of unknown key succeeded")
	}
}

// TestTenantLimitReturns429 holds one query in flight at the test hook
// and checks that the same tenant's next query is rejected immediately
// with 429 while a different tenant is admitted (and coalesces onto the
// in-flight execution).
func TestTenantLimitReturns429(t *testing.T) {
	cfg := testConfig()
	cfg.TenantLimit = 1
	srv := New(cfg)
	h := srv.Handler()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHookExecuting = func(string) {
		entered <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, resp := post(t, h, canonicalBody); status != http.StatusOK {
			t.Errorf("leader: status %d: %s", status, resp)
		}
	}()
	<-entered

	// Same tenant ("default"), limit 1: immediate 429, no queueing.
	status, body := post(t, h, canonicalBody)
	if status != http.StatusTooManyRequests {
		t.Errorf("same-tenant status = %d, want 429; body:\n%s", status, body)
	}

	// A different tenant is admitted; identical query, so it coalesces
	// onto the held execution rather than deadlocking on the hook.
	otherTenant := canonicalBody[:len(canonicalBody)-1] + `,"tenant":"other"}`
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, resp := post(t, h, otherTenant); status != http.StatusOK {
			t.Errorf("other tenant: status %d: %s", status, resp)
		}
	}()
	key := mustDecode(t, canonicalBody).Key()
	waitForWaiters(t, srv, key, 1)
	close(release)
	wg.Wait()

	if m := snapshotMetrics(srv); m.executed != 1 {
		t.Errorf("executed = %d, want 1", m.executed)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "simd_requests_rejected_tenant_total 1") {
		t.Errorf("metrics missing tenant rejection:\n%s", rec.Body.String())
	}
}
