package service

import (
	"encoding/json"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Response is the wire format of one query answer. Every field derives
// from simulated quantities only — no wall-clock time, pool state, or
// worker count can reach it — which is what makes the byte-identity
// contract possible. Tenant identity is also excluded: coalesced
// duplicates from different tenants share these bytes.
type Response struct {
	// Request echoes the normalized query the response answers.
	Request RequestEcho `json:"request"`
	// Modes holds one aggregate per requested routing mode, in request
	// order.
	Modes []ModeResult `json:"modes"`
	// Recommended is the mode with the lowest mean predicted runtime
	// (ties break toward the earlier mode in request order) — the
	// paper's "which bias should this app mix run with?" answer.
	Recommended string `json:"recommended"`
}

// RequestEcho is the normalized request embedded in a response.
type RequestEcho struct {
	Topology   string          `json:"topology"`
	App        string          `json:"app"`
	Nodes      int             `json:"nodes"`
	Modes      []string        `json:"modes"`
	Runs       int             `json:"runs"`
	Seed       int64           `json:"seed"`
	Background *BackgroundEcho `json:"background,omitempty"`
}

// BackgroundEcho is the normalized background spec in a response.
type BackgroundEcho struct {
	Utilization float64 `json:"utilization"`
	Mode        string  `json:"mode,omitempty"`
}

// ModeResult aggregates one routing mode's seeded runs.
type ModeResult struct {
	Mode string `json:"mode"`
	Runs int    `json:"runs"`
	// Predicted runtime statistics over the seeded runs (simulated
	// seconds). The percentiles are the tail-latency answer: what the
	// unluckiest placements/background draws cost.
	RuntimeMeanSec float64 `json:"runtime_mean_sec"`
	RuntimeStdSec  float64 `json:"runtime_std_sec"`
	RuntimeP95Sec  float64 `json:"runtime_p95_sec"`
	RuntimeP99Sec  float64 `json:"runtime_p99_sec"`
	// MPIFracMean is the mean fraction of runtime spent in MPI.
	MPIFracMean float64 `json:"mpi_frac_mean"`
	// StallRatio is total stalls over total flits on the job's local
	// network tiles, pooled over all runs (the paper's congestion
	// indicator, Fig. 6).
	StallRatio float64 `json:"stall_ratio"`
	// NonMinimalFrac is the fraction of the job's own packets that took
	// a non-minimal route, pooled over all runs.
	NonMinimalFrac float64 `json:"nonminimal_frac"`
	// MeanTransitUsec is the mean per-packet network transit in
	// microseconds, averaged over runs.
	MeanTransitUsec float64 `json:"mean_transit_usec"`
}

// echo builds the response's request echo from a normalized query.
func (q Query) echo() RequestEcho {
	modes := make([]string, len(q.Modes))
	for i, m := range q.Modes {
		modes[i] = m.String()
	}
	e := RequestEcho{
		Topology: q.Topology,
		App:      q.App.Name(),
		Nodes:    q.Nodes,
		Modes:    modes,
		Runs:     q.Runs,
		Seed:     q.Seed,
	}
	if q.BGUtil > 0 {
		bg := &BackgroundEcho{Utilization: q.BGUtil}
		if q.BGModeSet {
			bg.Mode = q.BGMode.String()
		}
		e.Background = bg
	}
	return e
}

// networkTileClasses are the router tile classes counted into StallRatio.
var networkTileClasses = []topology.TileClass{
	topology.TileRank1, topology.TileRank2, topology.TileRank3,
}

// buildResponse aggregates the ensemble's samples into a response.
// Samples arrive compact (Reduced digest only, no full report) in
// (run, mode) interleaved order from the seed-order merge; each mode's
// values fold into online aggregates in that fixed order, so float
// summation order — and therefore the marshaled bytes — is independent
// of pool warmth, worker count, and coalescing.
func buildResponse(q Query, samples []experiments.Sample) *Response {
	resp := &Response{Request: q.echo(), Modes: make([]ModeResult, len(q.Modes))}
	for mi, mode := range q.Modes {
		runtimes, mpiFracs, transits := stats.NewAgg(), stats.NewAgg(), stats.NewAgg()
		var flits, minPkts, nonMinPkts uint64
		var stalls float64
		for si := mi; si < len(samples); si += len(q.Modes) {
			s := samples[si]
			runtimes.Add(s.RuntimeSec)
			frac := 0.0
			if s.RuntimeSec > 0 {
				frac = s.MPISec() / s.RuntimeSec
			}
			mpiFracs.Add(frac)
			transits.Add(s.MeanTransitSec)
			if s.Reduced != nil {
				for _, class := range networkTileClasses {
					flits += s.Reduced.LocalTiles.Flits[class]
					stalls += s.Reduced.LocalTiles.Stalls[class]
				}
			}
			minPkts += s.MinPkts
			nonMinPkts += s.NonMinPkts
		}
		ps := runtimes.Percentiles([]float64{95, 99})
		r := ModeResult{
			Mode:           mode.String(),
			Runs:           runtimes.Count(),
			RuntimeMeanSec: runtimes.Mean(),
			RuntimeStdSec:  runtimes.Std(),
			RuntimeP95Sec:  ps[0],
			RuntimeP99Sec:  ps[1],
			MPIFracMean:    mpiFracs.Mean(),
		}
		if flits > 0 {
			r.StallRatio = stalls / float64(flits)
		}
		if total := minPkts + nonMinPkts; total > 0 {
			r.NonMinimalFrac = float64(nonMinPkts) / float64(total)
		}
		r.MeanTransitUsec = transits.Mean() * 1e6
		resp.Modes[mi] = r
	}
	best := 0
	for i := 1; i < len(resp.Modes); i++ {
		if resp.Modes[i].RuntimeMeanSec < resp.Modes[best].RuntimeMeanSec {
			best = i
		}
	}
	if len(resp.Modes) > 0 {
		resp.Recommended = resp.Modes[best].Mode
	}
	return resp
}

// marshalResponse renders the canonical response bytes: indented JSON
// with a trailing newline. encoding/json emits struct fields in
// declaration order and floats in shortest-roundtrip form, so equal
// values always produce equal bytes.
func marshalResponse(resp *Response) []byte {
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		// Response contains only plain structs, strings, and finite
		// floats; Marshal cannot fail on it unless a field type changes
		// incompatibly, which tests catch immediately.
		panic("service: marshal response: " + err.Error())
	}
	return append(b, '\n')
}
