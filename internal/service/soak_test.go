package service

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestSoakConcurrentClients is the pool-integrity soak: N concurrent
// clients fire a mix of M distinct query shapes (different apps, modes,
// seeds, topologies) at one server, several rounds each, so checkouts
// and checkins from different topology keys interleave freely. Under
// -race (the CI race job runs this package) it gates that the pool
// never double-hands a machine: a machine shared by two ensembles would
// race on its RNG and counter state, and the double-handout panic in
// Checkin would abort the test. Byte-identity is asserted per shape
// across all clients and rounds — warm reuse under churn must not bleed
// state between configs.
func TestSoakConcurrentClients(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	cfg.PoolCap = 3 // below peak demand: forces discard/rebuild churn
	srv := New(cfg)
	h := srv.Handler()

	shapes := []string{
		`{"topology":"test","app":"MILC","nodes":8,"modes":["AD0"],"runs":2,"seed":1}`,
		`{"topology":"test","app":"MILC","nodes":8,"modes":["AD3"],"runs":2,"seed":1}`,
		`{"topology":"test","app":"HACC","nodes":8,"modes":["AD1","AD2"],"runs":1,"seed":7}`,
		`{"topology":"test","app":"Qbox","nodes":4,"modes":["AD3"],"runs":1,"seed":3}`,
		`{"topology":"theta-mini","app":"MILC","nodes":8,"modes":["AD0"],"runs":1,"seed":5}`,
	}
	clients, rounds := 6, 3
	if testing.Short() {
		// The CI race job runs -race -short: keep the soak in it at
		// reduced scale, dropping the expensive theta-mini shape.
		shapes = shapes[:4]
		clients, rounds = 4, 2
	}

	// reference[s] is the first response seen for shape s; every later
	// response for that shape must match it byte for byte.
	var mu sync.Mutex
	reference := make([][]byte, len(shapes))

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s := (c + r) % len(shapes)
				// Distinct tenants so the default tenant limit never 429s.
				body := shapes[s][:len(shapes[s])-1] + fmt.Sprintf(`,"tenant":"c%d"}`, c)
				status, resp := post(t, h, body)
				if status != http.StatusOK {
					t.Errorf("client %d round %d shape %d: status %d: %s", c, r, s, status, resp)
					return
				}
				mu.Lock()
				if reference[s] == nil {
					reference[s] = resp
				} else if !bytes.Equal(reference[s], resp) {
					t.Errorf("shape %d response changed under churn:\n--- first ---\n%s--- now ---\n%s",
						s, reference[s], resp)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	s := srv.PoolStats()
	if s.Live != 0 {
		t.Errorf("machines still checked out after soak: %+v", s)
	}
	if s.Hits == 0 {
		t.Errorf("soak never hit the warm pool: %+v", s)
	}
	if m := snapshotMetrics(srv); m.requests != uint64(clients*rounds) {
		t.Errorf("requests = %d, want %d", m.requests, clients*rounds)
	}
}
