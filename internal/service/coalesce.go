package service

import "sync"

// coalescer deduplicates concurrent identical queries: requests sharing a
// canonical Query.Key while one is in flight wait for that execution and
// receive its exact bytes instead of running the ensemble again. Because
// responses are deterministic functions of the key, coalescing is
// semantically invisible — a follower's bytes equal what its own
// execution would have produced (the determinism suite checks this on
// the HTTP path) — so it is purely a throughput optimization: N
// identical what-if queries cost one ensemble.
//
// Coalescing is generation-scoped: a request arriving after the previous
// execution finished starts a fresh one (which, warm pool, is still
// cheap). There is no response cache — operators change profiles and
// recompile simulators; a cache would need invalidation, while
// re-execution is deterministic by construction.
type coalescer struct {
	mu       sync.Mutex
	inflight map[string]*call
}

// call is one in-flight execution and its eventual result.
type call struct {
	done    chan struct{}
	waiters int // followers currently parked on done (under coalescer.mu)
	status  int
	body    []byte
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: make(map[string]*call)}
}

// do returns fn's result for key, executing fn at most once per
// concurrent generation. shared reports whether this caller rode an
// execution started by another request. Followers must treat body as
// immutable — it is aliased across every coalesced response.
func (c *coalescer) do(key string, fn func() (int, []byte)) (status int, body []byte, shared bool) {
	c.mu.Lock()
	if cl, ok := c.inflight[key]; ok {
		cl.waiters++
		c.mu.Unlock()
		<-cl.done
		return cl.status, cl.body, true
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	cl.status, cl.body = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(cl.done)
	return cl.status, cl.body, false
}

// waitersFor reports how many followers are parked on key's in-flight
// execution (tests synchronize on it; 0 when nothing is in flight).
func (c *coalescer) waitersFor(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.inflight[key]; ok {
		return cl.waiters
	}
	return 0
}
