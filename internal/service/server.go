package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Config assembles one Server. The zero value of any field means its
// default.
type Config struct {
	// Profile sets the simulation scale (iteration counts, message-size
	// scale, warmup). Default: experiments.Quick(). The profile's own
	// Runs/Workers fields are ignored — each query carries its run
	// count, and Workers below sets the fan-out.
	Profile experiments.Profile
	// Workers is the per-query ensemble fan-out: how many machines a
	// query checks out and how many runs simulate concurrently. Response
	// bytes are identical for every value (default 1).
	Workers int
	// PoolCap bounds idle machines retained per topology key
	// (default 2×Workers).
	PoolCap int
	// TenantLimit caps concurrent requests per tenant; 0 means no limit.
	TenantLimit int
	// QueryTimeout bounds one query's simulation time; at the deadline,
	// runs not yet dispatched are abandoned and the request fails with
	// 504 (default 120s; a run already simulating finishes first).
	QueryTimeout time.Duration
	// Limits bounds request contents (zero value: DefaultLimits).
	Limits Limits
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = experiments.Quick()
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.PoolCap <= 0 {
		c.PoolCap = 2 * c.Workers
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 120 * time.Second
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// Server answers routing what-if queries over HTTP. Create with New,
// mount via Handler.
type Server struct {
	cfg     Config
	pool    *MachinePool
	coal    *coalescer
	limiter *tenantLimiter
	metrics *metrics

	// testHookExecuting, when non-nil, runs at the start of every leader
	// execution (after admission and coalescer registration, before any
	// simulation). Tests use it to hold queries in flight at a known
	// point; serving never sets it.
	testHookExecuting func(key string)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pool:    NewMachinePool(cfg.PoolCap),
		coal:    newCoalescer(),
		limiter: newTenantLimiter(cfg.TenantLimit),
		metrics: &metrics{},
	}
}

// Handler returns the daemon's HTTP routes: POST /v1/query, GET
// /healthz, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// PoolStats exposes the machine pool counters (tests and diagnostics).
func (s *Server) PoolStats() PoolStats { return s.pool.Stats() }

// Prewarm builds Workers machines (kernel and fabric included) for each
// named topology before serving, so the first query against each is a
// pool hit running on a warm fabric. Names must be valid request
// topologies; the first unknown name fails the whole call. Intended for
// boot time (simd -prewarm), before the listener accepts traffic.
func (s *Server) Prewarm(names []string) error {
	for _, name := range names {
		if _, ok := topologies[name]; !ok {
			return fmt.Errorf("prewarm: unknown topology %q (one of %s)",
				name, strings.Join(TopologyNames(), ", "))
		}
		if err := s.pool.Prewarm(name, s.cfg.Workers); err != nil {
			return fmt.Errorf("prewarm %s: %w", name, err)
		}
	}
	return nil
}

// ResetPool discards all warm machines, forcing subsequent queries cold.
// The determinism tests use it to compare cold-pool against warm-pool
// bytes on the live HTTP path.
func (s *Server) ResetPool() { s.pool.Reset() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.metrics.render(s.pool.Stats()))
}

// handleQuery is the what-if endpoint. Pipeline: decode/validate (400),
// tenant admission (429), coalesce with identical in-flight queries,
// execute the ensemble on pooled machines, answer with the canonical
// response bytes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestStart()
	status := http.StatusOK
	defer func() { s.metrics.requestEnd(status) }()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		httpError(w, status, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBody))
	if err != nil {
		status = http.StatusBadRequest
		httpError(w, status, "read body: "+err.Error())
		return
	}
	q, err := DecodeRequest(body, s.cfg.Limits)
	if err != nil {
		status = http.StatusBadRequest
		httpError(w, status, err.Error())
		return
	}

	if !s.limiter.tryAcquire(q.Tenant) {
		status = http.StatusTooManyRequests
		httpError(w, status, fmt.Sprintf("tenant %q at its concurrency limit (%d)",
			q.Tenant, s.cfg.TenantLimit))
		return
	}
	defer s.limiter.release(q.Tenant)

	st, respBody, shared := s.coal.do(q.Key(), func() (int, []byte) {
		return s.execute(q)
	})
	if shared {
		s.metrics.recordCoalesced()
	}
	status = st
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
}

// execute runs one query's ensemble as the coalescing leader and renders
// the canonical response bytes. Called at most once per coalesced
// generation.
//
// The timeout context is rooted at Background rather than the leader's
// request context: coalesced followers share this execution, and one
// client's disconnect must not fail the others' answers.
func (s *Server) execute(q Query) (int, []byte) {
	if s.testHookExecuting != nil {
		s.testHookExecuting(q.Key())
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
	defer cancel()

	workers := s.cfg.Workers
	if n := q.Runs * len(q.Modes); workers > n {
		workers = n
	}
	machines, err := s.pool.CheckoutN(q.Topology, workers)
	if err != nil {
		return http.StatusInternalServerError, errorBody("build machine: " + err.Error())
	}
	defer s.pool.CheckinAll(machines)

	// Machine reuse counters are lifetime-monotonic; the delta across
	// this execution (machines are exclusively ours until checkin) is
	// how many of the query's runs rewound a warm fabric vs built cold.
	warmBefore, coldBefore := reuseTotals(machines)

	p := s.cfg.Profile
	p.Runs = q.Runs
	start := time.Now()
	samples, err := p.SamplesOn(ctx, machines, q.App, q.Nodes, q.Modes,
		q.backgroundSpec(), q.Seed)
	s.metrics.recordExecution(time.Since(start).Seconds())

	warmAfter, coldAfter := reuseTotals(machines)
	var events, packets, reduced, digestBytes uint64
	for _, smp := range samples {
		events += smp.Events
		packets += smp.Packets
		if smp.Reduced != nil {
			reduced++
			digestBytes += uint64(smp.Reduced.MemBytes())
		}
	}
	s.metrics.recordSim(events, packets, warmAfter-warmBefore, coldAfter-coldBefore)
	s.metrics.recordReduced(reduced, digestBytes)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout,
				errorBody(fmt.Sprintf("query exceeded timeout %s", s.cfg.QueryTimeout))
		}
		return http.StatusInternalServerError, errorBody("simulate: " + err.Error())
	}
	return http.StatusOK, marshalResponse(buildResponse(q, samples))
}

// reuseTotals sums the lifetime warm/cold fabric counters across a
// checkout's machines.
func reuseTotals(machines []*core.Machine) (warm, cold uint64) {
	for _, m := range machines {
		w, c := m.ReuseStats()
		warm += w
		cold += c
	}
	return warm, cold
}

// backgroundSpec maps the query's background request onto core's spec;
// nil means an otherwise idle machine.
func (q Query) backgroundSpec() *core.BackgroundSpec {
	if q.BGUtil <= 0 {
		return nil
	}
	bg := core.DefaultBackground()
	bg.TargetUtilization = q.BGUtil
	if q.BGModeSet {
		bg.Env.RoutingMode = q.BGMode
		bg.Env.A2ARoutingMode = q.BGMode
	}
	return bg
}

// httpError writes a JSON error body. Error responses are never
// coalesced targets for byte-identity guarantees, but they are still
// deterministic for a given failure.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(errorBody(msg))
}

// errorBody renders the error JSON.
func errorBody(msg string) []byte {
	return []byte(fmt.Sprintf("{\n  \"error\": %q\n}\n", msg))
}
