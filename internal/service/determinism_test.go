package service

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"
)

// The service determinism gate: one canonical request must produce
// byte-identical response bodies under every execution condition a
// production deployment mixes freely — pool cold or warm, ensemble
// fan-out 1 or 8, executed solo or coalesced with concurrent
// duplicates. This is the service-path extension of
// internal/experiments/determinism_test.go: those tests pin the sample
// slices; these pin the rendered bytes a client actually sees, through
// the full decode → admit → coalesce → pool → simulate → marshal
// pipeline. All of them run unconditionally in CI.

// TestDeterminismColdVsWarmPool replays the canonical query against one
// server three times: cold pool (machines built fresh), warm pool
// (machines rewound in place), and cold again after an explicit pool
// reset. Any state leaking through Machine.Reset shows up as a byte
// diff here.
func TestDeterminismColdVsWarmPool(t *testing.T) {
	srv := New(testConfig())
	h := srv.Handler()

	cold := mustPost(t, h, canonicalBody)
	if s := srv.PoolStats(); s.Misses == 0 || s.Hits != 0 {
		t.Fatalf("first query should be all misses: %+v", s)
	}

	warm := mustPost(t, h, canonicalBody)
	if s := srv.PoolStats(); s.Hits == 0 {
		t.Fatalf("second query should hit the warm pool: %+v", s)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cold-pool and warm-pool responses differ:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}

	srv.ResetPool()
	recold := mustPost(t, h, canonicalBody)
	if !bytes.Equal(cold, recold) {
		t.Errorf("response after pool reset differs from original cold response")
	}
}

// TestDeterminismWorkers1Vs8 answers the canonical query on two servers
// whose only difference is the per-query fan-out. The ensemble merges
// results in seed order, so the bytes must agree.
func TestDeterminismWorkers1Vs8(t *testing.T) {
	cfg1 := testConfig()
	cfg1.Workers = 1
	cfg8 := testConfig()
	cfg8.Workers = 8

	seq := mustPost(t, New(cfg1).Handler(), canonicalBody)
	par := mustPost(t, New(cfg8).Handler(), canonicalBody)
	if !bytes.Equal(seq, par) {
		t.Errorf("workers=1 and workers=8 responses differ:\n--- w1 ---\n%s--- w8 ---\n%s", seq, par)
	}
}

// TestDeterminismSoloVsCoalesced holds one execution of the canonical
// query at a test hook, piles concurrent duplicates (from distinct
// tenants) onto it, and checks that every coalesced response is
// byte-identical to a solo execution on a fresh server — plus that the
// ensemble really ran once for all of them.
func TestDeterminismSoloVsCoalesced(t *testing.T) {
	solo := mustPost(t, New(testConfig()).Handler(), canonicalBody)

	const followers = 4
	srv := New(testConfig())
	h := srv.Handler()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHookExecuting = func(string) {
		entered <- struct{}{}
		<-release
	}

	results := make([][]byte, followers+1)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct tenants: coalescing must be invisible to tenancy.
			body := canonicalBody[:len(canonicalBody)-1] + `,"tenant":"t` + string(rune('a'+i)) + `"}`
			status, resp := post(t, h, body)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, resp)
			}
			results[i] = resp
		}()
	}

	launch(0) // leader
	<-entered // leader is inside the execution, coalescer registered
	for i := 1; i <= followers; i++ {
		launch(i)
	}
	// Wait until every follower is parked on the leader's execution, then
	// let it proceed — so the coalescing is certain, not schedule-lucky.
	key := mustDecode(t, canonicalBody).Key()
	waitForWaiters(t, srv, key, followers)
	close(release)
	wg.Wait()

	for i, resp := range results {
		if !bytes.Equal(resp, solo) {
			t.Errorf("request %d differs from solo execution:\n--- coalesced ---\n%s--- solo ---\n%s", i, resp, solo)
		}
	}
	m := snapshotMetrics(srv)
	if m.executed != 1 {
		t.Errorf("executed = %d ensembles, want 1 (the whole point of coalescing)", m.executed)
	}
	if m.coalesced != followers {
		t.Errorf("coalesced = %d, want %d", m.coalesced, followers)
	}
}

// mustDecode normalizes a request body or fails the test.
func mustDecode(t *testing.T, body string) Query {
	t.Helper()
	q, err := DecodeRequest([]byte(body), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// waitForWaiters spins until n followers are parked on key's in-flight
// execution.
func waitForWaiters(t *testing.T, srv *Server, key string, n int) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if srv.coal.waitersFor(key) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d coalesced waiters on %q", n, key)
}

// snapshotMetrics copies the counters under the lock.
func snapshotMetrics(srv *Server) metrics {
	srv.metrics.mu.Lock()
	defer srv.metrics.mu.Unlock()
	return metrics{
		requests:  srv.metrics.requests,
		coalesced: srv.metrics.coalesced,
		executed:  srv.metrics.executed,
	}
}
