package apps

import (
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// runApp executes one app on n consecutive nodes of a test dragonfly and
// returns the world for inspection.
func runApp(t testing.TB, a App, n int, cfg Config) *mpi.World {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if n > topo.NumNodes() {
		t.Fatalf("n=%d > %d nodes", n, topo.NumNodes())
	}
	k := sim.NewKernel()
	fab := network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), cfg.Seed)
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	w := mpi.NewWorld(fab, nodes, mpi.DefaultEnv())
	w.Run(a.Main(cfg))
	k.Run()
	if !w.Done.Fired() {
		t.Fatalf("%s did not complete (deadlock?)", a.Name())
	}
	return w
}

func smallCfg() Config {
	return Config{Iterations: 2, Scale: 0.05, Seed: 7}
}

func TestFactorize4(t *testing.T) {
	cases := []struct {
		n    int
		want [4]int
	}{
		{256, [4]int{4, 4, 4, 4}},
		{128, [4]int{4, 4, 4, 2}},
		{512, [4]int{8, 4, 4, 4}},
		{1, [4]int{1, 1, 1, 1}},
		{6, [4]int{3, 2, 1, 1}},
		{30, [4]int{5, 3, 2, 1}},
	}
	for _, c := range cases {
		got := factorize4(c.n)
		if got != c.want {
			t.Errorf("factorize4(%d) = %v, want %v", c.n, got, c.want)
		}
		prod := got[0] * got[1] * got[2] * got[3]
		if prod != c.n {
			t.Errorf("factorize4(%d) product = %d", c.n, prod)
		}
	}
}

// Property: factorize4 always multiplies back to n, dims nonincreasing.
func TestFactorize4Property(t *testing.T) {
	f := func(raw uint16) bool {
		n := 1 + int(raw)%4096
		d := factorize4(n)
		if d[0]*d[1]*d[2]*d[3] != n {
			return false
		}
		for i := 1; i < 4; i++ {
			if d[i] > d[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTorusRoundTrip(t *testing.T) {
	dims := [4]int{4, 3, 2, 2}
	n := 48
	for rank := 0; rank < n; rank++ {
		if back := torusRank(torusCoords(rank, dims), dims); back != rank {
			t.Fatalf("rank %d round-trips to %d", rank, back)
		}
	}
}

func TestTorusNeighborsSymmetric(t *testing.T) {
	dims := factorize4(16)
	for rank := 0; rank < 16; rank++ {
		for _, nb := range torusNeighbors(rank, dims) {
			found := false
			for _, back := range torusNeighbors(nb, dims) {
				if back == rank {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor asymmetry: %d -> %d", rank, nb)
			}
		}
	}
}

func TestMilcReorderBijective(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		dims := factorize4(n)
		seen := make(map[int]bool, n)
		for rank := 0; rank < n; rank++ {
			l := milcReorder(rank, dims)
			if l < 0 || l >= n || seen[l] {
				t.Fatalf("n=%d: reorder not bijective at rank %d -> %d", n, rank, l)
			}
			seen[l] = true
			if inv := milcInverse(l, dims); inv != rank {
				t.Fatalf("n=%d: inverse(%d) = %d, want %d", n, l, inv, rank)
			}
		}
	}
}

func TestNekNeighborsSymmetric(t *testing.T) {
	for _, n := range []int{4, 7, 16, 33} {
		for rank := 0; rank < n; rank++ {
			for _, nb := range nekNeighbors(rank, n, 5) {
				if nb == rank {
					t.Fatalf("self neighbor at %d", rank)
				}
				sym := false
				for _, back := range nekNeighbors(nb, n, 5) {
					if back == rank {
						sym = true
					}
				}
				if !sym {
					t.Fatalf("n=%d: nek asymmetry %d -> %d", n, rank, nb)
				}
			}
		}
	}
}

func TestFFTPartnerInvolution(t *testing.T) {
	for _, n := range []int{8, 16, 64, 10, 37} {
		for round := 0; round < 6; round++ {
			for rank := 0; rank < n; rank++ {
				p := fftPartner(rank, n, round)
				if p < 0 || p >= n {
					t.Fatalf("partner out of range: n=%d rank=%d -> %d", n, rank, p)
				}
				if back := fftPartner(p, n, round); back != rank {
					t.Fatalf("n=%d round=%d: fftPartner not involutive: %d -> %d -> %d",
						n, round, rank, p, back)
				}
			}
		}
	}
}

func TestAllAppsComplete(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			for _, n := range []int{4, 8, 13, 16} {
				w := runApp(t, a, n, smallCfg())
				if w.Runtime() <= 0 {
					t.Fatalf("n=%d: runtime %v", n, w.Runtime())
				}
			}
		})
	}
}

func TestSingleRankApps(t *testing.T) {
	// Degenerate single-rank runs must not hang.
	for _, a := range All() {
		w := runApp(t, a, 1, smallCfg())
		if !w.Done.Fired() {
			t.Fatalf("%s hangs at n=1", a.Name())
		}
	}
}

func TestMILCDominantCalls(t *testing.T) {
	cfg := Config{Iterations: 4, Scale: 0.5, Seed: 3}
	w := runApp(t, MILC{}, 16, cfg)
	prof := w.AggregateProfile()
	top := prof.TopCalls(3)
	// The paper's Table I: MILC's top calls are Allreduce, Wait(all), Isend.
	want := map[string]bool{
		"MPI_Allreduce": true, "MPI_Wait": true, "MPI_Waitall": true,
		"MPI_Isend": true, "MPI_Irecv": true,
	}
	for _, call := range top {
		if !want[call] {
			t.Errorf("unexpected dominant call %q (top=%v)", call, top)
		}
	}
	if prof.ByCall["MPI_Allreduce"] == nil {
		t.Error("MILC without allreduce")
	}
	if prof.ByCall["MPI_Allreduce"].AvgBytes() != 8 {
		t.Errorf("MILC allreduce avg bytes = %g, want 8 (scale does not apply to reductions)",
			prof.ByCall["MPI_Allreduce"].AvgBytes())
	}
}

func TestQboxAlltoallvDominates(t *testing.T) {
	cfg := Config{Iterations: 3, Scale: 0.5, Seed: 3}
	w := runApp(t, Qbox{}, 12, cfg)
	prof := w.AggregateProfile()
	top := prof.TopCalls(1)
	if len(top) == 0 || top[0] != "MPI_Alltoallv" {
		t.Errorf("Qbox top call = %v, want MPI_Alltoallv", top)
	}
}

func TestRayleighNoP2PPattern(t *testing.T) {
	cfg := Config{Iterations: 2, Scale: 0.01, Seed: 3}
	w := runApp(t, Rayleigh{}, 8, cfg)
	prof := w.AggregateProfile()
	a2av := prof.ByCall["MPI_Alltoallv"]
	if a2av == nil {
		t.Fatal("Rayleigh without alltoallv")
	}
	if prof.ByCall["MPI_Barrier"] == nil {
		t.Error("Rayleigh without barrier")
	}
	// Alltoallv must carry the overwhelming share of payload bytes.
	var others uint64
	for name, s := range prof.ByCall {
		if name != "MPI_Alltoallv" {
			others += s.Bytes
		}
	}
	if a2av.Bytes < 4*others {
		t.Errorf("Rayleigh alltoallv bytes %d not dominant vs %d", a2av.Bytes, others)
	}
}

func TestHACCLargeMessages(t *testing.T) {
	cfg := Config{Iterations: 2, Scale: 1.0, Seed: 3}
	w := runApp(t, HACC{}, 8, cfg)
	prof := w.AggregateProfile()
	// The FFT messages (1.2MB) travel via Isend; even diluted by the
	// smaller particle exchanges the average must stay large.
	is := prof.ByCall["MPI_Isend"]
	if is == nil || is.AvgBytes() < 250*1024 {
		t.Errorf("HACC Isend avg bytes = %v", is)
	}
	if prof.ByCall["MPI_Wait"] == nil {
		t.Error("HACC without MPI_Wait")
	}
}

func TestNoisePatternsComplete(t *testing.T) {
	for _, p := range []NoisePattern{NoiseUniform, NoiseHotspot, NoiseStencil, NoiseShift} {
		noise := Noise{Pattern: p, MsgBytes: 8 * 1024, Gap: 50 * sim.Microsecond, Duration: 2 * sim.Millisecond}
		w := runApp(t, noise, 8, Config{Iterations: 1, Scale: 1, Seed: 11})
		if w.Runtime() < 2*sim.Millisecond {
			t.Errorf("%s: runtime %v below requested duration", noise.Name(), w.Runtime())
		}
	}
}

func TestNoiseSingleRankNoop(t *testing.T) {
	noise := Noise{Pattern: NoiseUniform, Duration: sim.Millisecond}
	w := runApp(t, noise, 1, Config{Iterations: 1, Scale: 1, Seed: 1})
	if !w.Done.Fired() {
		t.Fatal("single-rank noise hangs")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MILC", "MILCREORDER", "Nek5000", "HACC", "Qbox", "Rayleigh"} {
		a, err := ByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("VASP"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestConfigScaled(t *testing.T) {
	c := Config{Scale: 0.001}
	if c.scaled(100) != 1 {
		t.Error("scaled floor broken")
	}
	c.Scale = 2
	if c.scaled(100) != 200 {
		t.Error("scaling broken")
	}
}
