// Package apps contains proxy applications reproducing the communication
// behaviour of the five production codes the paper studies (Table I), plus
// synthetic background-noise generators used to emulate the production
// workload mix. Each proxy generates the pattern, message sizes, and
// dominant MPI calls the paper characterizes for its code; compute phases
// are virtual-time sleeps tuned so the isolated %MPI lands near the
// paper's measurement.
package apps

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Config parameterizes one application run.
type Config struct {
	// Iterations is the outer timestep count.
	Iterations int
	// Scale multiplies all message sizes (1.0 = the sizes in the paper's
	// Table I). Experiments use < 1 to keep packet counts tractable;
	// relative behaviour between routing modes is preserved.
	Scale float64
	// Seed drives any randomized pattern choices (deterministic per run).
	Seed int64
}

// DefaultConfig returns full-size (paper-scale) settings.
func DefaultConfig() Config {
	return Config{Iterations: 10, Scale: 1.0, Seed: 1}
}

// scaled applies the scale factor with a 1-byte floor.
func (c Config) scaled(bytes int) int {
	v := int(float64(bytes) * c.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// App is one runnable proxy application.
type App interface {
	// Name returns the paper's name for the code, e.g. "MILC".
	Name() string
	// Main returns the per-rank body for one run.
	Main(cfg Config) func(r *mpi.Rank)
}

// ByName returns the registered app with that name.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// All returns the five studied applications plus MILCREORDER, in the
// paper's Table I order.
func All() []App {
	return []App{
		MILC{}, MILC{Reorder: true}, Nek5000{}, HACC{}, Qbox{}, Rayleigh{},
	}
}

// Names lists all registered app names.
func Names() []string {
	apps := All()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name()
	}
	sort.Strings(out)
	return out
}

// rankRNG builds the deterministic per-rank random stream.
func rankRNG(cfg Config, rank int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(rank)))
}

// factorize4 splits n into four balanced torus dimensions whose product
// is n (used by MILC's 4D grid).
func factorize4(n int) [4]int {
	dims := [4]int{1, 1, 1, 1}
	// Peel prime factors largest-first onto the currently smallest dim.
	rem := n
	for f := 2; f*f <= rem; {
		if rem%f == 0 {
			smallest := 0
			for i := 1; i < 4; i++ {
				if dims[i] < dims[smallest] {
					smallest = i
				}
			}
			dims[smallest] *= f
			rem /= f
		} else {
			f++
		}
	}
	if rem > 1 {
		smallest := 0
		for i := 1; i < 4; i++ {
			if dims[i] < dims[smallest] {
				smallest = i
			}
		}
		dims[smallest] *= rem
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims[:])))
	return dims
}

// torusCoords converts a rank to 4D coordinates.
func torusCoords(rank int, dims [4]int) [4]int {
	var c [4]int
	for i := 3; i >= 0; i-- {
		c[i] = rank % dims[i]
		rank /= dims[i]
	}
	return c
}

// torusRank converts 4D coordinates back to a rank.
func torusRank(c [4]int, dims [4]int) int {
	r := 0
	for i := 0; i < 4; i++ {
		r = r*dims[i] + c[i]
	}
	return r
}

// torusNeighbors returns the 8 face neighbors (±1 in each dimension, with
// wraparound). Dimensions of extent 1 contribute the rank itself, which
// callers skip.
func torusNeighbors(rank int, dims [4]int) []int {
	c := torusCoords(rank, dims)
	out := make([]int, 0, 8)
	for d := 0; d < 4; d++ {
		for _, dir := range [2]int{+1, -1} {
			nc := c
			nc[d] = (c[d] + dir + dims[d]) % dims[d]
			nb := torusRank(nc, dims)
			if nb != rank {
				out = append(out, nb)
			}
		}
	}
	return out
}

// computeSleep is a convenience wrapper for a compute phase.
func computeSleep(r *mpi.Rank, d sim.Time) {
	if d > 0 {
		r.Compute(d)
	}
}
