package apps

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// NoisePattern selects a synthetic background-traffic shape.
type NoisePattern uint8

// Background traffic patterns used to emulate the production mix: the
// paper stresses that medium-size jobs share links with whatever else is
// running, so the generator mixes global, local, and incast-style flows.
const (
	// NoiseUniform sends to uniformly random ranks (global traffic).
	NoiseUniform NoisePattern = iota
	// NoiseHotspot aims most traffic at a few hot ranks (incast).
	NoiseHotspot
	// NoiseStencil exchanges with ring neighbors (local traffic).
	NoiseStencil
	// NoiseShift sends to a rotating partner (alltoall-like sweep
	// without collective synchronization).
	NoiseShift
)

func (p NoisePattern) String() string {
	switch p {
	case NoiseUniform:
		return "uniform"
	case NoiseHotspot:
		return "hotspot"
	case NoiseStencil:
		return "stencil"
	case NoiseShift:
		return "shift"
	}
	return fmt.Sprintf("NoisePattern(%d)", uint8(p))
}

// Noise is a deadline-driven background traffic generator. Senders push
// one-way messages (completion on delivery); no receives are posted, so
// any rank count works and no coordination is needed.
type Noise struct {
	Pattern  NoisePattern
	MsgBytes int
	// Gap is the think time between messages; smaller means more
	// intense background load.
	Gap sim.Time
	// Duration bounds the generator (virtual time from its start).
	Duration sim.Time
	// Cancel, when non-nil, stops the generator early: each rank exits
	// at its next iteration boundary once the signal fires.
	Cancel *sim.Signal
}

// Name identifies the generator in logs.
func (n Noise) Name() string { return "noise-" + n.Pattern.String() }

// Main returns the per-rank body.
func (n Noise) Main(cfg Config) func(r *mpi.Rank) {
	msg := n.MsgBytes
	if msg <= 0 {
		msg = 64 * 1024
	}
	gap := n.Gap
	if gap <= 0 {
		gap = 200 * sim.Microsecond
	}
	return func(r *mpi.Rank) {
		size := r.Size()
		if size <= 1 {
			return
		}
		rng := rankRNG(cfg, r.ID())
		deadline := r.Now() + n.Duration
		hot := int(cfg.Seed % int64(size))
		if hot < 0 {
			hot += size
		}
		for it := 0; r.Now() < deadline && (n.Cancel == nil || !n.Cancel.Fired()); it++ {
			var dst int
			switch n.Pattern {
			case NoiseHotspot:
				if rng.Intn(4) > 0 { // 75% of traffic into the hotspot
					dst = hot
				} else {
					dst = rng.Intn(size)
				}
			case NoiseStencil:
				if it%2 == 0 {
					dst = (r.ID() + 1) % size
				} else {
					dst = (r.ID() - 1 + size) % size
				}
			case NoiseShift:
				dst = (r.ID() + 1 + it%(size-1)) % size
			default: // NoiseUniform
				dst = rng.Intn(size)
			}
			if dst == r.ID() {
				dst = (dst + 1) % size
			}
			q := r.Isend(dst, 9000, msg)
			r.Wait(q)
			r.Compute(gap)
		}
	}
}
