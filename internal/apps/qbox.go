package apps

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Qbox reproduces the paper's characterization of the Qbox first-principles
// molecular dynamics code (Table I): medium 50KB point-to-point, medium
// 128KB collectives dominated by MPI_Alltoallv, 66% of runtime in MPI.
// Dominant calls: Alltoallv, Recv, Wait.
type Qbox struct{}

// Name returns "Qbox".
func (Qbox) Name() string { return "Qbox" }

// Main returns the per-rank body.
func (Qbox) Main(cfg Config) func(r *mpi.Rank) {
	// Node-level aggregates (64 ranks per node on Theta).
	const (
		collectiveBytes = 1024 * 1024 // total alltoallv payload per call
		p2pBytes        = 200 * 1024  // wavefunction column shifts
		computePerIt    = 150 * sim.Microsecond
	)
	return func(r *mpi.Rank) {
		n := r.Size()
		total := cfg.scaled(collectiveBytes)
		perPair := total / n
		if perPair < 1 {
			perPair = 1
		}
		counts := make([]int, n)
		for d := range counts {
			counts[d] = perPair
		}
		p2p := cfg.scaled(p2pBytes)
		right := (r.ID() + 1) % n
		left := (r.ID() - 1 + n) % n
		for it := 0; it < cfg.Iterations; it++ {
			// Plane-wave transposes: latency-heavy alltoallv (small
			// per-pair payloads, many rounds).
			r.Alltoallv(counts)
			r.Alltoallv(counts)
			computeSleep(r, computePerIt/2)
			// Column rotation: nonblocking send right, blocking recv
			// from the left (the Recv/Wait presence in Table I).
			if n > 1 {
				tag := 4000 + it
				sq := r.Isend(right, tag, p2p)
				r.Recv(left, tag, p2p)
				r.Wait(sq)
			}
			computeSleep(r, computePerIt/2)
		}
	}
}
