package apps

import (
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Nek5000 reproduces the paper's characterization of the Nek5000 spectral
// element CFD code (Table I): medium KB-range point-to-point over an
// irregular neighbor graph (gather-scatter of shared element faces), light
// 16-byte collectives, ~48% MPI. Dominant calls: Allreduce, Waitall, Recv.
type Nek5000 struct{}

// Name returns "Nek5000".
func (Nek5000) Name() string { return "Nek5000" }

// nekDegree is the number of gather-scatter neighbors per rank.
const nekDegree = 10

// Main returns the per-rank body.
func (Nek5000) Main(cfg Config) func(r *mpi.Rank) {
	// Node-level aggregates (64 ranks per node on Theta).
	const (
		faceBytes    = 256 * 1024 // medium gather-scatter faces
		crsBytes     = 32 * 1024  // coarse-grid solve gather
		reduceBytes  = 16
		computePerIt = 280 * sim.Microsecond
	)
	return func(r *mpi.Rank) {
		n := r.Size()
		peers := nekNeighbors(r.ID(), n, cfg.Seed)
		face := cfg.scaled(faceBytes)
		crs := cfg.scaled(crsBytes)
		for it := 0; it < cfg.Iterations; it++ {
			tag := 2000 + it
			// Gather-scatter: exchange faces with every graph neighbor.
			reqs := make([]*mpi.Request, 0, 2*len(peers))
			for _, p := range peers {
				reqs = append(reqs, r.Irecv(p, tag, face))
			}
			for _, p := range peers {
				reqs = append(reqs, r.Isend(p, tag, face))
			}
			computeSleep(r, computePerIt/2)
			r.Waitall(reqs...)
			// Coarse-grid solve: fan-in to rank 0 with blocking recvs
			// (the MPI_Recv presence in Table I), then a broadcast back.
			if r.ID() == 0 {
				for src := 1; src < n; src++ {
					r.Recv(src, tag+10000, crs)
				}
			} else {
				r.Send(0, tag+10000, crs)
			}
			r.Bcast(0, crs)
			// Pressure iteration residual checks: small allreduces.
			r.Allreduce(reduceBytes)
			r.Allreduce(reduceBytes)
			computeSleep(r, computePerIt/2)
		}
	}
}

// nekNeighbors builds a symmetric irregular graph modeling unstructured
// element connectivity: a circulant graph over hash-derived strides
// (every rank links to rank±s for each stride s), which is symmetric by
// construction so the pairwise exchange cannot deadlock.
func nekNeighbors(rank, n int, seed int64) []int {
	if n <= 1 {
		return nil
	}
	set := map[int]struct{}{}
	add := func(p int) {
		if p != rank {
			set[p] = struct{}{}
		}
	}
	add((rank + 1) % n) // ring locality
	add((rank - 1 + n) % n)
	for k := 0; k < nekDegree/2-1; k++ {
		h := (seed + int64(k+1)*2654435761) % int64(n)
		if h < 0 {
			h += int64(n)
		}
		stride := 2 + int(h)%(n-1)
		add((rank + stride) % n)
		add((rank - stride + n) % n)
	}
	out := make([]int, 0, len(set))
	//simlint:allow detrand collection order erased by sort.Ints below
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
