package apps

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Rayleigh reproduces the paper's characterization of the Rayleigh
// pseudo-spectral convection code (Table I): no standing point-to-point
// pattern, heavy ~23MB MPI_Alltoallv transposes, ~28% MPI. Dominant
// calls: Alltoallv, Send, Barrier.
type Rayleigh struct{}

// Name returns "Rayleigh".
func (Rayleigh) Name() string { return "Rayleigh" }

// Main returns the per-rank body.
func (Rayleigh) Main(cfg Config) func(r *mpi.Rank) {
	const (
		transposeBytes = 23 * 1024 * 1024 // total alltoallv payload per call
		remainderBytes = 64 * 1024        // manual transpose remainder rows
		computePerIt   = 18 * sim.Millisecond
	)
	return func(r *mpi.Rank) {
		n := r.Size()
		total := cfg.scaled(transposeBytes)
		perPair := total / n
		if perPair < 1 {
			perPair = 1
		}
		counts := make([]int, n)
		for d := range counts {
			counts[d] = perPair
		}
		remainder := cfg.scaled(remainderBytes)
		for it := 0; it < cfg.Iterations; it++ {
			// Spherical-harmonic transpose: the bandwidth-heavy global
			// alltoallv.
			r.Alltoallv(counts)
			computeSleep(r, computePerIt/2)
			// Remainder-row redistribution: a short phase of blocking
			// sends to the transpose successor (Table I's MPI_Send).
			if n > 1 {
				tag := 5000 + it
				dst := (r.ID() + 1) % n
				src := (r.ID() - 1 + n) % n
				rq := r.Irecv(src, tag, remainder)
				r.Send(dst, tag, remainder)
				r.Wait(rq)
			}
			// Step synchronization.
			r.Barrier()
			computeSleep(r, computePerIt/2)
		}
	}
}
