package apps

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// MILC reproduces the paper's characterization of the MILC lattice-QCD
// code (Table I): a 4D stencil with heavy KB-range point-to-point traffic
// overlapped with compute, ending each step with latency-bound 8-byte
// MPI_Allreduce operations. Dominant calls: Allreduce, Wait, Isend; ~52%
// of runtime in MPI at 256 nodes.
//
// With Reorder set it models MILCREORDER, the rank-reordered variant: the
// logical 4D grid is laid out in 2x2x2x2 blocks so torus neighbors land on
// nearby nodes, shifting time from Allreduce into Wait (Table I's
// MILCREORDER row) and slightly lowering the runtime (Table II).
type MILC struct {
	Reorder bool
}

// Name returns "MILC" or "MILCREORDER".
func (m MILC) Name() string {
	if m.Reorder {
		return "MILCREORDER"
	}
	return "MILC"
}

// milcBlock is the per-dimension block size used by the reordered layout.
const milcBlock = 2

// Main returns the per-rank body.
func (m MILC) Main(cfg Config) func(r *mpi.Rank) {
	// Sizes are node-level aggregates: one simulated rank stands for a
	// full KNL node (64 MPI ranks on Theta), so the per-neighbor halo is
	// 64 ranks x KB-range messages.
	const (
		haloBytes     = 512 * 1024 // node-aggregate 4D halo per neighbor
		reduceBytes   = 8          // 8B allreduce (latency-bound)
		reducesPerIt  = 3
		computePerIt  = 300 * sim.Microsecond
		computeSlices = 2 // compute is split to overlap with the exchange
	)
	return func(r *mpi.Rank) {
		n := r.Size()
		dims := factorize4(n)
		logical := r.ID()
		if m.Reorder {
			logical = milcReorder(r.ID(), dims)
		}
		neighbors := torusNeighbors(logical, dims)
		// Map logical neighbors back to actual ranks.
		peers := make([]int, len(neighbors))
		for i, nb := range neighbors {
			if m.Reorder {
				peers[i] = milcInverse(nb, dims)
			} else {
				peers[i] = nb
			}
		}
		halo := cfg.scaled(haloBytes)
		for it := 0; it < cfg.Iterations; it++ {
			tag := 1000 + it
			recvs := make([]*mpi.Request, len(peers))
			for i, p := range peers {
				recvs[i] = r.Irecv(p, tag, halo)
			}
			sends := make([]*mpi.Request, len(peers))
			for i, p := range peers {
				sends[i] = r.Isend(p, tag, halo)
			}
			// Overlap: compute while the exchange is in flight.
			computeSleep(r, computePerIt/computeSlices)
			r.Waitall(append(append([]*mpi.Request{}, recvs...), sends...)...)
			computeSleep(r, computePerIt-computePerIt/computeSlices)
			// Latency-bound reductions close the step.
			for k := 0; k < reducesPerIt; k++ {
				r.Allreduce(reduceBytes)
			}
		}
	}
}

// blockable reports whether the blocked layout is a bijection: every
// dimension must be a multiple of the block size. Otherwise both mapping
// directions fall back to identity (plain MILC layout).
func blockable(dims [4]int) bool {
	for _, d := range dims {
		if d%milcBlock != 0 {
			return false
		}
	}
	return true
}

// milcBlockVol is the ranks per block (milcBlock^4).
const milcBlockVol = milcBlock * milcBlock * milcBlock * milcBlock

// milcReorder maps a rank to its logical grid position under the blocked
// layout: ranks are assigned to the grid in blocks of milcBlock^4 so that
// consecutive ranks (which sit on the same or adjacent nodes) are torus
// neighbors.
func milcReorder(rank int, dims [4]int) int {
	if !blockable(dims) {
		return rank
	}
	var bdims [4]int
	for i := range dims {
		bdims[i] = dims[i] / milcBlock
	}
	block := rank / milcBlockVol
	within := rank % milcBlockVol
	var c [4]int
	for i := 3; i >= 0; i-- {
		bc := block % bdims[i]
		block /= bdims[i]
		wc := within % milcBlock
		within /= milcBlock
		c[i] = bc*milcBlock + wc
	}
	return torusRank(c, dims)
}

// milcInverse inverts milcReorder.
func milcInverse(logical int, dims [4]int) int {
	if !blockable(dims) {
		return logical
	}
	c := torusCoords(logical, dims)
	var bdims [4]int
	for i := range dims {
		bdims[i] = dims[i] / milcBlock
	}
	block, within := 0, 0
	for i := 0; i < 4; i++ {
		block = block*bdims[i] + c[i]/milcBlock
		within = within*milcBlock + c[i]%milcBlock
	}
	return block*milcBlockVol + within
}
