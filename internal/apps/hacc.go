package apps

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// HACC reproduces the paper's characterization of the HACC cosmology code
// (Table I and Section IV-C): the dominant 3D-FFT transposes move large
// (~1.2MB) messages between essentially random rank pairs, stressing
// global bisection bandwidth, plus a light nearest-neighbour particle
// exchange and a light 1KB allreduce. ~22% MPI; dominant calls Wait,
// Waitall, Allreduce.
//
// This is the one application the paper finds prefers AD0: its
// bisection-bound transposes want path diversity, and strong minimal bias
// concentrates the load on a few rank-3 links (Fig. 12).
type HACC struct{}

// Name returns "HACC".
func (HACC) Name() string { return "HACC" }

// Main returns the per-rank body.
func (HACC) Main(cfg Config) func(r *mpi.Rank) {
	// Node-level aggregates (64 ranks per node on Theta).
	const (
		fftBytes      = 2400 * 1024 // pencil exchange (1.2MB per rank pair)
		fftRounds     = 2           // transposes per step
		particleBytes = 128 * 1024
		reduceBytes   = 1024
		computePerIt  = 4 * sim.Millisecond
	)
	return func(r *mpi.Rank) {
		n := r.Size()
		fft := cfg.scaled(fftBytes)
		part := cfg.scaled(particleBytes)
		for it := 0; it < cfg.Iterations; it++ {
			// 3D FFT transposes: bit-reversal-flavored pairings give
			// "random" partners far away in rank (and thus node) space,
			// the global-bisection stress the paper describes.
			for round := 0; round < fftRounds; round++ {
				partner := fftPartner(r.ID(), n, it*fftRounds+round)
				if partner != r.ID() {
					tag := 3000 + it*16 + round
					rq := r.Irecv(partner, tag, fft)
					sq := r.Isend(partner, tag, fft)
					r.Wait(sq)
					r.Wait(rq)
				}
			}
			computeSleep(r, computePerIt/2)
			// Particle overload exchange with 6 ring-ish neighbors.
			tag := 3800 + it
			reqs := make([]*mpi.Request, 0, 12)
			for _, d := range [3]int{1, 2, 3} {
				up, down := (r.ID()+d)%n, (r.ID()-d+n)%n
				if up == r.ID() {
					continue
				}
				reqs = append(reqs,
					r.Irecv(up, tag, part), r.Irecv(down, tag, part),
					r.Isend(up, tag, part), r.Isend(down, tag, part))
			}
			r.Waitall(reqs...)
			// Global diagnostics.
			r.Allreduce(reduceBytes)
			computeSleep(r, computePerIt/2)
		}
	}
}

// fftPartner pairs ranks by XOR with a round-dependent mask (an
// involution, so both sides agree), emulating FFT transpose exchange
// patterns. Falls back to a reversal pairing for non-power-of-two sizes.
func fftPartner(rank, n, round int) int {
	if n <= 1 {
		return rank
	}
	if n&(n-1) == 0 {
		// Mask cycles over the high bits: partners land far away.
		bits := 0
		for 1<<bits < n {
			bits++
		}
		mask := (n - 1) ^ ((1 << (round % bits)) - 1)
		if mask == 0 {
			mask = n - 1
		}
		return rank ^ mask
	}
	// Reversal pairing around a rotating pivot: i <-> (pivot-i) mod n is
	// an involution for any pivot.
	pivot := (round*2654435761 + 12345) % n
	return ((pivot-rank)%n + n) % n
}
