package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testFabric(t testing.TB, groups int, seed int64) *Fabric {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(groups))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	return New(k, topo, DefaultParams(), routing.DefaultConfig(), seed)
}

func TestSendDelivers(t *testing.T) {
	f := testFabric(t, 3, 1)
	m := f.Send(0, 10, 4096, routing.AD0)
	f.Kernel().Run()
	if !m.Done.Fired() {
		t.Fatal("message never delivered")
	}
	if m.DeliveredAt <= 0 {
		t.Fatalf("DeliveredAt = %v", m.DeliveredAt)
	}
	if f.PacketsDelivered < 1 {
		t.Fatal("no packets delivered")
	}
}

func TestSameNodeLoopback(t *testing.T) {
	f := testFabric(t, 3, 1)
	m := f.Send(5, 5, 1<<20, routing.AD3)
	f.Kernel().Run()
	if !m.Done.Fired() {
		t.Fatal("loopback message never delivered")
	}
	if f.PacketsSent != 0 {
		t.Fatalf("loopback injected %d packets into the network", f.PacketsSent)
	}
	if m.DeliveredAt != f.Params().LocalLatency {
		t.Fatalf("loopback latency = %v, want %v", m.DeliveredAt, f.Params().LocalLatency)
	}
}

func TestFragmentation(t *testing.T) {
	f := testFabric(t, 3, 2)
	bytes := 3*f.Params().PacketBytes + 100
	m := f.Send(0, 8, bytes, routing.AD3)
	f.Kernel().Run()
	if !m.Done.Fired() {
		t.Fatal("message never delivered")
	}
	minPkts, nonMinPkts := m.RouteCounts()
	if minPkts+nonMinPkts != 4 {
		t.Fatalf("routed %d+%d packets, want 4", minPkts, nonMinPkts)
	}
}

func TestZeroByteMessage(t *testing.T) {
	f := testFabric(t, 3, 3)
	m := f.Send(0, 9, 0, routing.AD0)
	f.Kernel().Run()
	if !m.Done.Fired() {
		t.Fatal("zero-byte message never delivered")
	}
}

func TestDeliveryLatencyOrdering(t *testing.T) {
	// A cross-group message should take longer than a same-router one.
	f := testFabric(t, 3, 4)
	topo := f.Topology()
	nearDst := topology.NodeID(1) // same router as node 0
	if topo.RouterOfNode(0) != topo.RouterOfNode(nearDst) {
		t.Fatal("test setup: nodes 0,1 not on same router")
	}
	farDst := topology.NodeID(topo.Cfg.RoutersPerGroup() * topo.Cfg.NodesPerRouter) // first node of group 1
	if topo.GroupOfNode(farDst) == topo.GroupOfNode(0) {
		t.Fatal("test setup: far node in same group")
	}
	near := f.Send(0, nearDst, 4096, routing.AD3)
	far := f.Send(0, farDst, 4096, routing.AD3)
	f.Kernel().Run()
	if !near.Done.Fired() || !far.Done.Fired() {
		t.Fatal("messages not delivered")
	}
	if far.DeliveredAt <= near.DeliveredAt {
		t.Fatalf("far (%v) should arrive after near (%v)", far.DeliveredAt, near.DeliveredAt)
	}
}

func TestFlitConservation(t *testing.T) {
	// Flits counted at injection proc tiles must equal flits of all data
	// packets; every network tile traversal adds the same flit count.
	f := testFabric(t, 3, 5)
	f.params.ResponseEvery = 1 << 30 // suppress responses for exact accounting
	const nMsgs = 20
	rng := rand.New(rand.NewSource(99))
	wantFlits := uint64(0)
	for i := 0; i < nMsgs; i++ {
		src := topology.NodeID(rng.Intn(f.Topology().NumNodes()))
		dst := topology.NodeID(rng.Intn(f.Topology().NumNodes()))
		for src == dst {
			dst = topology.NodeID(rng.Intn(f.Topology().NumNodes()))
		}
		bytes := 1 + rng.Intn(3*f.Params().PacketBytes)
		f.Send(src, dst, bytes, routing.AD0)
		nPkts := (bytes + f.Params().PacketBytes - 1) / f.Params().PacketBytes
		rem := bytes
		for p := 0; p < nPkts; p++ {
			sz := f.Params().PacketBytes
			if sz > rem {
				sz = rem
			}
			rem -= sz
			wantFlits += uint64(f.flitsOf(sz))
		}
	}
	f.Kernel().Run()
	agg := f.Counters().Aggregate(nil)
	if got := agg.Flits[topology.TileProcReq]; got != 2*wantFlits {
		// Injection + ejection both count on proc req tiles.
		t.Fatalf("proc req flits = %d, want %d (inject+eject)", got, 2*wantFlits)
	}
	if f.QueuedFlits() != 0 {
		t.Fatalf("fabric not drained: %d flits queued", f.QueuedFlits())
	}
}

func TestResponsesTracked(t *testing.T) {
	f := testFabric(t, 3, 6)
	src, dst := topology.NodeID(0), topology.NodeID(12)
	f.Send(src, dst, 4096, routing.AD0)
	f.Kernel().Run()
	c := f.Counters()
	if c.ORBCount[src] == 0 {
		t.Fatal("no ORB pairs tracked at source")
	}
	if c.MeanORBLatency(src) <= 0 {
		t.Fatal("ORB latency not positive")
	}
	// Response flits appear on proc rsp tiles.
	agg := c.Aggregate(nil)
	if agg.Flits[topology.TileProcRsp] == 0 {
		t.Fatal("no response traffic on proc rsp tiles")
	}
}

func TestBackpressureStalls(t *testing.T) {
	// Saturate one destination node from many sources: ejection blocking
	// must register stalls, and they appear on processor tiles.
	f := testFabric(t, 3, 7)
	topo := f.Topology()
	dst := topology.NodeID(0)
	var msgs []*Message
	for n := 1; n < topo.NumNodes(); n++ {
		msgs = append(msgs, f.Send(topology.NodeID(n), dst, 64*1024, routing.AD0))
	}
	f.Kernel().Run()
	for i, m := range msgs {
		if !m.Done.Fired() {
			t.Fatalf("incast message %d not delivered", i)
		}
	}
	agg := f.Counters().Aggregate(nil)
	total := agg.TotalStalls()
	if total <= 0 {
		t.Fatal("incast produced no stalls")
	}
	if agg.Stalls[topology.TileProcReq] <= 0 {
		t.Fatal("endpoint congestion produced no processor-tile stalls")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, float64) {
		f := testFabric(t, 3, 42)
		topo := f.Topology()
		rng := rand.New(rand.NewSource(7))
		var msgs []*Message
		for i := 0; i < 40; i++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			msgs = append(msgs, f.Send(src, dst, 1+rng.Intn(32*1024), routing.Mode(i%4)))
		}
		end := f.Kernel().Run()
		agg := f.Counters().Aggregate(nil)
		return end, agg.TotalFlits(), agg.TotalStalls()
	}
	e1, f1, s1 := run()
	e2, f2, s2 := run()
	if e1 != e2 || f1 != f2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%d,%g) vs (%v,%d,%g)", e1, f1, s1, e2, f2, s2)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// A single large same-group transfer is bounded below by the NIC
	// injection rate (adaptive routing may stripe it across several
	// router paths, so the single-link rate is NOT a bound) and should
	// stay within 3x of that ideal.
	f := testFabric(t, 3, 8)
	topo := f.Topology()
	const bytes = 8 << 20
	dst := topology.NodeID(2) // same chassis, different router
	m := f.Send(0, dst, bytes, routing.AD3)
	f.Kernel().Run()
	ideal := sim.Time(float64(bytes) / topo.Cfg.InjectionBandwidth * 1e12)
	if m.DeliveredAt < ideal {
		t.Fatalf("delivered faster than injection rate: %v < %v", m.DeliveredAt, ideal)
	}
	if m.DeliveredAt > 3*ideal {
		t.Fatalf("throughput too low: %v vs ideal %v", m.DeliveredAt, ideal)
	}
}

func TestNonMinimalUnderContention(t *testing.T) {
	// Many flows crossing group 0 -> group 1 under AD0: with only a few
	// global links, adaptive routing should send some packets Valiant.
	f := testFabric(t, 4, 9)
	topo := f.Topology()
	g1base := topo.Cfg.RoutersPerGroup() * topo.Cfg.NodesPerRouter
	for n := 0; n < 8; n++ {
		f.Send(topology.NodeID(n), topology.NodeID(g1base+n), 256*1024, routing.AD0)
	}
	f.Kernel().Run()
	if f.NonMinimalTaken == 0 {
		t.Fatal("AD0 under heavy inter-group contention never took a non-minimal route")
	}
}

func TestAD3TakesFewerNonMinimal(t *testing.T) {
	count := func(mode routing.Mode) uint64 {
		f := testFabric(t, 4, 10)
		topo := f.Topology()
		g1base := topo.Cfg.RoutersPerGroup() * topo.Cfg.NodesPerRouter
		for n := 0; n < 8; n++ {
			f.Send(topology.NodeID(n), topology.NodeID(g1base+n), 256*1024, mode)
		}
		f.Kernel().Run()
		return f.NonMinimalTaken
	}
	ad0, ad3 := count(routing.AD0), count(routing.AD3)
	if ad3 >= ad0 {
		t.Fatalf("AD3 took %d non-minimal routes, AD0 %d — bias not effective", ad3, ad0)
	}
}

func TestCounterSnapshotDelta(t *testing.T) {
	f := testFabric(t, 3, 11)
	f.Send(0, 20, 16*1024, routing.AD0)
	f.Kernel().Run()
	snap := f.Counters().Snapshot()
	f.Send(0, 20, 16*1024, routing.AD0)
	f.Kernel().Run()
	delta := f.Counters().Sub(snap)
	if delta.Aggregate(nil).TotalFlits() == 0 {
		t.Fatal("delta shows no new flits")
	}
	// Delta should be about half the final total.
	tot := f.Counters().Aggregate(nil).TotalFlits()
	d := delta.Aggregate(nil).TotalFlits()
	if d >= tot {
		t.Fatalf("delta %d >= total %d", d, tot)
	}
}

func TestRouterRatiosAndTileRatios(t *testing.T) {
	f := testFabric(t, 3, 12)
	for n := 1; n < 16; n++ {
		f.Send(topology.NodeID(n), 0, 32*1024, routing.AD0)
	}
	f.Kernel().Run()
	ratios := f.Counters().RouterRatios(nil)
	if len(ratios) == 0 {
		t.Fatal("no router ratios")
	}
	for _, r := range ratios {
		if r < 0 {
			t.Fatalf("negative ratio %g", r)
		}
	}
	if tr := f.Counters().TileRatios(topology.TileRank1); len(tr) == 0 {
		t.Fatal("no rank-1 tile ratios despite intra-group traffic")
	}
}

// Property: random message batches always fully deliver, drain the fabric,
// and conserve packet counts.
func TestDeliveryProperty(t *testing.T) {
	f := func(seed int64, nMsgRaw uint8) bool {
		fab := testFabricQuick(seed)
		topo := fab.Topology()
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		n := 1 + int(nMsgRaw)%30
		var msgs []*Message
		for i := 0; i < n; i++ {
			src := topology.NodeID(rng.Intn(topo.NumNodes()))
			dst := topology.NodeID(rng.Intn(topo.NumNodes()))
			msgs = append(msgs, fab.Send(src, dst, 1+rng.Intn(64*1024), routing.Mode(rng.Intn(4))))
		}
		fab.Kernel().Run()
		for _, m := range msgs {
			if !m.Done.Fired() {
				return false
			}
		}
		return fab.QueuedFlits() == 0 && fab.PacketsDelivered >= fab.PacketsSent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func testFabricQuick(seed int64) *Fabric {
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		panic(err)
	}
	return New(sim.NewKernel(), topo, DefaultParams(), routing.DefaultConfig(), seed)
}
