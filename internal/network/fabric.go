package network

import (
	"math/bits"
	"math/rand"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Params tunes the packet-level fabric model.
type Params struct {
	// PacketBytes is the fragmentation unit (MTU). Messages are split
	// into packets of at most this size, each routed independently.
	PacketBytes int
	// FlitBytes converts bytes to flits for the tile counters.
	FlitBytes int
	// BufferFlits is the per-virtual-channel input buffer capacity of
	// every link and of the NIC ejection queue. Small buffers mean
	// backpressure forms quickly.
	BufferFlits int
	// ResponseBytes is the size of the response (ack) packet generated
	// for tracked request packets.
	ResponseBytes int
	// ResponseEvery generates a response for 1 in N data packets
	// (1 = every packet, as on real Aries; larger values reduce
	// simulation cost for bulk experiments).
	ResponseEvery int
	// LocalLatency is the delivery latency for same-node messages,
	// which bypass the network.
	LocalLatency sim.Time
	// LoadStaleness is how out-of-date the congestion estimates feeding
	// the adaptive routing are. Aries estimates port load from credit
	// round-trips, so the router acts on a picture that lags reality by
	// a few microseconds. Zero means oracle-fresh estimates (not
	// representative of hardware).
	LoadStaleness sim.Time
	// HopContention scales an extra per-hop delay proportional to the
	// arrival link's queued flits (flit periods per queued flit). It
	// stands in for everything a packet-granularity model leaves out of
	// a loaded router traversal — flit-level crossbar conflicts, the
	// row/column bus arbitration of the Aries tiled crossbar, and
	// head-of-line blocking inside a VC — all of which grow with load.
	// An idle router adds nothing, so low-load behaviour is unchanged;
	// under congestion it makes every EXTRA hop genuinely expensive,
	// which is the regime where the paper finds minimal bias winning.
	HopContention float64
	// LoadJitter is the relative error of the load estimate: each query
	// sees the true load scaled by a uniform factor in
	// [1-LoadJitter, 1+LoadJitter]. It models the coarse quantization
	// and delayed credits of the hardware congestion metric. This is
	// the mechanism behind the paper's central finding: with equal bias
	// (AD0) the router acts on these noisy comparisons and regularly
	// pays Valiant's extra hops for no real gain, while strong minimal
	// bias (AD3) only reacts to load differences far above the noise.
	// An idle link always reads zero, so all biases agree on an idle
	// network (Section II-D: non-minimal is harmless only at low load).
	LoadJitter float64
	// NoRecycle disables the packet free list: every packet is a fresh
	// allocation, as before pooling existed. Testing knob only — the
	// pool property tests run pooled and non-pooled fabrics side by side
	// and require identical observable behaviour.
	NoRecycle bool
	// FuseLinks collapses the two per-link-hop events (serialization
	// completion + propagation arrival) into one fused hop-done event
	// scheduled at serialization start, with the hop's contention delay
	// precomputed from the downstream backlog at that moment instead of
	// at serialization end. This is a physics coarsening, not a
	// scheduling trick: with HopContention == 0 the fused model is
	// observably equivalent to the split reference (the equivalence and
	// fuzz tests in fused_test.go pin it), while with contention enabled
	// the delay estimate is one serialization time staler. Fusion is the
	// default (DefaultParams sets it; goldens are recorded under it);
	// the split path remains available as the reference model for
	// equivalence tests and debugging, the same pattern NoRecycle uses —
	// experiments.Profile.SplitLinks reaches it from the campaign layer.
	// Sender-side bookkeeping (flit counters, buffer release, waiter
	// wake) settles lazily — see (*Fabric).settle.
	FuseLinks bool
}

// DefaultParams returns the parameters used across the reproduction.
func DefaultParams() Params {
	return Params{
		PacketBytes:   4096,
		FlitBytes:     16,
		BufferFlits:   768, // 3 packets per VC at the default MTU
		ResponseBytes: 64,
		ResponseEvery: 1,
		LocalLatency:  600 * sim.Nanosecond,
		LoadStaleness: 3 * sim.Microsecond,
		LoadJitter:    0.75,
		HopContention: 1.0,
		FuseLinks:     true, // ~25% fewer events/packet; split path = reference
	}
}

type serverKind uint8

const (
	kindLink serverKind = iota
	kindInject
	kindEject
)

// server is one transmission unit: a NIC injection queue, a NIC ejection
// queue, or one directed router link. It holds a queue per virtual
// channel and serializes one packet at a time, picking among VC heads
// round-robin. A VC head whose downstream buffer is full does not block
// other VCs — and because a packet's VC index is its hop count, the
// buffer-wait graph over (link, VC) pairs strictly increases and can
// never cycle: the fabric is deadlock-free by construction.
type server struct {
	fab *Fabric //simlint:resetsafe immutable wiring back to the owning fabric

	link *topology.Link  //simlint:resetsafe immutable identity: nil for NIC servers
	node topology.NodeID //simlint:resetsafe immutable identity: NIC servers' node
	kind serverKind      //simlint:resetsafe immutable identity
	idx  int32           //simlint:resetsafe position in Fabric.servers; typed-event payload

	bw       float64  //simlint:resetsafe immutable config: bytes/second
	lat      sim.Time //simlint:resetsafe immutable config: propagation after serialization
	flitTime sim.Time //simlint:resetsafe immutable config: one flit period at bw

	queues   []pktQueue // per VC
	occ      []int      // buffered flits per VC
	occTotal int        // sum of occ (cached for O(1) load estimates)
	nonEmpty uint32     // bitmask of VCs with queued packets
	capFlits int        //simlint:resetsafe immutable config: per-VC capacity; 0 = unbounded (injection)

	busy    bool
	lastVC  int // round-robin arbitration pointer
	blocked bool
	stallAt sim.Time

	// Fused-hop state (Params.FuseLinks). While a fused transmission is
	// in flight the sender-side completion (flit count, dequeue, buffer
	// release, waiter wake) is deferred: pendingTx marks it owed, freeAt
	// is the serialization-end instant it is owed AT, and settleEvt
	// records that an evSettle is already scheduled for exactly freeAt
	// (needed only when backlog or waiters appear mid-flight). Every
	// reader of sender-side state settles first, so the deferral is
	// unobservable — see (*Fabric).settle.
	pendingTx bool
	freeAt    sim.Time
	settleEvt bool

	// Credit-style load estimation state: occInt integrates occupancy
	// over time (flit-picoseconds) so the estimate exposed to routing is
	// the MEAN occupancy over the last staleness window — a busy link
	// never reads zero just because its queue momentarily drained,
	// matching the credit-outstanding metric of the hardware.
	occInt       float64
	occAt        sim.Time
	loadSample   int
	loadSampleAt sim.Time
	loadIntMark  float64

	// Backpressure bookkeeping (see pool.go): waiters is the list of
	// upstream servers blocked on space here; waking is the snapshot a
	// pending batched wake will flush; wakeGen invalidates waitingOn
	// registrations wholesale on each flush.
	waiters   []*server
	waking    []*server
	wakeGen   uint64
	waitingOn []waitReg // downstream servers we are registered with
}

// queued reports whether any VC holds a packet.
func (s *server) queued() bool { return s.nonEmpty != 0 }

// pushPacket appends p to VC vc's queue (buffer space must already be
// accounted via occ/occTotal).
//
//simlint:hotpath
func (s *server) pushPacket(vc int, p *Packet) {
	s.queues[vc].push(p)
	s.nonEmpty |= 1 << uint(vc)
}

// Fabric is a live simulated Aries network on a kernel.
type Fabric struct {
	k      *sim.Kernel        //simlint:resetsafe kernel lifecycle is the caller's (reset as a pair, see core.Machine)
	topo   *topology.Topology //simlint:resetsafe immutable topology
	engine *routing.Engine    //simlint:resetsafe stateless between decisions: scratch contents are dead after each route
	params Params             //simlint:resetsafe immutable config; changes force a rebuild (core.Machine warm checks)
	rng    *rand.Rand

	links  []*server //simlint:resetsafe by LinkID; views into servers, which Reset rewinds element-wise
	inject []*server //simlint:resetsafe by NodeID; views into servers, which Reset rewinds element-wise
	eject  []*server //simlint:resetsafe by NodeID; views into servers, which Reset rewinds element-wise
	// servers holds all of the above, by server.idx (typed-event lookup).
	servers  []*server
	hid      sim.HandlerID //simlint:resetsafe handler registration survives kernel Reset by design
	counters *Counters

	numVC int //simlint:resetsafe immutable config
	pool  packetPool

	// Monotonic whole-fabric statistics.
	PacketsSent      uint64
	PacketsDelivered uint64
	MinimalTaken     uint64
	NonMinimalTaken  uint64
	// dataDelivered counts delivered data (non-response) packets; it is
	// the response-sampling clock, deliberately excluding responses so
	// ResponseEvery=N samples exactly 1 in N data packets (gating on
	// PacketsDelivered would let delivered responses advance the clock
	// and skew the sampling rate).
	dataDelivered uint64

	// Network transit time (injection-head to delivery, excluding the
	// injection queue wait) split by route class, data packets only.
	MinimalTransit    sim.Time
	MinimalCount      uint64
	NonMinimalTransit sim.Time
	NonMinimalCount   uint64
}

// New builds a fabric over topo on kernel k. seed drives the adaptive
// routing's candidate sampling.
func New(k *sim.Kernel, topo *topology.Topology, params Params, engineCfg routing.Config, seed int64) *Fabric {
	if params.PacketBytes <= 0 {
		params = DefaultParams()
	}
	f := &Fabric{
		k:      k,
		topo:   topo,
		params: params,
		rng:    rand.New(rand.NewSource(seed)),
		numVC:  12, // max hops on any route (10) with slack
	}
	f.engine = routing.NewEngine(topo, f, engineCfg)
	f.hid = k.RegisterHandler(f)
	f.counters = NewCounters(topo)

	f.links = make([]*server, len(topo.Links))
	for i := range topo.Links {
		l := &topo.Links[i]
		f.links[i] = &server{
			fab: f, link: l, kind: kindLink,
			bw: l.Bandwidth, lat: l.Latency,
			flitTime: sim.Time(float64(params.FlitBytes) / l.Bandwidth * 1e12),
			queues:   make([]pktQueue, f.numVC),
			occ:      make([]int, f.numVC),
			capFlits: params.BufferFlits,
		}
	}
	slots := topo.Cfg.Capacity()
	injFlit := sim.Time(float64(params.FlitBytes) / topo.Cfg.InjectionBandwidth * 1e12)
	ejFlit := sim.Time(float64(params.FlitBytes) / topo.Cfg.EjectBW() * 1e12)
	f.inject = make([]*server, slots)
	f.eject = make([]*server, slots)
	for n := 0; n < slots; n++ {
		f.inject[n] = &server{
			fab: f, node: topology.NodeID(n), kind: kindInject,
			bw: topo.Cfg.InjectionBandwidth, lat: topo.Cfg.NICLatency,
			flitTime: injFlit,
			queues:   make([]pktQueue, 1), occ: make([]int, 1),
			capFlits: 0, // unbounded: host memory
		}
		f.eject[n] = &server{
			fab: f, node: topology.NodeID(n), kind: kindEject,
			bw: topo.Cfg.EjectBW(), lat: topo.Cfg.NICLatency,
			flitTime: ejFlit,
			queues:   make([]pktQueue, 1), occ: make([]int, 1),
			capFlits: params.BufferFlits,
		}
	}
	f.servers = make([]*server, 0, len(f.links)+2*slots)
	for _, s := range f.links {
		f.servers = append(f.servers, s)
	}
	for n := 0; n < slots; n++ {
		f.servers = append(f.servers, f.inject[n], f.eject[n])
	}
	for i, s := range f.servers {
		s.idx = int32(i)
	}

	// Pre-size every hot-path growth surface out of shared slabs so the
	// steady state starts at construction: without this, each (server,VC)
	// queue and waiter list grows lazily through the 1→2→4→8 append
	// doublings the first time traffic touches it, and those cold-path
	// allocations show up as a long decaying tail in the per-packet
	// allocation gate. Three-index slicing caps each sub-slice so an
	// append past its slot copies out of the slab instead of stomping its
	// neighbor.
	const (
		queueSlots  = 8 // initial packets per VC queue
		waiterSlots = 8 // initial blocked-upstream entries per server
	)
	nq := 0
	for _, s := range f.servers {
		nq += len(s.queues)
	}
	qslab := make([]*Packet, nq*queueSlots)
	off := 0
	for _, s := range f.servers {
		for vc := range s.queues {
			s.queues[vc].buf = qslab[off : off : off+queueSlots]
			off += queueSlots
		}
	}
	wslab := make([]*server, 2*len(f.servers)*waiterSlots)
	rslab := make([]waitReg, len(f.servers)*waiterSlots)
	for i, s := range f.servers {
		wo := 2 * i * waiterSlots
		s.waiters = wslab[wo : wo : wo+waiterSlots]
		s.waking = wslab[wo+waiterSlots : wo+waiterSlots : wo+2*waiterSlots]
		ro := i * waiterSlots
		s.waitingOn = rslab[ro : ro : ro+waiterSlots]
	}
	return f
}

// Typed kernel event kinds dispatched through Fabric.HandleEvent. Using
// the sim.Handler fast path keeps the three per-packet event types —
// serialization completion, propagation arrival, and the batched
// backpressure wake — free of closure allocations.
const (
	// evFinishTx: serialization at server a completed. The in-flight
	// packet is the head of the server's arbitration-winning VC
	// (lastVC), which cannot change while the server is busy.
	evFinishTx uint8 = iota
	// evArrive: packet b (arena index) arrives at server a after
	// propagation; it enters the VC its hop count selects.
	evArrive
	// evWake: flush server a's batched waiter snapshot (see pool.go).
	evWake
	// evHopDone (FuseLinks): packet b finished serializing at link
	// server a AND propagated to its next hop — the fused replacement
	// for an evFinishTx/evArrive pair, scheduled at serialization start.
	evHopDone
	// evSettle (FuseLinks): perform server a's deferred sender-side
	// completion at exactly its freeAt instant. Scheduled lazily, only
	// when queued backlog or blocked upstreams need the completion at
	// freeAt rather than at the fused hop-done.
	evSettle
)

// HandleEvent implements sim.Handler: the fabric's allocation-free event
// dispatch.
//
//simlint:hotpath
func (f *Fabric) HandleEvent(kind uint8, a, b int64) {
	switch kind {
	case evFinishTx:
		s := f.servers[a]
		p := s.queues[s.lastVC].front()
		f.finishTx(s, p, f.next(s, p), s.lastVC)
	case evArrive:
		n := f.servers[a]
		p := f.packetOf(b)
		n.pushPacket(f.vcForHop(n, p.hop), p)
		f.tryStart(n)
	case evWake:
		f.wakeWaiters(f.servers[a])
	case evHopDone:
		f.hopDone(f.servers[a], f.packetOf(b))
	case evSettle:
		s := f.servers[a]
		s.settleEvt = false
		f.settle(s)
		f.tryStart(s)
	}
}

// Kernel returns the fabric's simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.topo }

// Counters returns the live counter set. Overdue fused completions
// settle first, so every external sample point (LDMS ticks, autoperf
// snapshots, run results) reads the same tile counters the split
// reference model would show at this instant.
func (f *Fabric) Counters() *Counters {
	f.settleAll()
	return f.counters
}

// Params returns the fabric parameters.
func (f *Fabric) Params() Params { return f.params }

// LoadUnitBytes is the granularity of the load estimate exposed to the
// adaptive routing (a credit-sized unit, not a whole packet): with 256B
// units, typical congested queues measure in the tens, so the Aries AD2
// additive bias of 4 is genuinely "weak" and the AD3 4x shift "strong",
// matching the paper's characterization of the modes.
const LoadUnitBytes = 256

// Load implements routing.LoadEstimator: the mean buffered occupancy of a
// link in LoadUnitBytes units, averaged over the last LoadStaleness
// window and refreshed only at window boundaries. This reproduces the two
// defining properties of the hardware's credit-based congestion metric:
// it lags reality by a round-trip, and it reflects sustained utilization
// rather than the instantaneous queue.
//
//simlint:hotpath
func (f *Fabric) Load(id topology.LinkID) int {
	s := f.links[id]
	// An overdue fused release is part of the occupancy history. Guarded
	// at the call site: Load runs dozens of times per routing decision,
	// and the settle call (not inlinable) would otherwise tax the
	// reference model for a fused-only obligation.
	if s.pendingTx {
		f.settle(s)
	}
	now := f.k.Now()
	if f.params.LoadStaleness <= 0 {
		return f.jitter(s.occTotal * f.params.FlitBytes / LoadUnitBytes)
	}
	if dt := now - s.loadSampleAt; dt >= f.params.LoadStaleness {
		s.syncOcc(now)
		meanFlits := (s.occInt - s.loadIntMark) / float64(dt)
		s.loadSample = int(meanFlits) * f.params.FlitBytes / LoadUnitBytes
		s.loadIntMark = s.occInt
		s.loadSampleAt = now
	}
	return f.jitter(s.loadSample)
}

// syncOcc folds the occupancy-time integral forward to now. Must be
// called before every occTotal change.
//
//simlint:hotpath
func (s *server) syncOcc(now sim.Time) {
	if now > s.occAt {
		s.occInt += float64(s.occTotal) * float64(now-s.occAt)
		s.occAt = now
	}
}

// bumpOcc adjusts a VC's occupancy, keeping the integral consistent. An
// overdue fused completion settles first (its release is backdated to
// freeAt, so it must land before occAt advances past that instant); the
// settle path itself re-enters with pendingTx already cleared.
//
//simlint:hotpath
func (s *server) bumpOcc(vc, delta int, now sim.Time) {
	if s.pendingTx && now >= s.freeAt {
		s.fab.settle(s)
	}
	s.syncOcc(now)
	s.occ[vc] += delta
	s.occTotal += delta
	if s.occ[vc] < 0 {
		s.occTotal -= s.occ[vc]
		s.occ[vc] = 0
	}
	if s.occTotal < 0 {
		s.occTotal = 0
	}
}

// jitter applies the estimate error model: a multiplicative uniform error
// of ±LoadJitter. Zero load stays zero (an idle port has no credits
// outstanding, so the hardware reads it exactly).
//
//simlint:hotpath
func (f *Fabric) jitter(load int) int {
	j := f.params.LoadJitter
	if j <= 0 || load == 0 {
		return load
	}
	factor := 1 - j + 2*j*f.rng.Float64()
	v := int(float64(load)*factor + 0.5)
	if v < 0 {
		v = 0
	}
	return v
}

// flitsOf returns the flit count of a payload.
func (f *Fabric) flitsOf(bytes int) int {
	n := (bytes + f.params.FlitBytes - 1) / f.params.FlitBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Send transfers bytes from src to dst with the given routing mode,
// returning a Message whose Done signal fires on complete delivery.
// Each packet is routed independently when it reaches the head of the
// injection queue, so adaptive decisions see live congestion.
func (f *Fabric) Send(src, dst topology.NodeID, bytes int, mode routing.Mode) *Message {
	m := &Message{Src: src, Dst: dst, Bytes: bytes, Mode: mode, Done: sim.NewSignal()}
	if src == dst {
		m.remaining = 0
		f.k.After(f.params.LocalLatency, func() {
			m.DeliveredAt = f.k.Now()
			if m.OnDelivered != nil {
				m.OnDelivered(m)
			}
			m.Done.Fire(f.k)
		})
		return m
	}
	nPackets := (bytes + f.params.PacketBytes - 1) / f.params.PacketBytes
	if nPackets < 1 {
		nPackets = 1
	}
	m.remaining = nPackets
	rem := bytes
	inj := f.inject[src]
	for i := 0; i < nPackets; i++ {
		sz := f.params.PacketBytes
		if sz > rem {
			sz = rem
		}
		if sz < 1 {
			sz = 1
		}
		rem -= sz
		p := f.allocPacket()
		p.src, p.dst = src, dst
		p.bytes, p.flits = sz, f.flitsOf(sz)
		p.sendTime, p.msg = f.k.Now(), m
		inj.bumpOcc(0, p.flits, f.k.Now())
		inj.pushPacket(0, p)
	}
	f.PacketsSent += uint64(nPackets)
	f.tryStart(inj)
	return m
}

// routePacket assigns p's route using the adaptive engine and live load.
// The winning path is appended into the packet's pooled route slice, so
// only the engine's internal scratch and p's own recycled buffer are
// touched — no per-decision allocation.
//
//simlint:hotpath
func (f *Fabric) routePacket(p *Packet, mode routing.Mode) {
	srcR := f.topo.RouterOfNode(p.src)
	dstR := f.topo.RouterOfNode(p.dst)
	links, nonMin := f.engine.RouteInto(p.route[:0], mode, f.rng, srcR, dstR, 0)
	p.route = links
	p.routed = true
	p.routedAt = f.k.Now()
	p.nonMin = nonMin
	if nonMin {
		f.NonMinimalTaken++
		if p.msg != nil {
			p.msg.nonMin++
		}
	} else {
		f.MinimalTaken++
		if p.msg != nil {
			p.msg.minimal++
		}
	}
}

// vcForHop returns the buffer index used at a server by a packet whose hop
// index there will be `hop`.
//
//simlint:hotpath
func (f *Fabric) vcForHop(s *server, hop int) int {
	if s.kind != kindLink {
		return 0
	}
	if hop < 0 {
		hop = 0
	}
	if hop >= f.numVC {
		hop = f.numVC - 1
	}
	return hop
}

// next returns the server a packet moves to after s (nil = delivered).
//
//simlint:hotpath
func (f *Fabric) next(s *server, p *Packet) *server {
	switch s.kind {
	case kindInject:
		if len(p.route) == 0 {
			return f.eject[p.dst]
		}
		return f.links[p.route[0]]
	case kindLink:
		if p.hop+1 < len(p.route) {
			return f.links[p.route[p.hop+1]]
		}
		return f.eject[p.dst]
	default:
		return nil
	}
}

// hopAfter returns p.hop's value once it moves past s.
//
//simlint:hotpath
func (f *Fabric) hopAfter(s *server, p *Packet) int {
	if s.kind == kindInject {
		return 0
	}
	return p.hop + 1
}

// hasSpace reports whether server s can accept flits on VC vc. A server
// with capFlits == 0 is unbounded; an empty VC always accepts one packet
// regardless of size so oversized packets cannot wedge.
//
//simlint:hotpath
func (s *server) hasSpace(vc, flits int) bool {
	if s.capFlits == 0 {
		return true
	}
	if s.occ[vc] == 0 {
		return true
	}
	return s.occ[vc]+flits <= s.capFlits
}

// tile returns the (router, tileIndex) whose counters record traffic
// through s for packet p. NIC servers map to processor tiles, split
// request/response by packet kind.
//
//simlint:hotpath
func (s *server) tile(p *Packet) (topology.RouterID, int) {
	t := s.fab.topo
	if s.kind == kindLink {
		return s.link.Src, s.link.Tile
	}
	r := t.RouterOfNode(s.node)
	nic := t.NICIndexOfNode(s.node)
	if p.response {
		return r, t.ProcRspTile(nic)
	}
	return r, t.ProcReqTile(nic)
}

// stallTile decides where a blocked interval at s is charged, given the
// packet that finally unblocked it. Blocking on a full ejection queue is
// endpoint congestion and lands on the destination's processor tile (the
// paper's Proc_req/Proc_rsp stalls); everything else lands on s's tile.
//
//simlint:hotpath
func (f *Fabric) stallTile(s *server, p *Packet) (topology.RouterID, int) {
	if n := f.next(s, p); n != nil && n.kind == kindEject {
		return n.tile(p)
	}
	return s.tile(p)
}

// settle performs a fused transmission's deferred sender-side completion
// once its serialization-end instant has passed: count the flits on s's
// tile, dequeue the packet, release the input buffer (backdated to
// freeAt, which keeps the occupancy-time integral feeding Load exact),
// and wake blocked upstreams. Every code path that reads or mutates
// sender-side state — arbitration, space checks, occupancy bumps, load
// queries, counter snapshots — settles first, so no reader can observe
// the deferred state. A settle strictly after freeAt can only happen
// when nothing needed the completion at freeAt itself (no backlog, no
// waiters: those schedule an evSettle for exactly freeAt), which is why
// deferring it to the fused hop-done is unobservable.
//
//simlint:hotpath
func (f *Fabric) settle(s *server) {
	if !s.pendingTx || f.k.Now() < s.freeAt {
		return
	}
	s.pendingTx = false
	vc := s.lastVC
	p := s.queues[vc].front()
	r, tIdx := s.tile(p)
	f.counters.Flits[r][tIdx] += uint64(p.flits)
	s.queues[vc].pop()
	if s.queues[vc].empty() {
		s.nonEmpty &^= 1 << uint(vc)
	}
	s.bumpOcc(vc, -p.flits, s.freeAt)
	s.busy = false
	f.flushWaiters(s)
}

// settleDue schedules the evSettle that makes a fused sender's deferred
// completion happen at exactly freeAt. Called when backlog or waiters
// appear while the transmission is still in flight.
//
//simlint:hotpath
func (f *Fabric) settleDue(s *server) {
	if !s.settleEvt {
		s.settleEvt = true
		f.k.AtEvent(s.freeAt, f.hid, evSettle, int64(s.idx), 0)
	}
}

// fusedBacklog reports whether a fused-pending sender has queued work
// beyond its in-flight packet — work the split reference model would
// start at freeAt, so the fused model must settle then too.
//
//simlint:hotpath
func (s *server) fusedBacklog() bool {
	return s.nonEmpty != 1<<uint(s.lastVC) || s.queues[s.lastVC].len() > 1
}

// hopDone is the fused per-link-hop event (Params.FuseLinks): packet p
// has both finished serializing at link server s and propagated to its
// next hop. The sender side settles here if no earlier touch already
// did; the arrival side is identical to evArrive.
//
//simlint:hotpath
func (f *Fabric) hopDone(s *server, p *Packet) {
	f.settle(s)
	n := f.next(s, p)
	p.hop = f.hopAfter(s, p)
	n.pushPacket(f.vcForHop(n, p.hop), p)
	f.tryStart(n)
	f.tryStart(s)
}

// settleAll settles every overdue fused completion, bringing all
// sender-side state (tile flit counters, occupancies) to what the split
// reference model would show at this instant. Counter snapshots call it
// so fused and reference runs read identically at every sample point.
func (f *Fabric) settleAll() {
	for _, s := range f.servers {
		if s.pendingTx {
			f.settle(s)
		}
	}
}

// tryStart arbitrates s's VC heads round-robin and begins serializing the
// first one whose downstream buffer has space. If work is queued but
// nothing can proceed, a stall interval starts.
//
// The scan walks set bits of the nonEmpty mask directly instead of
// testing all numVC positions: hi holds the VCs strictly above the
// round-robin pointer (visited first, ascending), lo the wrap-around
// remainder up to and including lastVC — the exact visit order of the
// old modular loop, skipping empty VCs for free. tryStart is the hottest
// fabric function (it runs per injection, arrival, completion, and wake),
// and most servers have 1-2 of 12 VCs occupied.
//
//simlint:hotpath
func (f *Fabric) tryStart(s *server) {
	if s.pendingTx {
		if f.k.Now() >= s.freeAt {
			f.settle(s)
		} else {
			// Still serializing a fused transmission. If work is now
			// queued beyond the in-flight head, the reference model
			// would start it at freeAt — make sure we settle then.
			if s.fusedBacklog() {
				f.settleDue(s)
			}
			return
		}
	}
	if s.busy || s.nonEmpty == 0 {
		return
	}
	hi := s.nonEmpty >> uint(s.lastVC+1) << uint(s.lastVC+1)
	for m := hi; m != 0; m &= m - 1 {
		if f.startVC(s, bits.TrailingZeros32(m)) {
			return
		}
	}
	for m := s.nonEmpty &^ hi; m != 0; m &= m - 1 {
		if f.startVC(s, bits.TrailingZeros32(m)) {
			return
		}
	}
	// Nothing startable: begin a stall interval if work is queued.
	if !s.blocked && s.queued() {
		s.blocked = true
		s.stallAt = f.k.Now()
	}
}

// startVC tries to begin serializing the head of s's VC vc, reporting
// whether serialization started (false: downstream full, caller moves to
// the next candidate VC).
//
//simlint:hotpath
func (f *Fabric) startVC(s *server, vc int) bool {
	p := s.queues[vc].front()
	if s.kind == kindInject && !p.routed {
		// Route lazily at the head of the injection queue so the
		// adaptive decision sees current congestion.
		mode := p.rspMode
		if p.msg != nil {
			mode = p.msg.Mode
		}
		f.routePacket(p, mode)
	}
	n := f.next(s, p)
	if n != nil {
		// An overdue fused completion at the next hop must land before
		// we read its buffer state (the reference model freed that
		// space at n's freeAt).
		if n.pendingTx {
			f.settle(n)
		}
		dvc := f.vcForHop(n, f.hopAfter(s, p))
		if !n.hasSpace(dvc, p.flits) {
			f.registerWaiter(s, n)
			if n.pendingTx {
				// We now depend on n's in-flight completion; its wake
				// must fire at freeAt, as the reference model's would.
				f.settleDue(n)
			}
			return false // other VCs may still proceed
		}
		// Reserve downstream space for the whole serialization
		// (wormhole-style occupancy).
		n.bumpOcc(dvc, p.flits, f.k.Now())
	}
	if s.blocked {
		s.blocked = false
		r, tIdx := f.stallTile(s, p)
		f.counters.Stalls[r][tIdx] += float64(f.k.Now()-s.stallAt) / float64(s.flitTime)
	}
	s.lastVC = vc
	s.busy = true
	ser := sim.Time(float64(p.bytes) / s.bw * 1e12)
	if f.params.FuseLinks && s.kind == kindLink &&
		s.nonEmpty == 1<<uint(vc) && s.queues[vc].len() == 1 &&
		len(s.waiters) == 0 {
		// Clean link hop: nothing else queued here and no blocked
		// upstreams, so nothing the reference model does at freeAt is
		// needed before the packet lands downstream. Schedule the one
		// fused hop-done event with the contention delay precomputed
		// from the downstream backlog as of now (the reference reads it
		// at freeAt — the coarsening FuseLinks documents). Sender-side
		// completion is owed at freeAt and settles lazily; if backlog
		// or waiters appear mid-flight, tryStart/registerWaiter
		// schedule an evSettle for exactly freeAt.
		//
		// Injection hops are never fused: their arbitration triggers
		// the routing decisions that draw from the shared RNG, and the
		// reference event order must be preserved around every draw.
		// Ejection hops have no arrival to fuse (serialization end IS
		// delivery).
		s.pendingTx = true
		s.freeAt = f.k.Now() + ser
		delay := ser + s.lat
		if hc := f.params.HopContention; hc > 0 && n.occTotal > 0 {
			delay += sim.Time(hc * float64(n.occTotal) * float64(n.flitTime))
		}
		f.k.AfterEvent(delay, f.hid, evHopDone, int64(s.idx), int64(p.idx))
		return true
	}
	// Typed event: finishTx recovers (p, n, vc) from s itself —
	// lastVC and the queue head are frozen while the server is busy.
	f.k.AfterEvent(ser, f.hid, evFinishTx, int64(s.idx), 0)
	return true
}

// finishTx completes serialization of p at s: counts flits, frees s's
// buffer space, wakes waiters, forwards p downstream after propagation
// latency, and re-arbitrates s.
//
//simlint:hotpath
func (f *Fabric) finishTx(s *server, p *Packet, n *server, vc int) {
	// Count the traversal on s's tile.
	r, tIdx := s.tile(p)
	f.counters.Flits[r][tIdx] += uint64(p.flits)

	// Dequeue and free our input buffer space.
	s.queues[vc].pop()
	if s.queues[vc].empty() {
		s.nonEmpty &^= 1 << uint(vc)
	}
	s.bumpOcc(vc, -p.flits, f.k.Now())
	s.busy = false

	// Space freed here: one batched event wakes every blocked upstream.
	f.flushWaiters(s)

	if n == nil {
		f.deliver(p) // ejection complete
	} else {
		p.hop = f.hopAfter(s, p)
		// The next hop may owe a fused completion; its backlog must
		// read post-completion before pricing the contention delay.
		if n.pendingTx {
			f.settle(n)
		}
		delay := s.lat
		if hc := f.params.HopContention; hc > 0 && n.occTotal > 0 {
			// Crossbar/arbitration contention at the next router,
			// proportional to its current backlog.
			delay += sim.Time(hc * float64(n.occTotal) * float64(n.flitTime))
		}
		f.k.AfterEvent(delay, f.hid, evArrive, int64(n.idx), int64(p.idx))
	}
	f.tryStart(s)
}

// deliver completes a packet at its destination node.
//
//simlint:hotpath
func (f *Fabric) deliver(p *Packet) {
	f.PacketsDelivered++
	if !p.response {
		transit := f.k.Now() - p.routedAt
		if p.msg != nil {
			p.msg.TransitSum += transit
		}
		if p.nonMin {
			f.NonMinimalTransit += transit
			f.NonMinimalCount++
		} else {
			f.MinimalTransit += transit
			f.MinimalCount++
		}
	}
	if p.response {
		// Response arrived back at the original requester: close the
		// ORB latency sample.
		f.counters.ORBTimeSum[p.dst] += f.k.Now() - p.sendTime
		f.counters.ORBCount[p.dst]++
		f.releasePacket(p)
		return
	}
	m := p.msg
	if m != nil {
		m.remaining--
		if m.remaining == 0 {
			m.DeliveredAt = f.k.Now()
			if m.OnDelivered != nil {
				m.OnDelivered(m)
			}
			m.Done.Fire(f.k)
		}
	}
	// Generate the tracked response for a sampled subset of requests,
	// clocked on data packets only so the sampling rate holds at exactly
	// 1 in ResponseEvery.
	every := f.params.ResponseEvery
	if every < 1 {
		every = 1
	}
	f.dataDelivered++
	sample := f.dataDelivered%uint64(every) == 0
	reqSrc, reqDst, reqSent := p.src, p.dst, p.sendTime
	f.releasePacket(p)
	if sample {
		mode := routing.AD0
		if m != nil {
			mode = m.Mode
		}
		rsp := f.allocPacket()
		rsp.src, rsp.dst = reqDst, reqSrc
		rsp.bytes, rsp.flits = f.params.ResponseBytes, f.flitsOf(f.params.ResponseBytes)
		rsp.response, rsp.rspMode = true, mode
		rsp.sendTime = reqSent // pair latency spans request + response
		inj := f.inject[reqDst]
		inj.bumpOcc(0, rsp.flits, f.k.Now())
		inj.pushPacket(0, rsp)
		f.tryStart(inj)
	}
}
