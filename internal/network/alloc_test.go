package network

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// warmFabric drives enough random traffic through f to reach steady
// state: the packet arena, event heap, per-VC queues, waiter slices, and
// routing scratch have all grown to their working sizes.
func warmFabric(tb testing.TB, f *Fabric, msgs int) {
	tb.Helper()
	topo := f.Topology()
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		for src == dst {
			dst = topology.NodeID(rng.Intn(topo.NumNodes()))
		}
		f.Send(src, dst, 1+rng.Intn(4*f.Params().PacketBytes), routing.Mode(i%4))
	}
	f.Kernel().Run()
}

// injectRaw pushes one pooled data packet into src's injection queue,
// bypassing Send's Message envelope (which is per-transfer, not
// per-packet, and so allowed to allocate). This isolates exactly the
// per-packet machinery: routing, serialization, propagation, arbitration,
// backpressure, delivery, response generation, recycling.
func (f *Fabric) injectRaw(src, dst topology.NodeID, bytes int) {
	p := f.allocPacket()
	p.src, p.dst = src, dst
	p.bytes, p.flits = bytes, f.flitsOf(bytes)
	p.sendTime = f.k.Now()
	inj := f.inject[src]
	inj.bumpOcc(0, p.flits, f.k.Now())
	inj.pushPacket(0, p)
	f.PacketsSent++
	f.tryStart(inj)
}

// TestPacketHopAllocFree is the fabric's allocation budget: in steady
// state, a packet's complete life cycle — adaptive routing (including the
// response packet it triggers), every hop's serialization and propagation
// event, delivery, and recycling — must execute zero heap allocations.
// This is the tentpole invariant of the zero-allocation hot path; any new
// per-packet allocation fails here before it shows up in GC profiles.
// It pins the split reference model explicitly (FuseLinks now defaults
// on); the fused budget is TestPacketHopAllocFreeFused.
func TestPacketHopAllocFree(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FuseLinks = false
	f := New(sim.NewKernel(), topo, params, routing.DefaultConfig(), 77)
	warmFabric(t, f, 400)

	rng := rand.New(rand.NewSource(5))
	n := topo.NumNodes()
	const perRun = 32
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < perRun; i++ {
			src := topology.NodeID(rng.Intn(n))
			dst := topology.NodeID(rng.Intn(n))
			for src == dst {
				dst = topology.NodeID(rng.Intn(n))
			}
			f.injectRaw(src, dst, f.Params().PacketBytes)
		}
		f.Kernel().Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state packet path allocated %.2f times per %d packets, want 0",
			allocs, perRun)
	}
}

// TestPacketHopAllocFreeFused is the same allocation budget with
// Params.FuseLinks on: the fused evHopDone path (and the lazy settle
// machinery it leans on — deferred sender completion, evSettle
// scheduling, backdated occupancy integration) must stay allocation-free
// too, or fusion would trade event count for GC pressure.
func TestPacketHopAllocFreeFused(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FuseLinks = true
	f := New(sim.NewKernel(), topo, params, routing.DefaultConfig(), 77)
	warmFabric(t, f, 400)

	rng := rand.New(rand.NewSource(5))
	n := topo.NumNodes()
	const perRun = 32
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < perRun; i++ {
			src := topology.NodeID(rng.Intn(n))
			dst := topology.NodeID(rng.Intn(n))
			for src == dst {
				dst = topology.NodeID(rng.Intn(n))
			}
			f.injectRaw(src, dst, f.Params().PacketBytes)
		}
		f.Kernel().Run()
	})
	if allocs != 0 {
		t.Fatalf("fused steady-state packet path allocated %.2f times per %d packets, want 0",
			allocs, perRun)
	}
}

// TestRouteDecisionAllocFree pins the routing engine's scratch-buffer
// discipline: a RouteInto decision reuses engine scratch and the caller's
// route buffer, allocating nothing once both are warm.
func TestRouteDecisionAllocFree(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	eng := routing.NewEngine(topo, nil, routing.DefaultConfig())
	rng := rand.New(rand.NewSource(9))
	nr := topo.NumRouters()
	buf := make([]topology.LinkID, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			src := topology.RouterID(rng.Intn(nr))
			dst := topology.RouterID(rng.Intn(nr))
			var nm bool
			buf, nm = eng.RouteInto(buf[:0], routing.Mode(i%4), rng, src, dst, 0)
			_ = nm
		}
	})
	if allocs != 0 {
		t.Fatalf("RouteInto allocated %.2f times per 16 decisions, want 0", allocs)
	}
}
