package network

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// driveTraffic sends msgs random messages into f with rng and returns the
// total payload bytes injected. It does not run the kernel.
func driveTraffic(f *Fabric, rng *rand.Rand, msgs int) (msgList []*Message, totalBytes int) {
	n := f.Topology().NumNodes()
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		for src == dst {
			dst = topology.NodeID(rng.Intn(n))
		}
		bytes := 1 + rng.Intn(3*f.Params().PacketBytes)
		m := f.Send(src, dst, bytes, routing.Mode(rng.Intn(4)))
		msgList = append(msgList, m)
		totalBytes += bytes
	}
	return msgList, totalBytes
}

// TestQueuedFlitsMatchesWalk pins the cached occTotal sums behind
// QueuedFlits to the slow per-VC walk, both mid-flight (while queues hold
// packets) and after drain (both must read zero).
func TestQueuedFlitsMatchesWalk(t *testing.T) {
	f := testFabric(t, 3, 21)
	rng := rand.New(rand.NewSource(42))
	driveTraffic(f, rng, 60)

	sawQueued := false
	deadline := sim.Time(0)
	for f.Kernel().Pending() > 0 {
		deadline += 200 * sim.Nanosecond
		f.Kernel().RunUntil(deadline)
		fast, slow := f.QueuedFlits(), f.queuedFlitsWalk()
		if fast != slow {
			t.Fatalf("at t=%v QueuedFlits=%d but per-VC walk=%d", f.Kernel().Now(), fast, slow)
		}
		if fast > 0 {
			sawQueued = true
		}
	}
	if !sawQueued {
		t.Fatal("traffic never showed up in QueuedFlits; test is vacuous")
	}
	if got := f.QueuedFlits(); got != 0 {
		t.Fatalf("QueuedFlits=%d after drain, want 0", got)
	}
}

// TestResponseSamplingCountsDataOnly pins the response-sampling clock to
// data packets: with ResponseEvery=N, exactly floor(data/N) responses are
// generated no matter how many responses are themselves delivered. (Gating
// on PacketsDelivered — which responses advance — undersamples: every
// delivered response pushes the next sample one packet further out.)
func TestResponseSamplingCountsDataOnly(t *testing.T) {
	for _, every := range []int{1, 2, 3} {
		f := testFabric(t, 3, 7)
		f.params.ResponseEvery = every
		rng := rand.New(rand.NewSource(11))
		const msgs = 40
		var dataPkts uint64
		n := f.Topology().NumNodes()
		for i := 0; i < msgs; i++ {
			src := topology.NodeID(rng.Intn(n))
			dst := topology.NodeID(rng.Intn(n))
			for src == dst {
				dst = topology.NodeID(rng.Intn(n))
			}
			// Single-packet messages so the data-packet count is exact.
			f.Send(src, dst, f.Params().PacketBytes, routing.AD0)
			dataPkts++
		}
		f.Kernel().Run()

		var orbTotal uint64
		for _, c := range f.counters.ORBCount {
			orbTotal += c
		}
		want := dataPkts / uint64(every)
		if orbTotal != want {
			t.Fatalf("ResponseEvery=%d: %d ORB samples for %d data packets, want %d",
				every, orbTotal, dataPkts, want)
		}
	}
}

// checkPoolInvariants verifies the arena/free-list structure after a fully
// drained run: every arena slot knows its own index, the free list holds
// each recyclable slot exactly once, and with no packet in flight the free
// list covers the whole arena (no leaked, no double-freed packets).
func checkPoolInvariants(t *testing.T, f *Fabric) {
	t.Helper()
	pool := &f.pool
	for i, p := range pool.arena {
		if int(p.idx) != i {
			t.Fatalf("arena[%d].idx = %d; recycled packet aliases another slot", i, p.idx)
		}
	}
	seen := make(map[int32]bool, len(pool.free))
	for _, idx := range pool.free {
		if idx < 0 || int(idx) >= len(pool.arena) {
			t.Fatalf("free-list index %d outside arena of %d", idx, len(pool.arena))
		}
		if seen[idx] {
			t.Fatalf("arena slot %d double-freed", idx)
		}
		seen[idx] = true
	}
	if len(pool.free) != len(pool.arena) {
		t.Fatalf("after drain %d of %d arena slots on the free list; %d packets leaked",
			len(pool.free), len(pool.arena), len(pool.arena)-len(pool.free))
	}
	if got := pool.stats.Allocated; got != uint64(len(pool.arena)) {
		t.Fatalf("PoolStats.Allocated=%d, arena holds %d", got, len(pool.arena))
	}
}

// runPair drives identical traffic through a recycling fabric and a
// NoRecycle reference fabric (same topology, seeds, and message sequence)
// and fails if any observable output differs: packet and route-class
// counts, per-message delivery times, final virtual time, every hardware
// counter, and ORB samples. This is the aliasing property test: if a
// recycled packet ever aliased a live one, its route, payload accounting,
// or delivery would diverge from the allocate-always reference.
func runPair(t *testing.T, seed int64, msgs int) {
	t.Helper()
	build := func(noRecycle bool) *Fabric {
		topo, err := topology.Build(topology.TestConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.NoRecycle = noRecycle
		return New(sim.NewKernel(), topo, params, routing.DefaultConfig(), seed)
	}
	fp, fr := build(false), build(true)

	mp, bytesP := driveTraffic(fp, rand.New(rand.NewSource(seed+1)), msgs)
	mr, bytesR := driveTraffic(fr, rand.New(rand.NewSource(seed+1)), msgs)
	if bytesP != bytesR {
		t.Fatalf("traffic generators diverged: %d vs %d bytes", bytesP, bytesR)
	}
	endP, endR := fp.Kernel().Run(), fr.Kernel().Run()

	if endP != endR {
		t.Fatalf("seed %d: final time %v (pooled) vs %v (reference)", seed, endP, endR)
	}
	if fp.PacketsSent != fr.PacketsSent || fp.PacketsDelivered != fr.PacketsDelivered {
		t.Fatalf("seed %d: sent/delivered %d/%d vs %d/%d",
			seed, fp.PacketsSent, fp.PacketsDelivered, fr.PacketsSent, fr.PacketsDelivered)
	}
	if fp.MinimalTaken != fr.MinimalTaken || fp.NonMinimalTaken != fr.NonMinimalTaken {
		t.Fatalf("seed %d: route classes %d/%d vs %d/%d",
			seed, fp.MinimalTaken, fp.NonMinimalTaken, fr.MinimalTaken, fr.NonMinimalTaken)
	}
	for i := range mp {
		if !mp[i].Done.Fired() || !mr[i].Done.Fired() {
			t.Fatalf("seed %d: message %d undelivered (pooled=%v reference=%v)",
				seed, i, mp[i].Done.Fired(), mr[i].Done.Fired())
		}
		if mp[i].DeliveredAt != mr[i].DeliveredAt {
			t.Fatalf("seed %d: message %d delivered at %v (pooled) vs %v (reference)",
				seed, i, mp[i].DeliveredAt, mr[i].DeliveredAt)
		}
	}
	cp, cr := fp.Counters(), fr.Counters()
	for r := range cp.Flits {
		for tl := range cp.Flits[r] {
			if cp.Flits[r][tl] != cr.Flits[r][tl] {
				t.Fatalf("seed %d: router %d tile %d flits %d vs %d",
					seed, r, tl, cp.Flits[r][tl], cr.Flits[r][tl])
			}
			if cp.Stalls[r][tl] != cr.Stalls[r][tl] {
				t.Fatalf("seed %d: router %d tile %d stalls %v vs %v",
					seed, r, tl, cp.Stalls[r][tl], cr.Stalls[r][tl])
			}
		}
	}
	for n := range cp.ORBCount {
		if cp.ORBCount[n] != cr.ORBCount[n] || cp.ORBTimeSum[n] != cr.ORBTimeSum[n] {
			t.Fatalf("seed %d: node %d ORB %d/%v vs %d/%v",
				seed, n, cp.ORBCount[n], cp.ORBTimeSum[n], cr.ORBCount[n], cr.ORBTimeSum[n])
		}
	}

	checkPoolInvariants(t, fp)
	if st := fp.PoolStats(); st.Recycled == 0 {
		t.Fatalf("seed %d: pool never recycled a packet; property test is vacuous (stats %+v)",
			seed, st)
	}
}

// TestRecycleMatchesNoRecycle is the pooled-vs-reference property over a
// spread of seeds.
func TestRecycleMatchesNoRecycle(t *testing.T) {
	for _, seed := range []int64{1, 17, 202, 4096} {
		runPair(t, seed, 80)
	}
}

// FuzzRecycleMatchesNoRecycle fuzzes the same property over arbitrary
// seeds and traffic volumes.
func FuzzRecycleMatchesNoRecycle(f *testing.F) {
	f.Add(int64(3), uint8(20))
	f.Add(int64(999), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, msgs uint8) {
		runPair(t, seed, 1+int(msgs)%100)
	})
}
