package network

// This file holds the fabric's warm-reuse path. Building a Fabric is the
// single largest allocation source in an ensemble run (half of all bytes:
// per-server queues, slabs, counters, the routing engine), and every seed
// of every campaign point used to pay it. Reset rewinds an existing
// fabric to its just-constructed state in place, so an ensemble worker
// constructs one machine and replays it for every run assigned to its
// slot. The invariant is behavioural identity: a reset fabric must
// produce byte-identical results and identical observable stats to a
// freshly constructed one with the same parameters and seed
// (TestMachineResetEquivalence pins this end to end).

// reset rewinds one server to its post-construction state, keeping every
// backing array (queues, occ, waiter slabs) at its grown capacity.
func (s *server) reset() {
	for vc := range s.queues {
		q := &s.queues[vc]
		for i := q.head; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:0]
		q.head = 0
		s.occ[vc] = 0
	}
	s.occTotal = 0
	s.nonEmpty = 0
	s.busy = false
	s.lastVC = 0
	s.blocked = false
	s.stallAt = 0
	s.pendingTx = false
	s.freeAt = 0
	s.settleEvt = false
	s.occInt = 0
	s.occAt = 0
	s.loadSample = 0
	s.loadSampleAt = 0
	s.loadIntMark = 0
	for i := range s.waiters {
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	for i := range s.waking {
		s.waking[i] = nil
	}
	s.waking = s.waking[:0]
	s.wakeGen = 0
	s.waitingOn = s.waitingOn[:0]
}

// Reset zeroes every counter in place, keeping the backing slabs.
func (c *Counters) Reset() {
	for r := range c.Flits {
		fl, st := c.Flits[r], c.Stalls[r]
		for t := range fl {
			fl[t] = 0
			st[t] = 0
		}
	}
	for n := range c.ORBTimeSum {
		c.ORBTimeSum[n] = 0
		c.ORBCount[n] = 0
	}
}

// Reset rewinds the fabric to its just-constructed state for the given
// seed, reusing every allocation: server queues and slabs, the packet
// arena, the counter slabs, and the routing engine's scratch all keep
// their capacity. The caller owns the kernel lifecycle — the fabric's
// handler registration survives a kernel Reset, so the pair (kernel,
// fabric) resets as a unit (see core.Machine).
//
// Reset must only be called on a drained fabric (all sent traffic
// delivered, kernel queue empty); resetting mid-flight discards packets
// without firing their messages' Done signals.
func (f *Fabric) Reset(seed int64) {
	for _, s := range f.servers {
		s.reset()
	}
	f.counters.Reset()
	f.pool.reset()
	// Reseeding the existing source restarts the identical stream a fresh
	// rand.New(rand.NewSource(seed)) would produce, without the two
	// allocations.
	f.rng.Seed(seed)

	f.PacketsSent = 0
	f.PacketsDelivered = 0
	f.MinimalTaken = 0
	f.NonMinimalTaken = 0
	f.dataDelivered = 0
	f.MinimalTransit = 0
	f.MinimalCount = 0
	f.NonMinimalTransit = 0
	f.NonMinimalCount = 0
}
