// Package network simulates the Aries fabric at packet granularity: NIC
// injection/ejection servers and router-to-router links modeled as FIFO
// transmission servers with finite, virtual-channel-indexed input buffers.
// A full downstream buffer blocks the upstream server (backpressure), which
// is what lets congestion percolate backwards from hot rank-3 links — the
// effect at the center of the paper's HACC analysis. Every traversal and
// every blocked interval is recorded in Aries-style tile counters.
package network

import (
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Packet is one routed network packet (a chunk of a Message, or a
// response). Packets are routed independently and adaptively, as on Aries.
//
// Packets are pooled: every Packet belongs to its Fabric's arena and is
// recycled at delivery (see pool.go). Model code must not retain a *Packet
// across events — after deliver returns, the pointer may be reused for an
// unrelated packet. idx is the packet's stable arena slot, which doubles
// as its identity in typed kernel events (a scalar payload instead of a
// boxed pointer).
//
// Which events carry the identity differs by path: the split model's
// evFinishTx recovers its packet from the sender (queue head of lastVC,
// frozen while the server is busy), but the fused evHopDone cannot — by
// the time it fires the sender may have settled, re-arbitrated, and be
// serializing a different packet — so it carries idx in its payload, the
// same way evArrive always has.
type Packet struct {
	idx      int32 //simlint:resetsafe arena-slot identity, fixed for the life of the Fabric
	src, dst topology.NodeID
	bytes    int
	flits    int
	route    []topology.LinkID
	hop      int  // index into route of the link currently holding us
	routed   bool // route assigned (happens lazily at injection head)
	response bool // response-VC packet (ack); does not trigger a response
	nonMin   bool // took a Valiant route
	rspMode  routing.Mode
	sendTime sim.Time
	routedAt sim.Time // when the route was chosen (injection head)
	msg      *Message // nil for responses
}

// Bytes returns the packet payload size.
func (p *Packet) Bytes() int { return p.bytes }

// Response reports whether this is a response-channel packet.
func (p *Packet) Response() bool { return p.response }

// Message is one application-level transfer, fragmented into packets at
// the source NIC. The Done signal fires when the final packet is delivered
// to the destination node.
type Message struct {
	Src, Dst topology.NodeID
	Bytes    int
	Mode     routing.Mode

	Done        *sim.Signal
	DeliveredAt sim.Time
	// OnDelivered, when non-nil, runs in kernel context immediately
	// before Done fires. Upper layers (MPI matching) hook it to react to
	// deliveries without needing a live proc.
	OnDelivered func(*Message)

	remaining int // undelivered packets
	minimal   int // packets that took a minimal route
	nonMin    int // packets that took a non-minimal route

	// TransitSum accumulates per-packet network transit (routing
	// decision to delivery) across the message's packets.
	TransitSum sim.Time
}

// RouteCounts reports how many of the message's packets took minimal and
// non-minimal routes (diagnostic, used by routing-behaviour tests).
func (m *Message) RouteCounts() (minimal, nonMinimal int) {
	return m.minimal, m.nonMin
}
