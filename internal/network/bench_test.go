package network

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// BenchmarkPacketDelivery measures end-to-end fabric throughput in
// packets: random 4KB sends across a 4-group dragonfly.
func BenchmarkPacketDelivery(b *testing.B) {
	benchPacketDelivery(b, false)
}

// BenchmarkPacketDeliveryFused is the same workload with Params.FuseLinks
// on: each link hop whose reservation succeeds at serialization start
// collapses finishTx+arrive into one event, so the events/pkt metric —
// the deterministic cost proxy, immune to host noise — must come in
// under the reference run's (see TestEventsPerPacketCeiling for the
// hard bounds).
func BenchmarkPacketDeliveryFused(b *testing.B) {
	benchPacketDelivery(b, true)
}

func benchPacketDelivery(b *testing.B, fuse bool) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	params := DefaultParams()
	params.FuseLinks = fuse
	k := sim.NewKernel()
	f := New(k, topo, params, routing.DefaultConfig(), 1)
	rng := rand.New(rand.NewSource(2))
	n := topo.NumNodes()
	for i := 0; i < b.N; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		f.Send(src, dst, 4096, routing.AD0)
	}
	b.ResetTimer()
	k.Run()
	b.ReportMetric(float64(k.Stats().EventsExecuted)/float64(b.N), "events/pkt")
}

// BenchmarkAdaptiveRoute measures the per-packet routing decision cost
// (candidate sampling + load scoring) under live load state.
func BenchmarkAdaptiveRoute(b *testing.B) {
	topo, err := topology.Build(topology.ThetaMiniConfig())
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel()
	f := New(k, topo, DefaultParams(), routing.DefaultConfig(), 1)
	rng := rand.New(rand.NewSource(3))
	eng := routing.NewEngine(topo, f, routing.DefaultConfig())
	nr := topo.NumRouters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := topology.RouterID(rng.Intn(nr))
		dst := topology.RouterID(rng.Intn(nr))
		_ = eng.Route(routing.AD0, rng, src, dst, 0)
	}
}

// BenchmarkRouteInto measures the same routing decision through the
// zero-allocation entry the fabric's hot path uses: engine scratch plus a
// reused caller buffer. Run with -benchmem: this must report 0 allocs/op;
// the gap to BenchmarkAdaptiveRoute is the cost of materializing a fresh
// Path per decision.
func BenchmarkRouteInto(b *testing.B) {
	topo, err := topology.Build(topology.ThetaMiniConfig())
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel()
	f := New(k, topo, DefaultParams(), routing.DefaultConfig(), 1)
	rng := rand.New(rand.NewSource(3))
	eng := routing.NewEngine(topo, f, routing.DefaultConfig())
	nr := topo.NumRouters()
	buf := make([]topology.LinkID, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := topology.RouterID(rng.Intn(nr))
		dst := topology.RouterID(rng.Intn(nr))
		buf, _ = eng.RouteInto(buf[:0], routing.AD0, rng, src, dst, 0)
	}
}
