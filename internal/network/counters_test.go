package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func countersFixture(t testing.TB) *Counters {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	return NewCounters(topo)
}

func TestCountersZeroValue(t *testing.T) {
	c := countersFixture(t)
	agg := c.Aggregate(nil)
	if agg.TotalFlits() != 0 || agg.TotalStalls() != 0 {
		t.Fatal("fresh counters not zero")
	}
	if len(c.RouterRatios(nil)) != 0 {
		t.Fatal("zero-flit routers should produce no ratios")
	}
	if c.MeanORBLatency(0) != 0 {
		t.Fatal("ORB latency without samples should be 0")
	}
}

func TestCountersSnapshotIndependence(t *testing.T) {
	c := countersFixture(t)
	c.Flits[0][0] = 10
	c.Stalls[0][0] = 5
	snap := c.Snapshot()
	c.Flits[0][0] = 99
	c.Stalls[0][0] = 99
	if snap.Flits[0][0] != 10 || snap.Stalls[0][0] != 5 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestCountersSub(t *testing.T) {
	c := countersFixture(t)
	c.Flits[1][2] = 7
	c.ORBTimeSum[3] = 100 * sim.Microsecond
	c.ORBCount[3] = 4
	before := c.Snapshot()
	c.Flits[1][2] = 20
	c.Stalls[1][2] = 6
	c.ORBTimeSum[3] = 180 * sim.Microsecond
	c.ORBCount[3] = 6
	d := c.Sub(before)
	if d.Flits[1][2] != 13 || d.Stalls[1][2] != 6 {
		t.Fatalf("delta = %d/%g", d.Flits[1][2], d.Stalls[1][2])
	}
	if d.ORBCount[3] != 2 || d.MeanORBLatency(3) != 40*sim.Microsecond {
		t.Fatalf("ORB delta: count=%d mean=%v", d.ORBCount[3], d.MeanORBLatency(3))
	}
}

func TestAggregateByClassAndSubset(t *testing.T) {
	c := countersFixture(t)
	topo := c.Topo()
	// Put flits on a known rank-1 tile of router 0 and router 5.
	var r1tile int
	for tile := 0; tile < topo.TilesPerRouter(); tile++ {
		if topo.TileClassOf(tile) == topology.TileRank1 {
			r1tile = tile
			break
		}
	}
	c.Flits[0][r1tile] = 100
	c.Stalls[0][r1tile] = 50
	c.Flits[5][r1tile] = 40

	all := c.Aggregate(nil)
	if all.Flits[topology.TileRank1] != 140 {
		t.Fatalf("rank1 flits = %d", all.Flits[topology.TileRank1])
	}
	if got := all.Ratio(topology.TileRank1); got != 50.0/140 {
		t.Fatalf("ratio = %g", got)
	}
	if all.Ratio(topology.TileRank3) != 0 {
		t.Fatal("zero-flit class ratio should be 0")
	}

	sub := c.Aggregate([]topology.RouterID{0})
	if sub.Flits[topology.TileRank1] != 100 {
		t.Fatalf("subset flits = %d", sub.Flits[topology.TileRank1])
	}
}

func TestTileRatiosClassFilter(t *testing.T) {
	c := countersFixture(t)
	topo := c.Topo()
	for tile := 0; tile < topo.TilesPerRouter(); tile++ {
		c.Flits[2][tile] = 10
		c.Stalls[2][tile] = float64(tile)
	}
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		ratios := c.TileRatios(class)
		if len(ratios) == 0 {
			t.Fatalf("no ratios for class %v", class)
		}
	}
	// Total tile ratio samples must equal tiles per router (one router
	// has traffic).
	total := 0
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		total += len(c.TileRatios(class))
	}
	if total != topo.TilesPerRouter() {
		t.Fatalf("ratio samples = %d, want %d", total, topo.TilesPerRouter())
	}
}

// Property: Sub(snapshot) of a monotonically grown counter set is always
// non-negative and adds back up to the final totals.
func TestCountersDeltaProperty(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	f := func(incA, incB []uint8) bool {
		c := NewCounters(topo)
		apply := func(incs []uint8) {
			for i, v := range incs {
				r := i % len(c.Flits)
				tile := int(v) % len(c.Flits[r])
				c.Flits[r][tile] += uint64(v)
				c.Stalls[r][tile] += float64(v) / 2
			}
		}
		apply(incA)
		snap := c.Snapshot()
		apply(incB)
		d := c.Sub(snap)
		dAgg := d.Aggregate(nil)
		sAgg := snap.Aggregate(nil)
		cAgg := c.Aggregate(nil)
		return dAgg.TotalFlits()+sAgg.TotalFlits() == cAgg.TotalFlits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
