package network

// This file holds the fabric's hot-path memory discipline: the packet
// arena (a free list that recycles Packet values and their route slices at
// delivery) and the per-VC packet queue (a head-indexed ring that reuses
// its backing array instead of re-slicing it away). Together with the
// typed kernel events in fabric.go these make the steady-state per-packet
// path allocation-free; the AllocsPerRun gates in alloc_test.go pin that.

// PoolStats reports packet-arena activity for one fabric. Allocated counts
// packets issued from the arena cursor (fresh Packet values on a cold
// fabric, warm spares on a reused one), Recycled counts free-list reuse;
// in steady state Recycled dwarfs Allocated and the arena size equals the
// high-water mark of simultaneously live packets. A reused fabric reports
// the same stats as a fresh one running the same workload — Arena is the
// cursor position, not the backing array's historical high-water mark.
type PoolStats struct {
	Allocated uint64 // packets issued past the arena cursor
	Recycled  uint64 // packets served from the free list
	Arena     int    // packets issued this run (live + free)
	Free      int    // packets currently on the free list
}

// PoolStats returns the fabric's current packet-arena statistics.
func (f *Fabric) PoolStats() PoolStats {
	s := f.pool.stats
	s.Arena = f.pool.next
	s.Free = len(f.pool.free)
	return s
}

// packetPool is a per-fabric arena of Packets with a LIFO free list. LIFO
// keeps the hottest (cache-resident) packet at hand, and — unlike
// sync.Pool — is deterministic and survives GC, both of which the
// simulator requires. next is the warm-reuse cursor: slots below it are in
// circulation this run, slots at or above it are populated-but-unissued
// survivors of a previous run (see reset), handed out before the arena
// grows so a warm fabric replays a fresh fabric's pool behaviour exactly —
// Allocated counts cursor advances, not heap allocations, keeping
// PoolStats identical between the two.
type packetPool struct {
	arena []*Packet // every packet ever created; Packet.idx indexes this
	free  []int32   // arena slots available for reuse
	next  int       // arena slots issued this run; arena[next:] are warm spares
	stats PoolStats
}

// reset rewinds the pool for fabric reuse: every arena slot becomes a warm
// spare again and the stats start over. Message references are dropped so
// a finished run's transfers do not outlive it.
func (pl *packetPool) reset() {
	for _, p := range pl.arena {
		p.msg = nil
	}
	pl.free = pl.free[:0]
	pl.next = 0
	pl.stats = PoolStats{}
}

// get returns a reset packet. With recycle disabled (Params.NoRecycle) it
// always allocates, which is the reference behaviour the pool property
// tests compare against.
//
//simlint:hotpath
func (f *Fabric) allocPacket() *Packet {
	pool := &f.pool
	if n := len(pool.free); n > 0 && !f.params.NoRecycle {
		p := pool.arena[pool.free[n-1]]
		pool.free = pool.free[:n-1]
		pool.stats.Recycled++
		p.reset()
		return p
	}
	pool.stats.Allocated++
	if pool.next < len(pool.arena) {
		p := pool.arena[pool.next]
		pool.next++
		p.reset()
		return p
	}
	p := &Packet{idx: int32(len(pool.arena)), hop: -1}
	pool.arena = append(pool.arena, p)
	pool.next = len(pool.arena)
	return p
}

// releasePacket returns a delivered packet to the free list. The route
// slice keeps its backing array so the next occupant routes without
// allocating.
//
//simlint:hotpath
func (f *Fabric) releasePacket(p *Packet) {
	if f.params.NoRecycle {
		return
	}
	p.msg = nil // drop the Message reference so delivered transfers can be collected
	f.pool.free = append(f.pool.free, p.idx)
}

// reset clears a recycled packet to its zero state, keeping idx and the
// route slice's capacity.
//
//simlint:hotpath
func (p *Packet) reset() {
	p.src, p.dst = 0, 0
	p.bytes, p.flits = 0, 0
	p.route = p.route[:0]
	p.hop = -1
	p.routed, p.response, p.nonMin = false, false, false
	p.rspMode = 0
	p.sendTime, p.routedAt = 0, 0
	p.msg = nil
}

// packetOf resolves a typed-event payload back to its packet.
//
//simlint:hotpath
func (f *Fabric) packetOf(idx int64) *Packet { return f.pool.arena[idx] }

// pktQueue is one virtual channel's FIFO of queued packets. A plain
// `q = q[1:]` dequeue leaks the backing array's front capacity and forces
// a fresh allocation every few packets; this head-indexed form reuses the
// array, compacting only when the queue drains (the common case — servers
// mostly run near-empty) or when the dead prefix outgrows the live tail.
type pktQueue struct {
	buf  []*Packet
	head int
}

func (q *pktQueue) empty() bool    { return q.head == len(q.buf) }
func (q *pktQueue) len() int       { return len(q.buf) - q.head }
func (q *pktQueue) front() *Packet { return q.buf[q.head] }

//simlint:hotpath
func (q *pktQueue) push(p *Packet) {
	if q.head > 64 && q.head > len(q.buf)-q.head {
		// More dead slots than live packets: slide the tail down so the
		// backing array stops growing.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

//simlint:hotpath
func (q *pktQueue) pop() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil // no stale reference to a recycled packet
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// waitReg is one entry of a server's waitingOn set: we are registered in
// n.waiters as long as n's wake generation still matches gen. A wake flush
// bumps n.wakeGen, invalidating every registration pointing at n in O(1)
// instead of walking the waiters back-pointers (this replaces the former
// map[*server]struct{}, whose inserts and deletes allocated per blocking
// episode).
type waitReg struct {
	n   *server
	gen uint64
}

// registerWaiter records that s is waiting for space at n, deduplicated
// against live registrations. The scan is over s's own small set (bounded
// by the distinct next-hop servers of s's VC heads), not n's waiter list.
//
//simlint:hotpath
func (f *Fabric) registerWaiter(s, n *server) {
	for i := range s.waitingOn {
		r := &s.waitingOn[i]
		if r.n == n {
			if r.gen == n.wakeGen {
				return // still registered from an earlier block
			}
			r.gen = n.wakeGen
			n.waiters = append(n.waiters, s)
			return
		}
	}
	s.waitingOn = append(s.waitingOn, waitReg{n: n, gen: n.wakeGen})
	n.waiters = append(n.waiters, s)
}

// flushWaiters snapshots s's current waiters for a batched wake and
// re-arbitrates them in the single evWake that follows. Bumping wakeGen
// invalidates the snapshot's registrations, so a waiter that is still
// blocked when woken simply re-registers. Late registrations (after the
// snapshot, before the wake fires) land in the fresh s.waiters slice and
// wait for the next flush — exactly the semantics the per-waiter closure
// scheme had.
//
// The wake prefers the kernel's tail-call slot over a queued zero-delay
// event: when nothing else is pending at the current timestamp the
// continuation runs in exactly the queue position AfterEvent(0) would
// have used, but without a heap push/pop — wakes are the third-largest
// event class on the packet path. TryTailCall refuses whenever the
// ordering would differ, and the queued event remains the fallback.
//
//simlint:hotpath
func (f *Fabric) flushWaiters(s *server) {
	if len(s.waiters) == 0 {
		return
	}
	s.wakeGen++
	s.waiters, s.waking = s.waking[:0], s.waiters
	if !f.k.TryTailCall(f.hid, evWake, int64(s.idx), 0) {
		f.k.AfterEvent(0, f.hid, evWake, int64(s.idx), 0)
	}
}

// wakeWaiters runs the batched wake: one kernel event re-arbitrating every
// server in the snapshot, in registration order (the same order the old
// one-event-per-waiter scheme preserved through consecutive sequence
// numbers).
//
//simlint:hotpath
func (f *Fabric) wakeWaiters(s *server) {
	for i, w := range s.waking {
		s.waking[i] = nil
		f.tryStart(w)
	}
	s.waking = s.waking[:0]
}

// QueuedFlits returns the total flits currently buffered in the fabric
// (diagnostic; returns to zero once all traffic has drained). Each
// server's occTotal caches the sum of its per-VC occupancy, so this is one
// addition per server rather than a walk over every VC slice;
// TestQueuedFlitsMatchesWalk pins the equivalence. Overdue fused
// completions settle first so the totals match the split reference.
func (f *Fabric) QueuedFlits() int {
	f.settleAll()
	total := 0
	for _, s := range f.links {
		total += s.occTotal
	}
	for _, s := range f.inject {
		total += s.occTotal
	}
	for _, s := range f.eject {
		total += s.occTotal
	}
	return total
}

// queuedFlitsWalk recomputes QueuedFlits the slow way, walking every VC of
// every server. Test-only reference for the cached occTotal sums.
func (f *Fabric) queuedFlitsWalk() int {
	f.settleAll()
	total := 0
	walk := func(s *server) {
		for _, o := range s.occ {
			total += o
		}
	}
	for _, s := range f.links {
		walk(s)
	}
	for _, s := range f.inject {
		walk(s)
	}
	for _, s := range f.eject {
		walk(s)
	}
	return total
}
