package network

import (
	"math/rand"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// buildFusedPair constructs a FuseLinks fabric and a split-reference
// fabric over the same topology, params, and seed, on the configuration
// where the two models are provably the same physics:
//
//   - HopContention = 0: the only physical coarsening FuseLinks makes is
//     WHEN the hop-contention delay is priced (serialization start vs
//     end), so at hc=0 every fused event fires at exactly the time its
//     split counterparts would.
//
//   - Tie-free link timing: each link's latency and bandwidth get a
//     unique, physically negligible per-link perturbation so that link
//     completion and arrival timestamps are globally distinct. The
//     kernel breaks equal-timestamp ties by schedule order, and a fused
//     hop event is necessarily scheduled earlier (serialization start)
//     than the split model's arrival (serialization end) — so at an
//     exact picosecond collision the two models can legitimately resolve
//     a buffer-space race in different order. Distinct timestamps remove
//     ties, leaving the models observably identical; the production
//     config (rampant ties: every full packet is exactly one MTU) is
//     validated by the figure-tolerance tests in internal/experiments
//     instead.
func buildFusedPair(t testing.TB, groups int, seed int64, hc float64) (fused, ref *Fabric) {
	t.Helper()
	build := func(fuse bool) *Fabric {
		topo, err := topology.Build(topology.TestConfig(groups))
		if err != nil {
			t.Fatal(err)
		}
		for i := range topo.Links {
			topo.Links[i].Latency += sim.Time(i * 7)
			topo.Links[i].Bandwidth /= 1 + float64(i)*3e-4
		}
		// Decouple the inject and eject NIC flit clocks: with symmetric
		// rates, a delivery that simultaneously starts the next ejection
		// and a response injection finishes both at the same picosecond,
		// a structural timestamp tie at every busy NIC.
		topo.Cfg.EjectionBandwidth = topo.Cfg.InjectionBandwidth * 1.0009765625
		params := DefaultParams()
		params.HopContention = hc
		params.FuseLinks = fuse
		return New(sim.NewKernel(), topo, params, routing.DefaultConfig(), seed)
	}
	return build(true), build(false)
}

// driveTrafficStaggered issues the same traffic mix as driveTraffic but
// schedules each send at a distinct picosecond offset instead of all at
// t=0. Simultaneous sends serialize on identical NIC flit clocks and so
// tie constantly; staggering keeps the equivalence runs tie-free (which
// runFusedPair requires for its identity check to engage) without
// changing what is sent.
func driveTrafficStaggered(f *Fabric, rng *rand.Rand, msgs int) (msgList []*Message, totalBytes int) {
	n := f.Topology().NumNodes()
	msgList = make([]*Message, msgs)
	for i := 0; i < msgs; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		for src == dst {
			dst = topology.NodeID(rng.Intn(n))
		}
		bytes := 1 + rng.Intn(3*f.Params().PacketBytes)
		mode := routing.Mode(rng.Intn(4))
		totalBytes += bytes
		i := i
		f.Kernel().At(sim.Time(1+i*641), func() {
			msgList[i] = f.Send(src, dst, bytes, mode)
		})
	}
	return msgList, totalBytes
}

// runFusedPair drives identical traffic through a fused and a split
// fabric at HopContention=0. When neither run hit a kernel timestamp tie
// (the per-link perturbation makes this the overwhelmingly common case),
// it fails on ANY observable divergence: final virtual time, packet and
// route-class counts, per-class transit-time sums, per-message delivery
// times, every tile counter, and ORB samples. When a tie did occur —
// fuzzed seeds can still produce integer-picosecond birthday collisions —
// the two models can legitimately resolve a buffer-space race in
// different schedule order, so only the tie-robust conservation set is
// checked. Returns whether both runs were tie-free, so named-seed tests
// can assert the identity check was not vacuously skipped.
func runFusedPair(t *testing.T, seed int64, msgs int) (tieFree bool) {
	t.Helper()
	ff, fr := buildFusedPair(t, 3, seed, 0)

	mf, bytesF := driveTrafficStaggered(ff, rand.New(rand.NewSource(seed+1)), msgs)
	mr, bytesR := driveTrafficStaggered(fr, rand.New(rand.NewSource(seed+1)), msgs)
	if bytesF != bytesR {
		t.Fatalf("traffic generators diverged: %d vs %d bytes", bytesF, bytesR)
	}
	endF, endR := ff.Kernel().Run(), fr.Kernel().Run()

	// Conservation properties hold regardless of tie resolution.
	for i := range mf {
		if !mf[i].Done.Fired() || !mr[i].Done.Fired() {
			t.Fatalf("seed %d: message %d undelivered (fused=%v reference=%v)",
				seed, i, mf[i].Done.Fired(), mr[i].Done.Fired())
		}
	}
	if ff.PacketsDelivered < ff.PacketsSent {
		t.Fatalf("seed %d: fused delivered %d of %d sent", seed, ff.PacketsDelivered, ff.PacketsSent)
	}
	if q := ff.QueuedFlits(); q != 0 {
		t.Fatalf("seed %d: fused QueuedFlits=%d after drain", seed, q)
	}
	checkPoolInvariants(t, ff)

	// The property is vacuous if no hop actually fused: whenever any
	// packet traversed a network link (degenerate traffic may route
	// entirely NIC-to-NIC within one router, and NIC hops never fuse),
	// the fused run must execute strictly fewer kernel events.
	agg := ff.Counters().Aggregate(nil)
	netFlits := agg.Flits[topology.TileRank1] + agg.Flits[topology.TileRank2] + agg.Flits[topology.TileRank3]
	evF := ff.Kernel().Stats().EventsExecuted
	evR := fr.Kernel().Stats().EventsExecuted
	if netFlits > 0 && evF >= evR {
		t.Fatalf("seed %d: fused run executed %d events, reference %d; no hop fused",
			seed, evF, evR)
	}

	tiesF := ff.Kernel().Stats().TimestampTies
	tiesR := fr.Kernel().Stats().TimestampTies
	if tiesF != 0 || tiesR != 0 {
		// Same-timestamp heap events fired: schedule order (which the two
		// models necessarily differ on — a fused hop is scheduled at
		// serialization start, a split arrival at serialization end) may
		// have decided a contention race. Identity is not owed here.
		return false
	}

	if endF != endR {
		t.Fatalf("seed %d: final time %v (fused) vs %v (reference)", seed, endF, endR)
	}
	if ff.PacketsSent != fr.PacketsSent || ff.PacketsDelivered != fr.PacketsDelivered {
		t.Fatalf("seed %d: sent/delivered %d/%d vs %d/%d",
			seed, ff.PacketsSent, ff.PacketsDelivered, fr.PacketsSent, fr.PacketsDelivered)
	}
	if ff.MinimalTaken != fr.MinimalTaken || ff.NonMinimalTaken != fr.NonMinimalTaken {
		t.Fatalf("seed %d: route classes %d/%d vs %d/%d",
			seed, ff.MinimalTaken, ff.NonMinimalTaken, fr.MinimalTaken, fr.NonMinimalTaken)
	}
	if ff.MinimalTransit != fr.MinimalTransit || ff.NonMinimalTransit != fr.NonMinimalTransit ||
		ff.MinimalCount != fr.MinimalCount || ff.NonMinimalCount != fr.NonMinimalCount {
		t.Fatalf("seed %d: transit sums %v/%d %v/%d vs %v/%d %v/%d",
			seed, ff.MinimalTransit, ff.MinimalCount, ff.NonMinimalTransit, ff.NonMinimalCount,
			fr.MinimalTransit, fr.MinimalCount, fr.NonMinimalTransit, fr.NonMinimalCount)
	}
	for i := range mf {
		if mf[i].DeliveredAt != mr[i].DeliveredAt {
			t.Fatalf("seed %d: message %d delivered at %v (fused) vs %v (reference)",
				seed, i, mf[i].DeliveredAt, mr[i].DeliveredAt)
		}
	}
	cf, cr := ff.Counters(), fr.Counters()
	for r := range cf.Flits {
		for tl := range cf.Flits[r] {
			if cf.Flits[r][tl] != cr.Flits[r][tl] {
				t.Fatalf("seed %d: router %d tile %d flits %d vs %d",
					seed, r, tl, cf.Flits[r][tl], cr.Flits[r][tl])
			}
			if cf.Stalls[r][tl] != cr.Stalls[r][tl] {
				t.Fatalf("seed %d: router %d tile %d stalls %v vs %v",
					seed, r, tl, cf.Stalls[r][tl], cr.Stalls[r][tl])
			}
		}
	}
	for n := range cf.ORBCount {
		if cf.ORBCount[n] != cr.ORBCount[n] || cf.ORBTimeSum[n] != cr.ORBTimeSum[n] {
			t.Fatalf("seed %d: node %d ORB %d/%v vs %d/%v",
				seed, n, cf.ORBCount[n], cf.ORBTimeSum[n], cr.ORBCount[n], cr.ORBTimeSum[n])
		}
	}
	return true
}

// TestFusedMatchesReference is the fused-vs-split equivalence property
// over a spread of seeds, at the HopContention=0 point where the two
// models are provably the same physics. The named seeds must be tie-free
// so the byte-identity comparison actually runs.
func TestFusedMatchesReference(t *testing.T) {
	for _, seed := range []int64{5, 7, 17, 19} {
		if !runFusedPair(t, seed, 80) {
			t.Errorf("seed %d hit a timestamp tie; identity check skipped — pick a different named seed", seed)
		}
	}
}

// TestFusedSamplePointEquivalence steps a fused and a split fabric in
// lockstep and compares every externally sampled quantity mid-flight —
// tile flit totals and buffered-flit totals — at each step. This pins
// the settle contract: deferred fused completions must be invisible at
// any sampling instant, not just after drain (LDMS ticks and autoperf
// snapshots read counters while traffic is in flight).
func TestFusedSamplePointEquivalence(t *testing.T) {
	ff, fr := buildFusedPair(t, 3, 77, 0)
	driveTraffic(ff, rand.New(rand.NewSource(78)), 60)
	driveTraffic(fr, rand.New(rand.NewSource(78)), 60)

	flitSum := func(f *Fabric) uint64 {
		var total uint64
		c := f.Counters()
		for r := range c.Flits {
			for _, v := range c.Flits[r] {
				total += v
			}
		}
		return total
	}
	deadline := sim.Time(0)
	for ff.Kernel().Pending() > 0 || fr.Kernel().Pending() > 0 {
		deadline += 200 * sim.Nanosecond
		ff.Kernel().RunUntil(deadline)
		fr.Kernel().RunUntil(deadline)
		if gf, gr := flitSum(ff), flitSum(fr); gf != gr {
			t.Fatalf("at t=%v fused tile flits=%d reference=%d", deadline, gf, gr)
		}
		if qf, qr := ff.QueuedFlits(), fr.QueuedFlits(); qf != qr {
			t.Fatalf("at t=%v fused QueuedFlits=%d reference=%d", deadline, qf, qr)
		}
	}
}

// TestFusedContentionDrains runs the fused model with the full default
// physics (HopContention > 0, where fused and split legitimately differ
// by one serialization time of contention staleness) and checks the
// conservation properties that must hold regardless: every message
// delivers, counts balance, and the fabric drains.
func TestFusedContentionDrains(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FuseLinks = true
	f := New(sim.NewKernel(), topo, params, routing.DefaultConfig(), 9)
	msgs, _ := driveTraffic(f, rand.New(rand.NewSource(10)), 120)
	f.Kernel().Run()

	for i, m := range msgs {
		if !m.Done.Fired() {
			t.Fatalf("message %d never delivered under fused contention model", i)
		}
	}
	if f.PacketsDelivered != f.PacketsSent+(f.PacketsDelivered-f.PacketsSent) ||
		f.PacketsDelivered < f.PacketsSent {
		t.Fatalf("delivered %d < sent %d", f.PacketsDelivered, f.PacketsSent)
	}
	if q := f.QueuedFlits(); q != 0 {
		t.Fatalf("QueuedFlits=%d after drain, want 0", q)
	}
	checkPoolInvariants(t, f)
}

// FuzzFusedVsReference fuzzes the fused-vs-split equivalence over
// arbitrary seeds and traffic volumes, cross-checking delivered-packet
// counts and transit-time sums (among every other observable runFusedPair
// compares).
func FuzzFusedVsReference(f *testing.F) {
	f.Add(int64(3), uint8(20))
	f.Add(int64(999), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, msgs uint8) {
		runFusedPair(t, seed, 1+int(msgs)%100)
	})
}

// eventsPerPacket replays the BenchmarkPacketDelivery workload (random
// 4KB sends across a 4-group dragonfly, all injected at t=0) and returns
// kernel events executed per sent packet.
func eventsPerPacket(t *testing.T, fuse bool, packets int) float64 {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FuseLinks = fuse
	k := sim.NewKernel()
	f := New(k, topo, params, routing.DefaultConfig(), 1)
	rng := rand.New(rand.NewSource(2))
	n := topo.NumNodes()
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		f.Send(src, dst, 4096, routing.AD0)
	}
	k.Run()
	return float64(k.Stats().EventsExecuted) / float64(packets)
}

// TestEventsPerPacketCeiling is the regression gate on the event count
// itself: link fusion must keep the benchmark workload at or below 17.5
// events per packet, and the split reference must stay at its own
// pre-fusion ceiling. (BENCH_7.json records the measured values; this
// gate keeps both paths from silently regressing.)
func TestEventsPerPacketCeiling(t *testing.T) {
	const packets = 2000
	fused := eventsPerPacket(t, true, packets)
	ref := eventsPerPacket(t, false, packets)
	t.Logf("events/packet: fused %.2f (ceiling 17.5), reference %.2f (ceiling 21.0)", fused, ref)
	if fused > 17.5 {
		t.Errorf("fused events/packet = %.2f, ceiling 17.5", fused)
	}
	if ref > 21.0 {
		t.Errorf("reference events/packet = %.2f, ceiling 21.0", ref)
	}
}
