package network

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Counters holds the Aries-style per-router-tile hardware counters: flit
// counts and stall counts per tile, plus per-NIC ORB (outstanding request
// buffer) latency-tracking counters. These mirror the counters the paper
// reads via AutoPerf (local, per-application) and LDMS (global, periodic):
// r.AR_RTR_*_STALLED/FLITS and the two AR_NIC_*RSP_TRACK counters used for
// Fig. 14's packet-pair latencies.
//
// Sample-point contract: every external reader takes these through
// Fabric.Counters(), which settles any fused-hop completions that are
// overdue (Params.FuseLinks defers the sender-side flit count to the
// fused event, but backdates it on settle) — so at any sampling instant
// the tile counters read identically under the fused and split models.
type Counters struct {
	topo *topology.Topology //simlint:resetsafe immutable topology these counters describe

	// Flits[r][t] counts flits transmitted by tile t of router r.
	Flits [][]uint64
	// Stalls[r][t] accumulates stalled flit-cycles on tile t of router r:
	// time the tile had a flit ready but could not transmit, converted to
	// flit periods at the tile's line rate.
	Stalls [][]float64

	// ORBTimeSum[n] accumulates request->response round-trip time for
	// node n's NIC; ORBCount[n] counts tracked pairs. Their quotient is
	// the NIC's mean packet-pair latency, exactly as the paper computes
	// from AR_NIC_ORB_PRF_NET_RSP_TRACK2 / AR_NIC_NETMON_ORB_EVENT_CNTR.
	ORBTimeSum []sim.Time
	ORBCount   []uint64
}

// NewCounters allocates zeroed counters for topo.
func NewCounters(topo *topology.Topology) *Counters {
	nr := topo.NumRouters()
	tiles := topo.TilesPerRouter()
	c := &Counters{
		topo:       topo,
		Flits:      make([][]uint64, nr),
		Stalls:     make([][]float64, nr),
		ORBTimeSum: make([]sim.Time, topo.Cfg.Capacity()),
		ORBCount:   make([]uint64, topo.Cfg.Capacity()),
	}
	flits := make([]uint64, nr*tiles)
	stalls := make([]float64, nr*tiles)
	for r := 0; r < nr; r++ {
		c.Flits[r] = flits[r*tiles : (r+1)*tiles : (r+1)*tiles]
		c.Stalls[r] = stalls[r*tiles : (r+1)*tiles : (r+1)*tiles]
	}
	return c
}

// Topology returns the topology these counters describe.
func (c *Counters) Topo() *topology.Topology { return c.topo }

// Snapshot deep-copies the current counter state.
func (c *Counters) Snapshot() *Counters {
	s := NewCounters(c.topo)
	for r := range c.Flits {
		copy(s.Flits[r], c.Flits[r])
		copy(s.Stalls[r], c.Stalls[r])
	}
	copy(s.ORBTimeSum, c.ORBTimeSum)
	copy(s.ORBCount, c.ORBCount)
	return s
}

// Sub subtracts an earlier snapshot, returning the delta (c - earlier).
func (c *Counters) Sub(earlier *Counters) *Counters {
	d := NewCounters(c.topo)
	for r := range c.Flits {
		for t := range c.Flits[r] {
			d.Flits[r][t] = c.Flits[r][t] - earlier.Flits[r][t]
			d.Stalls[r][t] = c.Stalls[r][t] - earlier.Stalls[r][t]
		}
	}
	for n := range c.ORBTimeSum {
		d.ORBTimeSum[n] = c.ORBTimeSum[n] - earlier.ORBTimeSum[n]
		d.ORBCount[n] = c.ORBCount[n] - earlier.ORBCount[n]
	}
	return d
}

// ClassTotals aggregates flits and stalls per tile class across a set of
// routers (all routers when routers is nil).
type ClassTotals struct {
	Flits  [topology.NumTileClasses]uint64
	Stalls [topology.NumTileClasses]float64
}

// Ratio returns stalls-to-flits for one class (0 when no flits).
func (ct ClassTotals) Ratio(class topology.TileClass) float64 {
	if ct.Flits[class] == 0 {
		return 0
	}
	return ct.Stalls[class] / float64(ct.Flits[class])
}

// TotalFlits sums flits over all classes.
func (ct ClassTotals) TotalFlits() uint64 {
	var s uint64
	for _, v := range ct.Flits {
		s += v
	}
	return s
}

// TotalStalls sums stalls over all classes.
func (ct ClassTotals) TotalStalls() float64 {
	var s float64
	for _, v := range ct.Stalls {
		s += v
	}
	return s
}

// Aggregate computes ClassTotals over the given routers (nil = all).
func (c *Counters) Aggregate(routers []topology.RouterID) ClassTotals {
	var ct ClassTotals
	add := func(r int) {
		for t := range c.Flits[r] {
			class := c.topo.TileClassOf(t)
			ct.Flits[class] += c.Flits[r][t]
			ct.Stalls[class] += c.Stalls[r][t]
		}
	}
	if routers == nil {
		for r := range c.Flits {
			add(r)
		}
		return ct
	}
	for _, r := range routers {
		add(int(r))
	}
	return ct
}

// RouterRatios returns the per-router stalls-to-flits ratio over network
// tiles only (rank-1/2/3), the quantity plotted in the paper's Fig. 11.
func (c *Counters) RouterRatios(routers []topology.RouterID) []float64 {
	if routers == nil {
		routers = make([]topology.RouterID, len(c.Flits))
		for i := range routers {
			routers[i] = topology.RouterID(i)
		}
	}
	out := make([]float64, 0, len(routers))
	for _, r := range routers {
		var flits uint64
		var stalls float64
		for t := range c.Flits[r] {
			switch c.topo.TileClassOf(t) {
			case topology.TileRank1, topology.TileRank2, topology.TileRank3:
				flits += c.Flits[r][t]
				stalls += c.Stalls[r][t]
			}
		}
		if flits > 0 {
			out = append(out, stalls/float64(flits))
		}
	}
	return out
}

// TileRatios returns the per-tile stalls-to-flits ratio for every tile of
// the given class with nonzero flits, across all routers.
func (c *Counters) TileRatios(class topology.TileClass) []float64 {
	var out []float64
	for r := range c.Flits {
		for t := range c.Flits[r] {
			if c.topo.TileClassOf(t) != class {
				continue
			}
			if f := c.Flits[r][t]; f > 0 {
				out = append(out, c.Stalls[r][t]/float64(f))
			}
		}
	}
	return out
}

// MeanORBLatency returns node n's mean request->response latency, or 0
// when no pairs were tracked.
func (c *Counters) MeanORBLatency(n topology.NodeID) sim.Time {
	if c.ORBCount[n] == 0 {
		return 0
	}
	return c.ORBTimeSum[n] / sim.Time(c.ORBCount[n])
}
