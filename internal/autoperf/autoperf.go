// Package autoperf reproduces the AutoPerf instrumentation the paper uses:
// a lightweight PMPI-style profiler that reports, per application run, the
// number of calls / bytes / wallclock per MPI interface, plus the Aries
// router-tile counters of the routers the application's nodes are directly
// connected to (the "local view" described in Section III-B).
package autoperf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Collector snapshots counters at attach time; Finish produces a Report
// with the deltas, mirroring AutoPerf's begin/end capture around a run.
type Collector struct {
	fab     *network.Fabric
	routers []topology.RouterID
	start   *network.Counters
	startAt sim.Time
}

// Attach starts collection for an application occupying nodes.
func Attach(fab *network.Fabric, nodes []topology.NodeID) *Collector {
	return &Collector{
		fab:     fab,
		routers: placement.RoutersOf(fab.Topology(), nodes),
		start:   fab.Counters().Snapshot(),
		startAt: fab.Kernel().Now(),
	}
}

// Report is one application's AutoPerf output.
type Report struct {
	App     string
	Ranks   int
	Runtime sim.Time

	// Profile aggregates MPI usage across all ranks.
	Profile *mpi.Profile

	// LocalTiles aggregates the tile counters of the routers the
	// application is directly connected to, over the run window.
	LocalTiles network.ClassTotals

	// LocalTileRatios gives per-tile stalls-to-flits samples by class
	// over the same routers (the paper's Fig. 6 boxes).
	LocalTileRatios map[topology.TileClass][]float64
}

// Finish captures the end snapshot and builds the report. The world must
// have completed.
func (c *Collector) Finish(app string, w *mpi.World) *Report {
	delta := c.fab.Counters().Sub(c.start)
	r := &Report{
		App:             app,
		Ranks:           w.Size(),
		Runtime:         c.fab.Kernel().Now() - c.startAt,
		Profile:         w.AggregateProfile(),
		LocalTiles:      delta.Aggregate(c.routers),
		LocalTileRatios: make(map[topology.TileClass][]float64),
	}
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		r.LocalTileRatios[class] = localTileRatios(delta, c.routers, class)
	}
	return r
}

// localTileRatios computes per-tile stalls-to-flits over a router subset.
func localTileRatios(c *network.Counters, routers []topology.RouterID, class topology.TileClass) []float64 {
	topo := c.Topo()
	var out []float64
	for _, r := range routers {
		for t := 0; t < topo.TilesPerRouter(); t++ {
			if topo.TileClassOf(t) != class {
				continue
			}
			if f := c.Flits[r][t]; f > 0 {
				out = append(out, c.Stalls[r][t]/float64(f))
			}
		}
	}
	return out
}

// MPIFraction returns the share of total runtime spent in MPI, summed over
// ranks (the paper's "% of MPI in total time" column).
func (r *Report) MPIFraction() float64 {
	total := r.Profile.TotalTime()
	if total == 0 {
		return 0
	}
	return float64(r.Profile.MPITime()) / float64(total)
}

// String renders the report in AutoPerf's tabular spirit.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AutoPerf report: %s ranks=%d runtime=%v mpi=%.0f%%\n",
		r.App, r.Ranks, r.Runtime, 100*r.MPIFraction())
	names := make([]string, 0, len(r.Profile.ByCall))
	for name := range r.Profile.ByCall {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return r.Profile.ByCall[names[i]].Time > r.Profile.ByCall[names[j]].Time
	})
	for _, name := range names {
		s := r.Profile.ByCall[name]
		fmt.Fprintf(&b, "  %-16s calls=%-8d avgBytes=%-10.0f time=%v\n",
			name, s.Calls, s.AvgBytes(), s.Time)
	}
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		fmt.Fprintf(&b, "  tiles[%-8s] flits=%-12d stalls=%-14.0f ratio=%.3f\n",
			class, r.LocalTiles.Flits[class], r.LocalTiles.Stalls[class],
			r.LocalTiles.Ratio(class))
	}
	return b.String()
}
