package autoperf

// Streaming-reduction digest: the fixed-size residue of a Report that
// campaign pipelines keep after the full Report (whose LocalTileRatios
// slices scale with router count) has been dropped. Built on the worker
// immediately after a run completes; everything the figure/table
// renderers need per-sample lives here, and anything that needs the
// per-tile ratio distributions (Fig. 6/11) folds them into stats.Agg
// accumulators while the Report is still in hand.

import (
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Reduced is the compact per-run digest. All time fields are integer
// sim.Time, so statistics derived from them are exact — no floating
// point enters until a consumer converts to seconds.
type Reduced struct {
	App     string
	Ranks   int
	Runtime sim.Time

	// MPITime and ComputeTime are summed across ranks (the Profile's
	// MPITime() and ComputeTime); their sum is the profile's TotalTime.
	MPITime     sim.Time
	ComputeTime sim.Time

	// CallTime holds per-MPI-call wallclock (the Fig. 5/8 breakdowns).
	CallTime map[string]sim.Time

	// LocalTiles carries the class-aggregated tile counters; the
	// per-tile ratio samples are deliberately absent (they are O(routers)
	// per run and are folded into campaign-level aggregates instead).
	LocalTiles network.ClassTotals
}

// Reduce builds the digest from a full report.
func (r *Report) Reduce() *Reduced {
	d := &Reduced{
		App:         r.App,
		Ranks:       r.Ranks,
		Runtime:     r.Runtime,
		MPITime:     r.Profile.MPITime(),
		ComputeTime: r.Profile.ComputeTime,
		CallTime:    make(map[string]sim.Time, len(r.Profile.ByCall)),
		LocalTiles:  r.LocalTiles,
	}
	for name, s := range r.Profile.ByCall { //simlint:allow detflow map-to-map copy; the result is order-insensitive
		d.CallTime[name] = s.Time
	}
	return d
}

// MPIFraction mirrors Report.MPIFraction from the digested fields.
func (d *Reduced) MPIFraction() float64 {
	total := d.MPITime + d.ComputeTime
	if total == 0 {
		return 0
	}
	return float64(d.MPITime) / float64(total)
}

// MemBytes estimates the digest's retained footprint (struct, string,
// and map contents) for the service's retained-digest-bytes gauge. It is
// an accounting estimate, not a precise heap measurement.
func (d *Reduced) MemBytes() int {
	if d == nil {
		return 0
	}
	const structBase = 64 + 16*int(topology.NumTileClasses)
	b := structBase + len(d.App)
	for name := range d.CallTime { //simlint:allow detflow order-insensitive size sum
		// map entry: key header+bytes, value, bucket overhead
		b += 16 + len(name) + 8 + 16
	}
	return b
}
