package autoperf

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func runInstrumented(t *testing.T, n int) *Report {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	fab := network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), 1)
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	coll := Attach(fab, nodes)
	w := mpi.NewWorld(fab, nodes, mpi.DefaultEnv())
	w.Run(apps.MILC{}.Main(apps.Config{Iterations: 2, Scale: 0.2, Seed: 2}))
	k.Run()
	if !w.Done.Fired() {
		t.Fatal("app did not finish")
	}
	return coll.Finish("MILC", w)
}

func TestReportBasics(t *testing.T) {
	r := runInstrumented(t, 8)
	if r.App != "MILC" || r.Ranks != 8 {
		t.Fatalf("header: %+v", r)
	}
	if r.Runtime <= 0 {
		t.Fatal("runtime")
	}
	if r.Profile.ByCall["MPI_Allreduce"] == nil {
		t.Fatal("no allreduce stats")
	}
	f := r.MPIFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("MPI fraction = %g", f)
	}
}

func TestReportLocalTiles(t *testing.T) {
	r := runInstrumented(t, 8)
	// The app's traffic must appear on its local processor tiles.
	if r.LocalTiles.Flits[topology.TileProcReq] == 0 {
		t.Fatal("no local proc flits")
	}
	if r.LocalTiles.TotalFlits() == 0 {
		t.Fatal("no local flits at all")
	}
	if len(r.LocalTileRatios[topology.TileRank1]) == 0 {
		t.Fatal("no rank-1 tile ratio samples")
	}
}

func TestReportDeltaSemantics(t *testing.T) {
	// Attaching after earlier traffic must exclude it.
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	fab := network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), 1)
	fab.Send(0, 10, 1<<20, routing.AD0)
	k.Run()
	preFlits := fab.Counters().Aggregate(nil).TotalFlits()
	if preFlits == 0 {
		t.Fatal("warmup produced no flits")
	}
	nodes := []topology.NodeID{0, 1}
	coll := Attach(fab, nodes)
	w := mpi.NewWorld(fab, nodes, mpi.DefaultEnv())
	w.Run(func(r *mpi.Rank) { r.Allreduce(64) })
	k.Run()
	rep := coll.Finish("tiny", w)
	if rep.LocalTiles.TotalFlits() >= preFlits {
		t.Fatalf("report includes pre-attach traffic: %d >= %d",
			rep.LocalTiles.TotalFlits(), preFlits)
	}
}

func TestReportString(t *testing.T) {
	r := runInstrumented(t, 4)
	s := r.String()
	for _, want := range []string{"MILC", "MPI_Allreduce", "Rank1", "Proc_req"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}
}
