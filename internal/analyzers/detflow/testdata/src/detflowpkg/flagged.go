package detflowpkg

import (
	"fmt"
	"io"
	"maps"
)

// Render is a structural sink root: it has an io.Writer parameter.
func Render(w io.Writer, counts map[string]int) {
	for name, n := range counts { // want "map iteration order can reach rendered output"
		fmt.Fprintf(w, "%s %d\n", name, n)
	}
	writeRows(w, counts)
}

// writeRows is reachable from Render; its iteration is flagged even
// though it takes the writer indirectly.
func writeRows(w io.Writer, counts map[string]int) {
	for name := range counts { // want "map iteration order can reach rendered output"
		io.WriteString(w, name)
	}
}

// unsortedKeys reads map keys without sorting, two calls below the sink.
func unsortedKeys(counts map[string]int) []string {
	var names []string
	for name := range maps.Keys(counts) { // want "unsorted map-key read can reach rendered output"
		names = append(names, name)
	}
	return names
}

// RenderKeyed is another sink that reaches unsortedKeys.
func RenderKeyed(w io.Writer, counts map[string]int) {
	for _, name := range unsortedKeys(counts) {
		io.WriteString(w, name)
	}
}
