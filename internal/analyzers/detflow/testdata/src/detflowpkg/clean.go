package detflowpkg

import (
	"io"
	"maps"
	"slices"
	"sort"
)

// No want comments in this file: every construct here must stay silent.

// sortedRender collects keys with the canonical idiom — the range body
// only appends the key, and the slice is sorted before use — so no
// annotation is needed.
func sortedRender(w io.Writer, counts map[string]int) {
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		io.WriteString(w, name)
	}
}

// sortedKeysRender uses the slices.Sorted(maps.Keys(...)) form.
func sortedKeysRender(w io.Writer, counts map[string]int) {
	for _, name := range slices.Sorted(maps.Keys(counts)) {
		io.WriteString(w, name)
	}
}

// allowedTotal is order-insensitive and says so.
func allowedTotal(w io.Writer, counts map[string]int) {
	total := 0
	for _, n := range counts { //simlint:allow detflow order-insensitive sum
		total += n
	}
	if total > 0 {
		io.WriteString(w, "nonzero\n")
	}
}

// offline never reaches a sink: map iteration here is invisible to
// rendered output, so detflow stays silent (detrand's scope, not ours).
func offline(counts map[string]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}
