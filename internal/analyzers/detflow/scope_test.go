package detflow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/detflow"
	"repro/internal/analyzers/detrand"
)

// policedByDetflow lists the module packages that are reachable from
// output sinks but deliberately NOT in detrand.Scope: rendering and
// aggregation layers where detflow's sink-reachability is the right
// (and sufficient) determinism gate. Every entry carries its
// justification; a stale entry (no longer reachable) fails the test so
// the list cannot rot.
var policedByDetflow = map[string]string{
	"internal/autoperf":    "digest/report layer feeding figure and service renderers",
	"internal/experiments": "campaign runner: builds and writes figures and tables",
	"internal/ldms":        "sampler CSV export writes rendered rows",
	"internal/parallel":    "worker runner: merge callbacks execute under renderers",
	"internal/placement":   "rank-placement policies execute under campaign renderers",
	"internal/service":     "HTTP handlers and /metrics render response bytes",
	"internal/stats":       "aggregators are folded directly into rendered tables",
	"internal/topology":    "topology names appear in rendered artifact headers",
	"internal/viz":         "figure/table renderers are sink roots themselves (ExtraSinks)",
}

// TestScopeDrift ties detrand's hand-maintained Scope to detflow's
// computed sink-reachability over the real module. The invariant:
// every package holding a function statically reachable from an output
// sink is policed by exactly one of the two analyzers — detrand (the
// simulation-state scope) or detflow (the justified rendering layers
// above). A new package showing up here means a conscious choice:
// extend detrand.Scope, or document why detflow's reachability rules
// suffice.
func TestScopeDrift(t *testing.T) {
	moduleDir, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	roots, err := modulePackages(moduleDir, "repro")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) < 10 {
		t.Fatalf("found only %d module packages under %s; walk is broken", len(roots), moduleDir)
	}
	m, err := analysis.LoadModule(moduleDir, "repro", roots)
	if err != nil {
		t.Fatal(err)
	}

	// ExtraSinks entries must resolve to real functions, or a rename
	// silently un-polices a renderer.
	resolved := map[string]bool{}
	for _, fn := range detflow.SinkRoots(m) {
		resolved[fn.Name()] = true
	}
	for _, entry := range detflow.ExtraSinks {
		name := entry[strings.LastIndex(entry, ".")+1:]
		if !resolved[name] {
			t.Errorf("ExtraSinks entry %q matched no function in the module (renamed or deleted?)", entry)
		}
	}

	reachable := detflow.ReachablePackages(m)
	if len(reachable) == 0 {
		t.Fatal("no sink-reachable packages: sink detection is broken")
	}
	seen := map[string]bool{}
	for _, pkg := range reachable {
		seen[pkg] = true
		if detrand.InScope("repro/" + pkg) {
			continue // detrand polices simulation state
		}
		if _, ok := policedByDetflow[pkg]; ok {
			continue // justified rendering layer, policed by detflow
		}
		t.Errorf("package %q is reachable from output sinks but policed by neither analyzer:\n"+
			"  add it to detrand.Scope (simulation state) or to policedByDetflow with a justification",
			pkg)
	}
	for pkg := range policedByDetflow {
		if !seen[pkg] {
			t.Errorf("policedByDetflow entry %q is stale: no longer reachable from any output sink", pkg)
		}
	}

	// Renames/deletions in detrand's scope must not rot silently either:
	// every scope entry (bar the concurrency exemption) names a package
	// that still exists in the module.
	for _, scoped := range detrand.Scope {
		if m.Package("repro/"+scoped) == nil {
			t.Errorf("detrand.Scope entry %q names a package that no longer exists", scoped)
		}
	}
}

// modulePackages walks the module tree and returns every package import
// path holding non-test Go files, mirroring cmd/simlint's expansion.
func modulePackages(moduleDir, modulePath string) ([]string, error) {
	var roots []string
	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir &&
			(name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			rel, err := filepath.Rel(moduleDir, path)
			if err != nil {
				return err
			}
			if rel == "." {
				roots = append(roots, modulePath)
			} else {
				roots = append(roots, modulePath+"/"+filepath.ToSlash(rel))
			}
			break
		}
		return nil
	})
	return roots, err
}
