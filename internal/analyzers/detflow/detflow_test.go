package detflow_test

import (
	"testing"

	"repro/internal/analyzers/atest"
	"repro/internal/analyzers/detflow"
)

func TestDetflow(t *testing.T) {
	atest.Run(t, "testdata", "detflowpkg", detflow.Analyzer)
}
