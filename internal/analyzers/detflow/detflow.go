// Package detflow implements the simlint output-order taint analyzer.
//
// The service's headline contract is byte-identical rendered artifacts
// — figure and table text, HTTP response bodies, /metrics exposition —
// for a given input, across worker counts, pool warmth, and process
// restarts. Map iteration order is the classic way that contract rots:
// a map-range three calls below a table writer reorders rows per run,
// and no per-package lint scope catches it, because the iteration and
// the writer live in different packages.
//
// detrand polices map iteration inside the hardcoded simulation-state
// scope (detrand.Scope). detflow replaces that hardcoding for the
// OUTPUT side with reachability computed from the module call graph:
//
//  1. Sink roots are the functions that render output — structurally,
//     any module function with an io.Writer, http.ResponseWriter,
//     *bytes.Buffer, or *strings.Builder parameter, plus the explicit
//     value-returning renderers in ExtraSinks.
//  2. Every function statically reachable from a sink root can execute
//     during rendering; a nondeterministic iteration there can reach
//     output bytes.
//  3. In each reachable function (outside detrand's scope, which is
//     already policed), flag: ranging over a map, and unsorted
//     maps.Keys / maps.Values / maps.All reads.
//
// The sorted-keys idiom stays silent without annotation: a range whose
// body only collects keys into a slice that the function later sorts,
// and maps.Keys/Values/All wrapped directly in slices.Sorted*. Anything
// else order-insensitive is suppressed site by site with
// //simlint:allow detflow <reason>.
//
// Soundness caveat: reachability follows static edges only — dynamic
// dispatch through interfaces or func values contributes nothing, so a
// renderer invoked only through an interface needs its own writer-ish
// parameter (it then roots its own reachability) or an ExtraSinks
// entry.
package detflow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/detrand"
)

// Analyzer is the detflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "map iteration order must not reach rendered output: flag map ranges " +
		"and unsorted map-key reads in functions reachable from output sinks",
	RunModule: runModule,
}

// WriterTypes are the parameter types that make a function a sink root:
// storage that rendered bytes flow into.
var WriterTypes = map[string]bool{
	"io.Writer":               true,
	"net/http.ResponseWriter": true,
	"*bytes.Buffer":           true,
	"*strings.Builder":        true,
}

// ExtraSinks names value-returning renderers the structural rule cannot
// see (they build output without taking a writer). Entries are
// module-relative: "pkg/path.Func" for functions, "pkg/path.Recv.Func"
// for methods.
var ExtraSinks = []string{
	"internal/service.buildResponse",
	"internal/service.marshalResponse",
	"internal/service.metrics.render",
	"internal/service.errorBody",
	// viz renders into local strings.Builders and returns the text, so
	// the structural writer-parameter rule never sees it.
	"internal/viz.Sparkline",
	"internal/viz.HeatStrip",
	"internal/viz.GroupHeatmap",
	"internal/viz.Histogram",
}

// SinkRoots returns the module's output sink roots, sorted by position
// for deterministic traversal and witness attribution.
func SinkRoots(m *analysis.Module) []*types.Func {
	var roots []*types.Func
	for fn, fd := range m.Graph.Decls {
		if fd.Body == nil {
			continue
		}
		if isStructuralSink(fn) || isExtraSink(m, fn) {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	return roots
}

// isStructuralSink reports whether fn has a writer-ish parameter.
func isStructuralSink(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if WriterTypes[params.At(i).Type().String()] {
			return true
		}
	}
	return false
}

// isExtraSink matches fn against ExtraSinks by module-relative name.
func isExtraSink(m *analysis.Module, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	rel := moduleRel(m, fn.Pkg().Path())
	name := rel + "." + fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := receiverName(sig.Recv().Type()); named != "" {
			name = rel + "." + named + "." + fn.Name()
		}
	}
	for _, s := range ExtraSinks {
		if s == name {
			return true
		}
	}
	return false
}

func receiverName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func moduleRel(m *analysis.Module, pkgPath string) string {
	if m.Loader.ModulePath != "" {
		if rest, ok := strings.CutPrefix(pkgPath, m.Loader.ModulePath+"/"); ok {
			return rest
		}
	}
	return pkgPath
}

// Reach computes every function statically reachable from the module's
// sink roots, with the (position-first) witness root that reached it.
func Reach(m *analysis.Module) map[*types.Func]*types.Func {
	witness := map[*types.Func]*types.Func{}
	for _, root := range SinkRoots(m) {
		if _, seen := witness[root]; seen {
			continue
		}
		stack := []*types.Func{root}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, seen := witness[fn]; seen {
				continue
			}
			witness[fn] = root
			for _, site := range m.Graph.Sites[fn] {
				if site.Callee == nil {
					continue
				}
				if _, seen := witness[site.Callee]; !seen && m.Graph.Decls[site.Callee] != nil {
					stack = append(stack, site.Callee)
				}
			}
		}
	}
	return witness
}

// ReachablePackages returns the sorted module-relative paths of every
// package holding a sink-reachable function — the computed counterpart
// of detrand's hand-maintained Scope, which the scope-drift test keeps
// consistent.
func ReachablePackages(m *analysis.Module) []string {
	seen := map[string]bool{}
	for fn := range Reach(m) {
		if fn.Pkg() != nil {
			seen[moduleRel(m, fn.Pkg().Path())] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func runModule(pass *analysis.ModulePass) error {
	m := pass.Module
	for fn, root := range Reach(m) {
		if fn.Pkg() != nil && detrand.InScope(fn.Pkg().Path()) {
			continue // detrand already polices map iteration here
		}
		fd := m.Graph.Decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		pkg := m.Graph.PkgOf[fn]
		if pkg == nil {
			continue
		}
		checkFunc(pass, pkg, fd, root)
	}
	return nil
}

// checkFunc applies the two iteration-order rules to one reachable
// function.
func checkFunc(pass *analysis.ModulePass, pkg *analysis.Package, fd *ast.FuncDecl, root *types.Func) {
	info := pkg.Info
	analysis.WithParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			t := info.Types[x.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedKeysIdiom(info, x, fd) {
				return true
			}
			pass.Reportf(x.Pos(),
				"map iteration order can reach rendered output (reachable from %s); iterate sorted keys or annotate an order-insensitive reduction",
				root.Name())
		case *ast.CallExpr:
			if !isMapsOrderRead(info, x) {
				return true
			}
			if wrappedInSortedCollect(info, stack) {
				return true
			}
			pass.Reportf(x.Pos(),
				"unsorted map-key read can reach rendered output (reachable from %s); wrap in slices.Sorted or annotate an order-insensitive use",
				root.Name())
		}
		return true
	})
}

// sortedKeysIdiom recognizes the canonical deterministic pattern: the
// range body does nothing but append the key to a slice, and the
// function later passes that slice to a sort call — order randomness
// dies in the sort.
func sortedKeysIdiom(info *types.Info, rng *ast.RangeStmt, fd *ast.FuncDecl) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs := analysis.RootIdent(assign.Lhs[0])
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || lhs == nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) != 2 {
		return false
	}
	dst := analysis.RootIdent(call.Args[0])
	src, okSrc := ast.Unparen(call.Args[1]).(*ast.Ident)
	if dst == nil || !okSrc {
		return false
	}
	keyObj := analysis.ObjectOf(info, key)
	if keyObj == nil || analysis.ObjectOf(info, src) != keyObj {
		return false
	}
	slice := analysis.ObjectOf(info, lhs)
	if slice == nil || analysis.ObjectOf(info, dst) != slice {
		return false
	}
	// The collected slice must be sorted somewhere in this function.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		if !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if root := analysis.RootIdent(arg); root != nil && analysis.ObjectOf(info, root) == slice {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// isSortCall matches package-level sort.* and slices.Sort* calls.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// isMapsOrderRead matches maps.Keys / maps.Values / maps.All, whose
// iteration order is randomized like a direct range.
func isMapsOrderRead(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return false
	}
	switch fn.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// wrappedInSortedCollect reports whether the call's immediate consumer
// is slices.Sorted / slices.SortedFunc / slices.SortedStableFunc.
func wrappedInSortedCollect(info *types.Info, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	outer, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(outer.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "slices" &&
		strings.HasPrefix(fn.Name(), "Sorted")
}
