// Package hotpath implements the simlint hot-path allocation analyzer.
//
// The steady-state packet path is pinned at zero allocations per event,
// per hop, and per routing decision by AllocsPerRun gates — but those
// tests only catch a regression after it lands, and only through the
// specific traffic they drive. Functions annotated
//
//	//simlint:hotpath
//
// (a standalone line in the function's doc comment) are additionally
// held to a mechanical discipline that keeps the allocator out
// structurally:
//
//   - no escaping closures: a func literal is allowed only when called
//     immediately, or bound to a local variable that is only ever
//     called (the non-escaping pattern the compiler stack-allocates);
//   - append only onto parameter- or receiver-rooted slices (arenas,
//     slabs, and caller-provided buffers — storage whose capacity was
//     provisioned up front), never onto fresh locals or globals;
//   - no boxing: a concrete value must not convert to an interface
//     type in a call argument, assignment, or return;
//   - no fmt or log calls — formatting allocates; cold-path panics
//     belong in un-annotated helper functions.
//
// Findings are suppressed line by line with //simlint:allow hotpath
// <reason> when a construct is deliberate and proven cold.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyzers/analysis"
)

// Analyzer is the hotpath pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //simlint:hotpath must avoid escaping closures, " +
		"appends to non-parameter slices, interface boxing, and fmt/log calls",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// check applies the hot-path rules to one annotated function.
func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	rooted := analysis.ParamRooted(pass.TypesInfo, fd)
	callOnly := localCallOnlyClosures(pass, fd.Body)

	analysis.WithParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !closureAllowed(x, stack, callOnly) {
				pass.Reportf(x.Pos(),
					"closure may escape (allocates its context); hot paths use typed events or local call-only literals")
			}
		case *ast.CallExpr:
			checkCall(pass, x, rooted)
		case *ast.AssignStmt:
			checkAssign(pass, x)
		case *ast.ValueSpec:
			checkValueSpec(pass, x)
		case *ast.ReturnStmt:
			// A return belongs to its nearest enclosing function: inside
			// a nested literal it is checked against the literal's own
			// results, not the annotated function's.
			results := fd.Type.Results
			for i := len(stack) - 1; i >= 0; i-- {
				if lit, ok := stack[i].(*ast.FuncLit); ok {
					results = lit.Type.Results
					break
				}
			}
			checkReturn(pass, x, results)
		}
		return true
	})
}

// localCallOnlyClosures finds func literals bound to a local variable
// whose every other use is a direct call — the pattern the compiler
// keeps off the heap.
func localCallOnlyClosures(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	// Bindings: ident object -> literal.
	bound := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lit, ok := assign.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := analysis.ObjectOf(pass.TypesInfo, id); obj != nil {
				bound[obj] = lit
			}
		}
		return true
	})
	if len(bound) == 0 {
		return nil
	}
	escaped := map[types.Object]bool{}
	analysis.WithParents(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isBound := bound[obj]; !isBound {
			return true
		}
		// A use is safe only as the Fun of a call.
		if len(stack) > 0 {
			if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == id {
				return true
			}
		}
		escaped[obj] = true
		return true
	})
	ok := map[*ast.FuncLit]bool{}
	for obj, lit := range bound {
		if !escaped[obj] {
			ok[lit] = true
		}
	}
	return ok
}

// closureAllowed reports whether a func literal is in one of the two
// non-escaping positions.
func closureAllowed(lit *ast.FuncLit, stack []ast.Node, callOnly map[*ast.FuncLit]bool) bool {
	if callOnly[lit] {
		return true
	}
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		return p.Fun == lit // immediately invoked
	case *ast.ParenExpr:
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
				return call.Fun == p
			}
		}
	}
	return false
}

// checkCall flags fmt/log calls, appends to non-rooted slices, and
// concrete->interface argument boxing.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, rooted map[types.Object]bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[base].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "log", "log/slog":
					pass.Reportf(call.Pos(),
						"%s.%s call on a hot path: formatting allocates; move it to a cold helper", pn.Imported().Name(), sel.Sel.Name)
					return
				}
			}
		}
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := analysis.ObjectOf(pass.TypesInfo, id).(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				checkAppend(pass, call, rooted)
			}
			return
		}
	}

	// Conversions: T(x) with interface T.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && isConcrete(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion boxes concrete value into interface %s", tv.Type.String())
		}
		return
	}

	// Ordinary calls: compare argument types against parameter types.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				if i == params.Len()-1 {
					pt = params.At(params.Len() - 1).Type()
				}
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if isConcrete(pass, arg) {
			pass.Reportf(arg.Pos(),
				"concrete value boxed into interface parameter %s; boxing allocates on the hot path", pt.String())
		}
	}
}

// checkAppend enforces the parameter-rooted-slice rule.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, rooted map[types.Object]bool) {
	root := analysis.RootIdent(call.Args[0])
	if root == nil {
		pass.Reportf(call.Pos(), "append onto a non-parameter slice; hot-path appends must target preallocated parameter- or receiver-rooted storage")
		return
	}
	obj := analysis.ObjectOf(pass.TypesInfo, root)
	if obj == nil || !rooted[obj] {
		pass.Reportf(call.Pos(),
			"append onto %s, which is not parameter- or receiver-rooted; hot-path appends must target preallocated storage", root.Name)
	}
}

// checkAssign flags concrete->interface boxing in plain assignments.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		lt := pass.TypesInfo.Types[lhs].Type
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if isConcrete(pass, assign.Rhs[i]) {
			pass.Reportf(assign.Rhs[i].Pos(), "concrete value boxed into interface %s on assignment", lt.String())
		}
	}
}

// checkValueSpec flags var x I = concrete declarations.
func checkValueSpec(pass *analysis.Pass, spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	t := pass.TypesInfo.Types[spec.Type].Type
	if t == nil || !types.IsInterface(t) {
		return
	}
	for _, v := range spec.Values {
		if isConcrete(pass, v) {
			pass.Reportf(v.Pos(), "concrete value boxed into interface %s in declaration", t.String())
		}
	}
}

// checkReturn flags boxing at return sites of interface-returning
// signatures.
func checkReturn(pass *analysis.Pass, ret *ast.ReturnStmt, results *ast.FieldList) {
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		t := pass.TypesInfo.Types[f.Type].Type
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // single call expanding to multiple results
	}
	for i, r := range ret.Results {
		if resultTypes[i] != nil && types.IsInterface(resultTypes[i]) && isConcrete(pass, r) {
			pass.Reportf(r.Pos(), "concrete value boxed into interface return %s", resultTypes[i].String())
		}
	}
}

// isConcrete reports whether expr has a concrete (non-interface,
// non-nil) type.
func isConcrete(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}
