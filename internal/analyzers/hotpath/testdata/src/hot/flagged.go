package hot

import "fmt"

var keep func() int

func eat(v any) { _ = v }

func fresh() []int { return nil }

// bad commits every construct the analyzer forbids, one per line.
//
//simlint:hotpath
func bad(k int) any {
	local := []int{}
	local = append(local, k)      // want "append onto local, which is not parameter- or receiver-rooted"
	_ = append(fresh(), k)        // want "append onto a non-parameter slice"
	fmt.Println(k)                // want "fmt.Println call on a hot path"
	cb := func() int { return k } // want "closure may escape"
	keep = cb                     // the non-call use that makes the literal above escape
	eat(k)                        // want "concrete value boxed into interface parameter"
	var boxed any = k             // want "concrete value boxed into interface"
	_ = boxed
	_ = any(k) // want "conversion boxes concrete value into interface"
	return k   // want "concrete value boxed into interface return"
}

// cold is the un-annotated escape valve: the same constructs are fine
// off the hot path (no want comments).
func cold(k int) any {
	fmt.Println(k)
	local := []int{}
	local = append(local, k)
	return local
}
