package hot

// pool's push exercises every pattern the analyzer allows; the fixture
// fails if any draws a diagnostic.
type pool struct {
	arena []int
	free  []int
}

//simlint:hotpath
func (p *pool) push(vals []int, v int) []int {
	p.arena = append(p.arena, v) // receiver-rooted
	vals = append(vals, v)       // parameter-rooted
	fl := &p.free
	*fl = append(*fl, v)   // rooted through a local alias
	buf := grow(p.free, v) // append-style call: result stays rooted
	buf = append(buf, v)
	p.free = buf
	func() { v++ }() // immediately invoked literal
	add := func(d int) { v += d }
	add(1) // call-only local literal (the routing engine's consider pattern)
	add(2)
	return vals
}

func grow(buf []int, v int) []int { return append(buf, v) }
