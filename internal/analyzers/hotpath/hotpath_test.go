package hotpath_test

import (
	"testing"

	"repro/internal/analyzers/atest"
	"repro/internal/analyzers/hotpath"
)

// TestHotpath runs the analyzer over one fixture package holding an
// annotated function committing every forbidden construct (flagged.go)
// and an annotated function using every allowed pattern (clean.go) —
// including the append-style buffer pipeline and call-only closures the
// routing engine relies on.
func TestHotpath(t *testing.T) {
	atest.Run(t, "testdata", "hot", hotpath.Analyzer)
}
