// Package atest is the fixture harness for the simlint analyzers, an
// analysistest look-alike over internal/analyzers/analysis. Fixture
// packages live in testdata/src/<importpath>/ and mark expected findings
// with trailing comments:
//
//	bad() // want "regexp matching the diagnostic"
//
// Multiple expectations on one line stack as further quoted regexps:
//
//	bad2() // want "first finding" "second finding"
//
// Run fails the test if any diagnostic lacks a matching expectation on
// its exact line, or any expectation goes unmatched — so a fixture with
// no want comments doubles as a "must stay clean" assertion.
package atest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analyzers/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` regexp at one file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkgpath> (testdata relative to the calling
// test's directory) through the module driver — fixture-internal
// imports are loaded, analyzed, and call-graphed too — applies the
// analyzers, and checks the diagnostics against the want comments of
// every loaded fixture package.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := analysis.LoadModule(srcRoot, "", []string{pkgpath})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	diags, err := mod.Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgpath, err)
	}

	var expects []*expectation
	for _, pkg := range mod.Pkgs {
		expects = append(expects, collectWants(t, pkg.Dir)...)
	}
	for _, d := range diags {
		if !match(expects, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants scans every .go file of the fixture for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, q[1], err)
				}
				out = append(out, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return out
}

// match consumes the first unmatched expectation on the diagnostic's
// line whose regexp matches its message.
func match(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.line != d.Pos.Line || e.file != d.Pos.Filename {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}
