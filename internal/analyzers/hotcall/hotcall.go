// Package hotcall implements the simlint transitive hot-path allocation
// analyzer — the interprocedural complement of hotpath.
//
// hotpath polices the body of every //simlint:hotpath function, but a
// hot function calling an UNANNOTATED helper that allocates passes it
// silently: the helper's body is outside the annotated function, and
// the dynamic AllocsPerRun gates only see the traffic they happen to
// drive. hotcall closes that gap. For every function in the module it
// computes a may-allocate summary —
//
//   - allocates: make/new, append onto storage that is not parameter-
//     or receiver-rooted, &composite / slice / map literals, string
//     concatenation, string<->[]byte/[]rune conversions, escaping
//     closures, go statements;
//   - boxes: a concrete value converted or passed into an interface;
//   - calls fmt: any call into fmt, log, log/slog, or errors —
//
// and propagates it over the module's static call graph, exporting one
// fact per function so importing packages' passes compose without
// reanalysis. A //simlint:hotpath function whose static call edge
// reaches a dirty summary is flagged at the call site.
//
// Two annotations cut propagation:
//
//	//simlint:hotpath — the callee is policed at its own annotation
//	  (locally by hotpath, transitively by this pass), so edges into it
//	  are trusted rather than re-flagged at every caller;
//	//simlint:cold <reason> — the callee is deliberately off the
//	  steady-state path (panic formatting, one-time setup). The reason
//	  is mandatory: a bare //simlint:cold does not cut, and is itself
//	  flagged.
//
// Soundness caveats (documented in DESIGN.md): dynamic call sites —
// interface method dispatch and calls through func values — contribute
// no edges, and standard-library callees outside the fmt/log/errors
// denylist are assumed allocation-free (their bodies are not loaded).
// The compiler-truth escape inventory (scripts/escapes.sh) backstops
// both gaps.
package hotcall

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analyzers/analysis"
)

// Analyzer is the hotcall pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotcall",
	Doc: "functions annotated //simlint:hotpath must not call transitively " +
		"allocating, boxing, or formatting callees unless annotated //simlint:cold with a reason",
	Run:       run,
	FactTypes: []analysis.Fact{(*SummaryFact)(nil)},
}

// SummaryFact is the per-function allocation summary exported for
// importing packages. Why names the first root cause for diagnostics.
type SummaryFact struct {
	Allocates bool
	Boxes     bool
	CallsFmt  bool
	Why       string
}

// AFact marks SummaryFact as a fact type.
func (*SummaryFact) AFact() {}

func (s *SummaryFact) dirty() bool { return s.Allocates || s.Boxes || s.CallsFmt }

// describe renders the summary's dominant hazard for a diagnostic.
func (s *SummaryFact) describe() string {
	switch {
	case s.CallsFmt:
		return "formats (" + s.Why + ")"
	case s.Allocates:
		return "may allocate (" + s.Why + ")"
	case s.Boxes:
		return "boxes into an interface (" + s.Why + ")"
	}
	return "is clean"
}

// fmtPackages is the stdlib denylist: calls into these packages mark
// the caller as formatting (and therefore allocating).
var fmtPackages = map[string]bool{
	"fmt":      true,
	"log":      true,
	"log/slog": true,
	"errors":   true,
}

func run(pass *analysis.Pass) error {
	if pass.Module == nil {
		return fmt.Errorf("hotcall requires the module driver (call graph + facts)")
	}
	graph := pass.Module.Graph

	// Collect this package's declared functions in source order.
	var fns []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
				fns = append(fns, fn)
				decls[fn] = fd
			}
		}
	}

	// Annotation census; a bare //simlint:cold is flagged and does not
	// cut propagation.
	hot := map[*types.Func]bool{}
	cold := map[*types.Func]bool{}
	for fn, fd := range decls {
		if analysis.HasDirective(fd.Doc, "hotpath") {
			hot[fn] = true
		}
		if reason, ok := analysis.DirectiveReason([]*ast.CommentGroup{fd.Doc}, "cold"); ok {
			if reason == "" {
				pass.Reportf(fd.Pos(), "//simlint:cold needs a reason; a bare annotation does not exempt %s", fn.Name())
			} else {
				cold[fn] = true
			}
		}
	}

	// Local summaries, then a fixed point over the package-internal
	// edges (cross-package callees resolve through imported facts, which
	// dependency-ordered processing has already produced).
	summaries := map[*types.Func]*SummaryFact{}
	for _, fn := range fns {
		summaries[fn] = localSummary(pass, decls[fn])
	}
	calleeSummary := func(callee *types.Func) *SummaryFact {
		if s, ok := summaries[callee]; ok {
			return s
		}
		var imported SummaryFact
		if pass.ImportObjectFact(callee, &imported) {
			return &imported
		}
		if pkg := callee.Pkg(); pkg != nil && fmtPackages[pkg.Path()] {
			return &SummaryFact{CallsFmt: true, Allocates: true,
				Why: "calls " + pkg.Name() + "." + callee.Name()}
		}
		return nil // stdlib or unresolved: assumed clean (see caveats)
	}
	// cut reports whether propagation stops at callee: hot functions are
	// policed at their own annotation, cold-with-reason ones are exempt.
	cut := func(callee *types.Func) bool {
		if cold[callee] || hot[callee] {
			return true
		}
		if fd := graph.Decls[callee]; fd != nil {
			if analysis.HasDirective(fd.Doc, "hotpath") {
				return true
			}
			if reason, ok := analysis.DirectiveReason([]*ast.CommentGroup{fd.Doc}, "cold"); ok && reason != "" {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			s := summaries[fn]
			for _, site := range graph.Sites[fn] {
				if site.Callee == nil || site.Dynamic || cut(site.Callee) {
					continue
				}
				cs := calleeSummary(site.Callee)
				if cs == nil || !cs.dirty() {
					continue
				}
				if (cs.Allocates && !s.Allocates) || (cs.Boxes && !s.Boxes) || (cs.CallsFmt && !s.CallsFmt) {
					s.Allocates = s.Allocates || cs.Allocates
					s.Boxes = s.Boxes || cs.Boxes
					s.CallsFmt = s.CallsFmt || cs.CallsFmt
					if s.Why == "" {
						s.Why = "via " + site.Callee.Name() + ": " + cs.Why
					}
					changed = true
				}
			}
		}
	}
	for _, fn := range fns {
		s := summaries[fn]
		if hot[fn] || cold[fn] {
			// Cut points export clean summaries: callers trust them.
			s = &SummaryFact{}
		}
		pass.ExportObjectFact(fn, s)
	}

	// Diagnostics: every static edge out of a hot function into a dirty,
	// un-cut callee.
	for _, fn := range fns {
		if !hot[fn] {
			continue
		}
		for _, site := range graph.Sites[fn] {
			if site.Callee == nil || site.Dynamic || cut(site.Callee) {
				continue
			}
			cs := calleeSummary(site.Callee)
			if cs == nil || !cs.dirty() {
				continue
			}
			pass.Reportf(site.Pos,
				"hot path calls %s, which %s; annotate the callee //simlint:cold <reason> or make it allocation-free",
				site.Callee.Name(), cs.describe())
		}
	}
	return nil
}

// localSummary computes one function's own (non-transitive) summary.
func localSummary(pass *analysis.Pass, fd *ast.FuncDecl) *SummaryFact {
	s := &SummaryFact{}
	if fd.Body == nil {
		return s
	}
	rooted := analysis.ParamRooted(pass.TypesInfo, fd)
	why := func(pos token.Pos, what string) string {
		p := pass.Fset.Position(pos)
		return fmt.Sprintf("%s at line %d", what, p.Line)
	}
	mark := func(pos token.Pos, what string, alloc, box, fmtCall bool) {
		s.Allocates = s.Allocates || alloc
		s.Boxes = s.Boxes || box
		s.CallsFmt = s.CallsFmt || fmtCall
		if s.Why == "" {
			s.Why = why(pos, what)
		}
	}

	analysis.WithParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			mark(x.Pos(), "go statement", true, false, false)
		case *ast.FuncLit:
			// Immediately invoked literals stay on the stack; anything
			// else conservatively allocates its context.
			if len(stack) > 0 {
				if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == x {
					return true
				}
			}
			mark(x.Pos(), "closure", true, false, false)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					mark(x.Pos(), "&composite literal", true, false, false)
				}
			}
		case *ast.CompositeLit:
			if t := pass.TypesInfo.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					mark(x.Pos(), "slice/map literal", true, false, false)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := pass.TypesInfo.Types[x].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						mark(x.Pos(), "string concatenation", true, false, false)
					}
				}
			}
		case *ast.CallExpr:
			summarizeCall(pass, x, rooted, mark)
		}
		return true
	})
	return s
}

// summarizeCall classifies one call expression for the local summary:
// allocating builtins, allocating conversions, fmt-family calls, and
// concrete-into-interface argument boxing.
func summarizeCall(pass *analysis.Pass, call *ast.CallExpr, rooted map[types.Object]bool,
	mark func(token.Pos, string, bool, bool, bool)) {

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := analysis.ObjectOf(pass.TypesInfo, id).(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				mark(call.Pos(), b.Name(), true, false, false)
			case "append":
				if len(call.Args) > 0 {
					root := analysis.RootIdent(call.Args[0])
					if root == nil || !rooted[analysis.ObjectOf(pass.TypesInfo, root)] {
						mark(call.Pos(), "append to non-parameter-rooted slice", true, false, false)
					}
				}
			}
			return
		}
	}

	// Conversions: interface boxing and string<->byte-slice copies.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		target := tv.Type
		if types.IsInterface(target) && isConcrete(pass, call.Args[0]) {
			mark(call.Pos(), "conversion to "+target.String(), false, true, false)
			return
		}
		at := pass.TypesInfo.Types[call.Args[0]].Type
		if at == nil {
			return
		}
		_, targetSlice := target.Underlying().(*types.Slice)
		_, argSlice := at.Underlying().(*types.Slice)
		targetStr := isString(target)
		argStr := isString(at)
		if (targetSlice && argStr) || (targetStr && argSlice) {
			mark(call.Pos(), "string conversion", true, false, false)
		}
		return
	}

	// fmt-family package calls.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[base].(*types.PkgName); ok && fmtPackages[pn.Imported().Path()] {
				mark(call.Pos(), "calls "+pn.Imported().Name()+"."+sel.Sel.Name, true, false, true)
				return
			}
		}
	}

	// Ordinary calls: concrete arguments landing in interface parameters.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis == token.NoPos {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			} else if i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && isConcrete(pass, arg) {
			mark(arg.Pos(), "boxes argument into "+pt.String(), false, true, false)
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConcrete reports whether expr has a concrete (non-interface,
// non-nil) type.
func isConcrete(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}
