package hotcalls

import (
	"fmt"

	"hotcalls/dep"
)

// grow allocates locally: the unannotated helper a hot caller reaches.
func grow(n int) []int {
	return make([]int, n)
}

// indirect is clean itself but transitively reaches grow.
func indirect(n int) int {
	return len(grow(n))
}

// step is the regression class hotcall exists to close: its own body
// satisfies every per-function hotpath rule (it is just a call), but
// the callee allocates — per-function analysis accepts this.
//
//simlint:hotpath
func step(n int) int {
	buf := grow(n) // want "hot path calls grow, which may allocate"
	return len(buf)
}

// deep flags through two levels of unannotated callees.
//
//simlint:hotpath
func deep(n int) int {
	return indirect(n) // want "hot path calls indirect, which may allocate"
}

// crossPkg flags through a fact imported from another package.
//
//simlint:hotpath
func crossPkg(n int) int {
	return len(dep.Build(n)) // want "hot path calls Build, which may allocate"
}

// boxer passes a concrete value into an interface parameter.
func boxer(v int) {
	sink(v)
}

func sink(v any) { _ = v }

// boxing callees are flagged too.
//
//simlint:hotpath
func viaBoxer(v int) {
	boxer(v) // want "hot path calls boxer, which boxes into an interface"
}

// formatter reaches fmt.
func formatter(v int) string {
	return fmt.Sprint(v)
}

//simlint:hotpath
func viaFormatter(v int) string {
	return formatter(v) // want "hot path calls formatter, which formats"
}

// badCold is missing its mandatory reason, so it neither cuts
// propagation nor escapes its own diagnostic.
//
//simlint:cold
func badCold(n int) []int { // want "//simlint:cold needs a reason"
	return make([]int, n)
}

//simlint:hotpath
func viaBadCold(n int) int {
	return len(badCold(n)) // want "hot path calls badCold, which may allocate"
}
