// Package dep exists to prove hotcall's facts cross package
// boundaries: its summaries are exported here and imported by the
// hotcalls fixture package.
package dep

// Build allocates a fresh buffer per call.
func Build(n int) []byte {
	return make([]byte, n)
}

// Reuse is clean: it only slices caller storage.
func Reuse(buf []byte, n int) []byte {
	if n > len(buf) {
		n = len(buf)
	}
	return buf[:n]
}
