package hotcalls

// No want comments in this file: every construct here must stay silent.

// fill appends onto caller-provided storage only — its summary is
// clean, so hot callers may use it freely.
func fill(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// coldPanic is deliberately off the steady-state path; the reason makes
// the annotation effective.
//
//simlint:cold panic formatting is unreachable in steady state
func coldPanic(code int) {
	panic("bad state: " + string(rune('0'+code)))
}

// hotLeaf is policed at its own annotation; edges into it are trusted.
//
//simlint:hotpath
func hotLeaf(buf []int) int {
	return len(buf)
}

// okHot exercises every silent edge: a clean helper, a cold-with-reason
// helper, another hot function, and an allowed call site.
//
//simlint:hotpath
func okHot(buf []int, n int) int {
	buf = fill(buf, n)
	if n < 0 {
		coldPanic(n)
	}
	total := hotLeaf(buf)
	total += len(grow(n)) //simlint:allow hotcall warm-up branch runs once per campaign
	return total
}
