package hotcall_test

import (
	"testing"

	"repro/internal/analyzers/hotcall"
	"repro/internal/analyzers/hotpath"
)

import "repro/internal/analyzers/atest"

// TestHotcall runs BOTH hotpath and hotcall over the fixture. The want
// comments only expect hotcall findings, so the test simultaneously
// proves the acceptance property: every seeded hot→allocating call is
// accepted by the per-function hotpath pass (no unexpected hotpath
// diagnostics) and caught by hotcall.
func TestHotcall(t *testing.T) {
	atest.Run(t, "testdata", "hotcalls", hotpath.Analyzer, hotcall.Analyzer)
}
