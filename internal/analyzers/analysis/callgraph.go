package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallSite is one call expression attributed to a declared function.
// Callee is the statically resolved target, nil when resolution fails
// (a call through a plain function value). Dynamic marks targets whose
// runtime implementation the static graph cannot pin down — interface
// method dispatch and func-value calls — the documented soundness gap
// of the whole graph: an analyzer that must be conservative treats a
// dynamic site as "could be anything".
type CallSite struct {
	Callee  *types.Func
	Pos     token.Pos
	Dynamic bool
}

// CallGraph is the module's conservative static-dispatch call graph.
// Nodes are declared functions and methods (*types.Func); calls made
// inside a func literal are attributed to the literal's enclosing
// declaration, which over-approximates "runs when the declaration runs"
// — the right direction for may-allocate and reachability questions.
// Calls in package-level variable initializers are attributed to no
// node (they run once at init, never on a hot or rendering path).
type CallGraph struct {
	// Sites lists every call expression inside each declared function.
	Sites map[*types.Func][]CallSite
	// Decls maps a function object back to its syntax, for analyzers
	// that need the callee's body or doc comment.
	Decls map[*types.Func]*ast.FuncDecl
	// PkgOf maps a function object to the loaded package declaring it.
	PkgOf map[*types.Func]*Package
}

// NewCallGraph returns an empty graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{
		Sites: map[*types.Func][]CallSite{},
		Decls: map[*types.Func]*ast.FuncDecl{},
		PkgOf: map[*types.Func]*Package{},
	}
}

// AddPackage indexes every function declaration of pkg into the graph.
func (g *CallGraph) AddPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			g.Decls[fn] = fd
			g.PkgOf[fn] = pkg
			if fd.Body == nil {
				continue
			}
			var sites []CallSite
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, dynamic, isCall := StaticCallee(pkg.Info, call)
				if isCall {
					sites = append(sites, CallSite{Callee: callee, Pos: call.Pos(), Dynamic: dynamic})
				}
				return true
			})
			g.Sites[fn] = sites
		}
	}
}

// StaticCallee resolves the target of one call expression. isCall is
// false for conversions and builtins (not function calls at all);
// dynamic is true when the target cannot be pinned statically
// (interface method dispatch, calls through func values or struct
// fields). An immediately-invoked func literal resolves to (nil, false,
// true): its body is already attributed to the enclosing declaration,
// so there is no edge to add and nothing dynamic about it.
func StaticCallee(info *types.Info, call *ast.CallExpr) (callee *types.Func, dynamic, isCall bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](x): resolve the underlying ident.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[idx.X]; ok && tv.IsType() {
			return nil, false, false // conversion to a generic type
		}
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	// Conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil, false, false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			return obj, false, true
		case *types.Builtin:
			return nil, false, false
		case *types.Var:
			return nil, true, true // call through a func value
		case *types.TypeName:
			return nil, false, false
		}
		return nil, true, true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, _ := sel.Obj().(*types.Func)
				if fn == nil {
					return nil, true, true
				}
				recv := sel.Recv()
				if sel.Kind() == types.MethodExpr {
					// T.M(recv, ...) names the method directly.
					return fn, false, true
				}
				if types.IsInterface(recv) {
					return fn, true, true
				}
				return fn, false, true
			case types.FieldVal:
				return nil, true, true // call through a func-typed field
			}
		}
		// Qualified identifier pkg.Func.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn, false, true
		}
		if _, ok := info.Uses[f.Sel].(*types.TypeName); ok {
			return nil, false, false
		}
		return nil, true, true
	case *ast.FuncLit:
		return nil, false, true
	}
	return nil, true, true
}

// Reachable computes forward reachability over static edges from the
// given roots: every function a root can (statically) cause to run.
// Dynamic sites contribute no edges — the caller owns that caveat.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fn == nil || seen[fn] {
			continue
		}
		seen[fn] = true
		for _, site := range g.Sites[fn] {
			if site.Callee != nil && !seen[site.Callee] {
				stack = append(stack, site.Callee)
			}
		}
	}
	return seen
}
