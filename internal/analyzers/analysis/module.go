package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Module is one whole-program driver run: every requested package (and
// every module-internal dependency) loaded and type-checked, ordered so
// that a package always precedes its importers, plus the static call
// graph spanning them. It is the unit interprocedural analyzers run
// over — per-package passes execute in dependency order so facts flow
// from callee packages to caller packages, and module passes see the
// finished graph.
type Module struct {
	Loader *Loader
	// Pkgs holds every loaded module package in dependency order
	// (imported before importer).
	Pkgs []*Package
	// Graph is the static-dispatch call graph over all of Pkgs.
	Graph *CallGraph

	facts *factStore
	sup   suppressions
}

// LoadModule loads the packages named by the given module import paths
// (module-internal dependencies are pulled in automatically), builds
// the call graph, and returns the assembled Module.
func LoadModule(moduleDir, modulePath string, roots []string) (*Module, error) {
	l := NewLoader(moduleDir, modulePath)
	for _, r := range roots {
		if _, err := l.Load(r); err != nil {
			return nil, err
		}
	}
	m := &Module{
		Loader: l,
		facts:  newFactStore(),
	}
	m.Pkgs = dependencyOrder(l.pkgs)
	m.Graph = NewCallGraph()
	for _, pkg := range m.Pkgs {
		m.Graph.AddPackage(pkg)
	}
	var files []*ast.File
	for _, pkg := range m.Pkgs {
		files = append(files, pkg.Files...)
	}
	m.sup = collectSuppressions(l.Fset, files)
	return m, nil
}

// dependencyOrder topologically sorts the loaded packages so every
// package precedes its importers. Ties (unrelated packages) break by
// import path, keeping driver output deterministic.
func dependencyOrder(pkgs map[string]*Package) []*Package {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		pkg, ok := pkgs[path]
		if !ok || state[path] != 0 {
			return
		}
		state[path] = 1
		imports := pkg.Types.Imports()
		ipaths := make([]string, 0, len(imports))
		for _, imp := range imports {
			ipaths = append(ipaths, imp.Path())
		}
		sort.Strings(ipaths)
		for _, ip := range ipaths {
			visit(ip)
		}
		state[path] = 2
		order = append(order, pkg)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// Package returns the loaded package with the given import path, or nil.
func (m *Module) Package(path string) *Package {
	return m.Loader.pkgs[path]
}

// Run applies the analyzer suite to the module: per-package passes
// (Analyzer.Run) over every package in dependency order first, then
// module passes (Analyzer.RunModule), returning surviving diagnostics
// sorted by position.
func (m *Module) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    m,
				diags:     &diags,
				suppress:  m.sup,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Module:   m,
			diags:    &diags,
			suppress: m.sup,
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// ModulePass is the whole-module counterpart of Pass, handed to
// Analyzer.RunModule after every package pass has completed: the full
// package list, the call graph, and the accumulated fact store.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	diags    *[]Diagnostic
	suppress suppressions
}

// Fset returns the module's shared file set.
func (p *ModulePass) Fset() *token.FileSet { return p.Module.Loader.Fset }

// Reportf records a finding unless a //simlint:allow comment covers it.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset().Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
