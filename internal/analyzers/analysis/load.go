package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path within the loaded module (for
	// analysistest fixtures, the directory relative to testdata/src).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module from source.
// Standard-library imports are satisfied by go/importer's source
// importer (type-checked from GOROOT source — no export data or module
// cache needed); module-internal imports are resolved recursively
// through the loader itself. Only non-test files are loaded: simlint's
// invariants guard the simulator proper, and test files routinely use
// wall-clock time, shared RNG convenience APIs, and map iteration in
// ways that are harmless there.
type Loader struct {
	// ModuleDir is the filesystem root the module's import paths are
	// resolved under.
	ModuleDir string
	// ModulePath is the module's import-path prefix ("repro" for this
	// repository). Empty means import paths are directories relative to
	// ModuleDir (the analysistest layout).
	ModulePath string

	Fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which go/types would
	// otherwise chase forever.
	loading map[string]bool
}

// NewLoader returns a loader rooted at moduleDir for modulePath.
func NewLoader(moduleDir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// moduleRel maps an import path to its directory below ModuleDir, or
// ok=false when the path is not part of the loaded module.
func (l *Loader) moduleRel(path string) (string, bool) {
	if l.ModulePath == "" {
		// Fixture layout: every relative path is in-module.
		if path == "" || strings.HasPrefix(path, ".") {
			return "", false
		}
		return path, true
	}
	if path == l.ModulePath {
		return ".", true
	}
	if strings.HasPrefix(path, l.ModulePath+"/") {
		return strings.TrimPrefix(path, l.ModulePath+"/"), true
	}
	return "", false
}

// Import implements types.Importer over both resolution domains.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		if l.ModulePath == "" {
			// Fixture imports are only in-module if the directory
			// exists; otherwise fall through to the stdlib importer
			// (fixtures import "time", "math/rand", ...).
			if _, err := os.Stat(filepath.Join(l.ModuleDir, filepath.FromSlash(rel))); err == nil {
				pkg, err := l.Load(path)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
		} else {
			pkg, err := l.Load(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package at the given import
// path (cached per loader).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel, ok := l.moduleRel(path)
	if !ok {
		return nil, fmt.Errorf("package %q is outside module %q", path, l.ModulePath)
	}
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("listing %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
