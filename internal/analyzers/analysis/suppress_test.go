package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestSuppressionGrammar pins the edge cases of the //simlint:allow
// grammar: the reason is mandatory, a directive covers exactly its own
// line (trailing style) and the line below (comment-above style), and
// suppression is per-analyzer — one line can carry allows for several
// analyzers by combining the two styles.
func TestSuppressionGrammar(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //simlint:allow alpha trailing reason
	_ = 2
	//simlint:allow beta preceding-line reason
	_ = 3
	_ = 4
	_ = 5 //simlint:allow gamma bare-directive-below must not suppress
	//simlint:allow delta
	_ = 6
	//simlint:allow epsilon combined with the trailing one below
	_ = 7 //simlint:allow zeta two analyzers on one line
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "edge.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{file})

	at := func(line int) token.Position {
		return token.Position{Filename: "edge.go", Line: line}
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
		why      string
	}{
		{4, "alpha", true, "trailing allow covers its own line"},
		{5, "alpha", true, "trailing allow also covers the next line"},
		{6, "alpha", false, "allow reaches one line down, not two"},
		{7, "beta", true, "comment-above allow covers the line below"},
		{6, "beta", true, "comment-above allow covers its own (comment) line"},
		{8, "beta", false, "comment-above allow does not reach two lines down"},
		{4, "beta", false, "suppression is per-analyzer: alpha's line does not cover beta"},
		{11, "delta", false, "allow without a reason suppresses nothing"},
		{10, "delta", false, "allow without a reason suppresses nothing on its own line either"},
		{13, "epsilon", true, "first of two analyzers allowed on one line (comment above)"},
		{13, "zeta", true, "second of two analyzers allowed on one line (trailing)"},
		{13, "alpha", false, "a doubly-allowed line still blocks unrelated analyzers"},
	}
	for _, c := range cases {
		if got := sup.allows(c.analyzer, at(c.line)); got != c.want {
			t.Errorf("line %d, analyzer %q: allows=%v, want %v (%s)",
				c.line, c.analyzer, got, c.want, c.why)
		}
	}
}

// TestDirectiveReason pins the //simlint:<name> <reason> extraction used
// by hotcall's cold grammar: a bare directive is present with an empty
// reason (which hotcall rejects), and the reason is everything after the
// directive word.
func TestDirectiveReason(t *testing.T) {
	const src = `package p

// helper does things.
//
//simlint:cold panic path; never returns
func a() {}

//simlint:cold
func b() {}

func c() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	reasons := map[string]struct {
		reason  string
		present bool
	}{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		r, present := DirectiveReason([]*ast.CommentGroup{fd.Doc}, "cold")
		reasons[fd.Name.Name] = struct {
			reason  string
			present bool
		}{r, present}
	}
	if got := reasons["a"]; !got.present || got.reason != "panic path; never returns" {
		t.Errorf("a: got (%q, %v), want full reason and present", got.reason, got.present)
	}
	if got := reasons["b"]; !got.present || got.reason != "" {
		t.Errorf("b: got (%q, %v), want bare directive present with empty reason", got.reason, got.present)
	}
	if got := reasons["c"]; got.present {
		t.Errorf("c: directive reported present on an unannotated function")
	}
}
