package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// Fact is a datum one analyzer attaches to a types.Object (usually a
// *types.Func) in one package so that passes over importing packages can
// consume it — the mechanism that makes interprocedural analysis
// compositional. The interface mirrors golang.org/x/tools/go/analysis:
// a fact type is a pointer to a struct with an AFact marker method, and
// an analyzer declares every fact type it uses in Analyzer.FactTypes.
//
// Unlike x/tools, facts here never cross process boundaries (the module
// driver holds every package of one run in memory), so no gob encoding
// is required — but keeping fact types gob-encodable anyway keeps the
// eventual migration mechanical.
type Fact interface{ AFact() }

// objFactKey identifies one analyzer's fact set on one object.
type objFactKey struct {
	a   *Analyzer
	obj types.Object
}

// pkgFactKey identifies one analyzer's fact set on one package.
type pkgFactKey struct {
	a   *Analyzer
	pkg *types.Package
}

// factStore is the module-wide fact table shared by every pass of one
// driver run. Objects are unique per loader (one token.FileSet, one
// type-checked package graph), so types.Object identity is a sound key
// across packages.
type factStore struct {
	obj map[objFactKey][]Fact
	pkg map[pkgFactKey][]Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[objFactKey][]Fact{},
		pkg: map[pkgFactKey][]Fact{},
	}
}

// validFactType checks fact against the analyzer's declared FactTypes.
// Exporting or importing an undeclared fact type is a programmer error,
// reported loudly (x/tools panics here too).
func validFactType(a *Analyzer, fact Fact) {
	t := reflect.TypeOf(fact)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", fact))
	}
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			return
		}
	}
	panic(fmt.Sprintf("analysis: analyzer %q did not declare fact type %T in FactTypes", a.Name, fact))
}

// exportObject records fact on obj, replacing any prior fact of the
// same concrete type by the same analyzer.
func (s *factStore) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	validFactType(a, fact)
	if obj == nil {
		panic("analysis: ExportObjectFact with nil object")
	}
	key := objFactKey{a, obj}
	t := reflect.TypeOf(fact)
	for i, f := range s.obj[key] {
		if reflect.TypeOf(f) == t {
			s.obj[key][i] = fact
			return
		}
	}
	s.obj[key] = append(s.obj[key], fact)
}

// importObject copies the fact of ptr's concrete type attached to obj
// into *ptr, reporting whether one existed.
func (s *factStore) importObject(a *Analyzer, obj types.Object, ptr Fact) bool {
	validFactType(a, ptr)
	if obj == nil {
		return false
	}
	t := reflect.TypeOf(ptr)
	for _, f := range s.obj[objFactKey{a, obj}] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// exportPackage records fact on pkg, replacing any prior same-type fact.
func (s *factStore) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	validFactType(a, fact)
	key := pkgFactKey{a, pkg}
	t := reflect.TypeOf(fact)
	for i, f := range s.pkg[key] {
		if reflect.TypeOf(f) == t {
			s.pkg[key][i] = fact
			return
		}
	}
	s.pkg[key] = append(s.pkg[key], fact)
}

// importPackage copies pkg's fact of ptr's concrete type into *ptr.
func (s *factStore) importPackage(a *Analyzer, pkg *types.Package, ptr Fact) bool {
	validFactType(a, ptr)
	t := reflect.TypeOf(ptr)
	for _, f := range s.pkg[pkgFactKey{a, pkg}] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}
