package analysis

import "go/ast"

// RootIdent walks to the identifier at the base of a selector / index /
// slice / dereference / paren / type-assert chain: the `s` in
// `s.queues[vc].buf[:0]`. It returns nil when the chain bottoms out in
// anything else (a call result, a literal, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// WithParents runs fn over every node of root in source order, passing
// the stack of enclosing nodes (outermost first, not including n
// itself). Returning false skips n's children.
func WithParents(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
