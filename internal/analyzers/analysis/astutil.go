package analysis

import (
	"go/ast"
	"go/types"
)

// ObjectOf resolves an identifier through either the Uses or Defs map.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// ParamRooted computes the set of objects rooted in the function's
// receiver or parameters, propagated through local aliases in source
// order (pool := &f.pool keeps pool parameter-rooted). A local bound to
// the result of an append-style call — one whose FIRST argument is a
// rooted slice, like buf := e.intraGroup(e.nonBufs[cur][:0], a, b) —
// inherits rootedness too: by that calling convention the result
// aliases the caller-provided buffer's storage. Shared by the hotpath
// and hotcall analyzers so "appends to preallocated storage" means the
// same thing locally and transitively.
func ParamRooted(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	rooted := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					rooted[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	if fd.Body == nil {
		return rooted
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			rhs := assign.Rhs[i]
			if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) > 0 {
				// Append-style: f(buf, ...) returns storage rooted where
				// buf is.
				rhs = call.Args[0]
			}
			root := RootIdent(rhs)
			if root == nil {
				continue
			}
			robj := ObjectOf(info, root)
			if robj == nil || !rooted[robj] {
				continue
			}
			if obj := ObjectOf(info, id); obj != nil {
				rooted[obj] = true
			}
		}
		return true
	})
	return rooted
}

// RootIdent walks to the identifier at the base of a selector / index /
// slice / dereference / paren / type-assert chain: the `s` in
// `s.queues[vc].buf[:0]`. It returns nil when the chain bottoms out in
// anything else (a call result, a literal, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// WithParents runs fn over every node of root in source order, passing
// the stack of enclosing nodes (outermost first, not including n
// itself). Returning false skips n's children.
func WithParents(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
