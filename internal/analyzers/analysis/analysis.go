// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough framework to write typed
// AST analyzers against the standard library alone. The build
// environment for this repository is hermetic (no module downloads), so
// vendoring x/tools is not an option; instead the package mirrors the
// x/tools API shape — Analyzer, Pass, Diagnostic — closely enough that
// migrating the simlint suite onto the real framework later is a
// mechanical import swap.
//
// Beyond the x/tools core, the package implements the simlint
// suppression grammar shared by every analyzer:
//
//	//simlint:allow <analyzer> <reason>
//
// placed on the flagged line (trailing) or on the line directly above
// silences that analyzer for that line. The reason is mandatory: an
// allow comment without one does not suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags    *[]Diagnostic
	suppress suppressions
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding unless a //simlint:allow comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressions maps file -> line -> analyzer names allowed there.
type suppressions map[string]map[int][]string

var allowRE = regexp.MustCompile(`^//simlint:allow\s+([A-Za-z0-9_-]+)\s+\S`)

// collectSuppressions scans every comment of the package for
// //simlint:allow directives. A directive on line L covers findings on L
// (trailing style) and on L+1 (comment-above style).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := s[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					s[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
				byLine[pos.Line+1] = append(byLine[pos.Line+1], m[1])
			}
		}
	}
	return s
}

func (s suppressions) allows(analyzer string, pos token.Position) bool {
	for _, name := range s[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// Run applies every analyzer to pkg and returns the surviving
// diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
			suppress:  sup,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// HasDirective reports whether a comment group contains the given
// //simlint:<name> directive as a standalone comment line (the
// annotation grammar for function markers like //simlint:hotpath).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//simlint:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// DirectiveReason extracts the free-text reason following a
// //simlint:<name> directive in doc or trailing comment groups, and
// whether the directive is present at all.
func DirectiveReason(groups []*ast.CommentGroup, name string) (string, bool) {
	prefix := "//simlint:" + name
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == prefix {
				return "", true
			}
			if strings.HasPrefix(text, prefix+" ") {
				return strings.TrimSpace(strings.TrimPrefix(text, prefix)), true
			}
		}
	}
	return "", false
}
