// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough framework to write typed
// AST analyzers against the standard library alone. The build
// environment for this repository is hermetic (no module downloads), so
// vendoring x/tools is not an option; instead the package mirrors the
// x/tools API shape — Analyzer, Pass, Diagnostic — closely enough that
// migrating the simlint suite onto the real framework later is a
// mechanical import swap.
//
// Beyond the x/tools core, the package implements the simlint
// suppression grammar shared by every analyzer:
//
//	//simlint:allow <analyzer> <reason>
//
// placed on the flagged line (trailing) or on the line directly above
// silences that analyzer for that line. The reason is mandatory: an
// allow comment without one does not suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf. Under the module driver, packages are
	// visited in dependency order, so facts exported on an imported
	// package's objects are visible here.
	Run func(*Pass) error
	// RunModule, if set, runs once after every package pass with the
	// whole module — full package list, call graph, fact store — for
	// analyses whose scope cannot be expressed package-by-package
	// (reverse reachability from sinks, cross-package sharing).
	RunModule func(*ModulePass) error
	// FactTypes declares every Fact type the analyzer exports or
	// imports, mirroring x/tools; using an undeclared type panics.
	FactTypes []Fact
}

// Pass carries one (analyzer, package) unit of work, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the driver run this pass belongs to (call graph,
	// sibling packages). Nil when the pass runs outside a module
	// driver.
	Module *Module

	diags    *[]Diagnostic
	suppress suppressions
}

// ExportObjectFact attaches fact to obj for importing packages'
// passes (and module passes) to consume.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.Module.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of ptr's concrete type previously
// exported on obj into *ptr, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.Module.facts.importObject(p.Analyzer, obj, ptr)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.Module.facts.exportPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies pkg's fact of ptr's concrete type into *ptr.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	return p.Module.facts.importPackage(p.Analyzer, pkg, ptr)
}

// ObjectFact and PackageFact are available on module passes too.
func (p *ModulePass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.Module.facts.importObject(p.Analyzer, obj, ptr)
}

func (p *ModulePass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	return p.Module.facts.importPackage(p.Analyzer, pkg, ptr)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding unless a //simlint:allow comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressions maps file -> line -> analyzer names allowed there.
type suppressions map[string]map[int][]string

var allowRE = regexp.MustCompile(`^//simlint:allow\s+([A-Za-z0-9_-]+)\s+\S`)

// collectSuppressions scans every comment of the package for
// //simlint:allow directives. A directive on line L covers findings on L
// (trailing style) and on L+1 (comment-above style).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := s[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					s[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], m[1])
				byLine[pos.Line+1] = append(byLine[pos.Line+1], m[1])
			}
		}
	}
	return s
}

func (s suppressions) allows(analyzer string, pos token.Position) bool {
	for _, name := range s[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings by position then message, the
// driver's stable reporting order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// HasDirective reports whether a comment group contains the given
// //simlint:<name> directive as a standalone comment line (the
// annotation grammar for function markers like //simlint:hotpath).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//simlint:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// DirectiveReason extracts the free-text reason following a
// //simlint:<name> directive in doc or trailing comment groups, and
// whether the directive is present at all.
func DirectiveReason(groups []*ast.CommentGroup, name string) (string, bool) {
	prefix := "//simlint:" + name
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == prefix {
				return "", true
			}
			if strings.HasPrefix(text, prefix+" ") {
				return strings.TrimSpace(strings.TrimPrefix(text, prefix)), true
			}
		}
	}
	return "", false
}
