package share

import (
	"internal/core"
	"internal/parallel"
)

// Globals holding machines are reachable from every goroutine at once.
var warmSpare *core.Machine // want "never global state"

var warmPool []*core.Machine // want "never global state"

type machineCache struct {
	machines []*core.Machine
}

var globalCache machineCache // want "never global state"

// postSpawnWrite reassigns a captured variable while the goroutine may
// be reading it. The goroutine's own write to total stays silent — it
// is the owner's write, not sharing.
func postSpawnWrite() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++
		close(done)
	}()
	total = 5 // want "written while it may be running"
	<-done
	return total
}

// loopShared reuses one variable across iterations: iteration k+1's
// write races with iteration k's goroutine, even though the write
// precedes the spawn in source order.
func loopShared(rows [][]byte) {
	var current []byte
	done := make(chan struct{})
	for _, row := range rows {
		current = row // want "written while it may be running"
		go func() {
			_ = current
			done <- struct{}{}
		}()
	}
	for range rows {
		<-done
	}
}

// goMachine captures a machine in a plain goroutine closure.
func goMachine() {
	m := core.NewMachine()
	done := make(chan struct{})
	go func() {
		m.Run() // want "captured by goroutine closure"
		close(done)
	}()
	<-done
}

// workerCapturedMachine shares one machine between all workers.
func workerCapturedMachine(machines []*core.Machine) error {
	m := machines[0]
	return parallel.Map(2, 8, func(worker, index int) error {
		m.Run() // want "captured by worker closure"
		return nil
	})
}

// workerBadIndex indexes the machine slice by the item index, so two
// workers handling different items can collide on one machine.
func workerBadIndex(machines []*core.Machine) error {
	return parallel.Map(2, 8, func(worker, index int) error {
		machines[index].Run() // want "worker parameter"
		return nil
	})
}
