package share

import (
	"internal/core"
	"internal/parallel"
)

// No want comments in this file: every construct here must stay silent.

// preSpawnInit writes the captured variable only before the spawn —
// initialization, sequenced before the goroutine starts.
func preSpawnInit() int {
	total := 42
	done := make(chan struct{})
	go func() {
		_ = total
		close(done)
	}()
	<-done
	return total
}

// perIteration declares the captured variable inside the loop: Go loop
// scoping makes it fresh each iteration, and its only write precedes
// its own goroutine's spawn.
func perIteration(rows [][]byte) {
	done := make(chan struct{})
	for _, row := range rows {
		current := row
		go func() {
			_ = current
			done <- struct{}{}
		}()
	}
	for range rows {
		<-done
	}
}

// machineAsArg hands the machine to the goroutine explicitly: the
// parameter transfers ownership, nothing is captured.
func machineAsArg() {
	m := core.NewMachine()
	done := make(chan struct{})
	go func(mm *core.Machine) {
		mm.Run()
		close(done)
	}(m)
	<-done
}

// perWorkerMachines is the sanctioned pattern: one machine per worker
// slot, always indexed by the closure's worker parameter.
func perWorkerMachines(machines []*core.Machine) error {
	return parallel.Map(2, 8, func(worker, index int) error {
		machines[worker].Run()
		return nil
	})
}

// allowedPostWait writes after the spawn, but the channel receive
// proves the ordering, so the site carries an allow with its reason.
func allowedPostWait() int {
	state := 0
	done := make(chan struct{})
	go func() {
		state = 1
		close(done)
	}()
	<-done
	state = 2 //simlint:allow sharecheck happens-after the channel receive above
	return state
}
