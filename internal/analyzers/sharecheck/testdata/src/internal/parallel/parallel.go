// Package parallel is a fixture stand-in for the module's parallel
// runner: sharecheck recognizes its entry points by package-path suffix
// and name, and treats their func-literal arguments as worker closures.
package parallel

// Map mirrors the runner's signature: fn runs on worker goroutines.
func Map(workers, n int, fn func(worker, index int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i%workers, i); err != nil {
			return err
		}
	}
	return nil
}

// ForEach mirrors the error-free variant.
func ForEach(workers, n int, fn func(worker, index int)) {
	for i := 0; i < n; i++ {
		fn(i%workers, i)
	}
}
