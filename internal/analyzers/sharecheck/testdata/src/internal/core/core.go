// Package core is a fixture stand-in for the module's internal/core:
// sharecheck matches the Machine named type by package-path suffix, so
// this fake exercises the same detection as the real package.
package core

// Machine is the single-owner simulation state sharecheck protects.
type Machine struct {
	Cycles int
}

// NewMachine mirrors the real constructor.
func NewMachine() *Machine { return &Machine{} }

// Run mirrors a mutating method.
func (m *Machine) Run() { m.Cycles++ }
