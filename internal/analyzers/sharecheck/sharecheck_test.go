package sharecheck_test

import (
	"testing"

	"repro/internal/analyzers/atest"
	"repro/internal/analyzers/sharecheck"
)

func TestSharecheck(t *testing.T) {
	atest.Run(t, "testdata", "share", sharecheck.Analyzer)
}
