// Package sharecheck implements the simlint static worker-isolation
// analyzer.
//
// The parallel runner's correctness argument is ownership, not locking:
// each worker goroutine owns its core.Machine outright, and the merge
// discipline makes scheduling order unobservable. Until now the only
// machine-sharing guard was dynamic — the pool's double-handout panic —
// which fires only on exercised paths. sharecheck makes the isolation
// rules build-time errors:
//
//  1. A variable captured by a `go func` closure must not be written
//     after the spawn (or anywhere in a loop enclosing the spawn):
//     post-spawn writes race with the goroutine's reads. Writes that
//     happen-before the spawn are initialization and stay silent.
//  2. A *core.Machine must never be captured by a goroutine closure —
//     neither a `go func` literal nor a worker closure handed to
//     parallel.Map / MapContext / Reduce / ReduceContext / ForEach.
//     Worker closures derive their machine from the worker index
//     (machines[worker], pool.machine(worker)); capturing a machine
//     value, or indexing a captured machine slice by anything other
//     than the closure's worker parameter, shares one machine between
//     workers.
//  3. No package-level variable may hold a *core.Machine (directly or
//     inside a struct/slice/map/array/pointer): a global machine is
//     reachable from every goroutine at once.
//
// Deliberate exceptions — a mutex-guarded registry, a write the caller
// proves happens-after wg.Wait — are suppressed site by site with
// //simlint:allow sharecheck <reason>. Soundness caveats: machines
// reached through container structs (a captured pool) are vetted by the
// pool's own locking plus the dynamic double-handout gate, and writes
// hidden behind address-taken aliases are invisible here.
package sharecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analyzers/analysis"
)

// Analyzer is the sharecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharecheck",
	Doc: "worker isolation: no post-spawn writes to goroutine-captured variables, " +
		"no *core.Machine captured by worker closures or stored in globals",
	Run: run,
}

// workerFuncs are the parallel-runner entry points whose func-literal
// arguments execute on worker goroutines.
var workerFuncs = map[string]bool{
	"Map":           true,
	"MapContext":    true,
	"Reduce":        true,
	"ReduceContext": true,
	"ForEach":       true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkGlobals(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkGlobals enforces rule 3 over package-level var declarations.
func checkGlobals(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if containsMachine(obj.Type(), map[types.Type]bool{}) {
					pass.Reportf(name.Pos(),
						"package-level variable %s holds a *core.Machine: machines must be owned by one worker or pool, never global state",
						name.Name)
				}
			}
		}
	}
}

// checkFunc enforces rules 1 and 2 inside one function declaration.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	analysis.WithParents(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				captured := capturedVars(pass, lit)
				checkPostSpawnWrites(pass, fd, x, lit, captured, stack)
				checkMachineCapture(pass, lit, captured, nil, "goroutine closure")
			}
		case *ast.CallExpr:
			if lit, worker := workerClosure(pass, x); lit != nil {
				captured := capturedVars(pass, lit)
				checkMachineCapture(pass, lit, captured, worker, "worker closure")
			}
		}
		return true
	})
}

// capturedVars returns the local variables the literal closes over:
// objects used inside the literal but declared outside it (and not at
// package scope — globals have their own rule).
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object][]*ast.Ident {
	out := map[types.Object][]*ast.Ident{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == pass.Pkg.Scope() {
			return true // package-level: rule 3's domain
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own params and locals
		}
		out[obj] = append(out[obj], id)
		return true
	})
	return out
}

// checkPostSpawnWrites flags writes to captured variables that can
// execute while the goroutine is live: writes positioned after the go
// statement, and — for variables declared before an enclosing loop —
// writes anywhere in that loop's body, because the next iteration's
// write races with the previous iteration's goroutine. Variables
// declared inside the loop are fresh per iteration (Go ≥1.22 loop
// scoping), so only their genuinely post-spawn writes count.
func checkPostSpawnWrites(pass *analysis.Pass, fd *ast.FuncDecl, spawn *ast.GoStmt,
	lit *ast.FuncLit, captured map[types.Object][]*ast.Ident, stack []ast.Node) {

	if len(captured) == 0 {
		return
	}
	loopStart := token.NoPos // outermost loop enclosing the spawn
	for _, anc := range stack {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if !loopStart.IsValid() {
				loopStart = anc.Pos()
			}
		}
	}
	report := func(target ast.Expr, pos token.Pos) {
		root := analysis.RootIdent(target)
		if root == nil {
			return
		}
		obj := analysis.ObjectOf(pass.TypesInfo, root)
		if obj == nil {
			return
		}
		if _, ok := captured[obj]; !ok {
			return
		}
		hazard := pos >= spawn.End() ||
			(loopStart.IsValid() && pos >= loopStart && obj.Pos() < loopStart)
		if !hazard {
			return // happens-before the spawn: initialization, not sharing
		}
		pass.Reportf(pos,
			"%s is captured by the goroutine spawned at line %d and written while it may be running: pass it as an argument or prove the ordering and annotate",
			root.Name, pass.Fset.Position(spawn.Pos()).Line)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		// Writes inside the spawned literal are the goroutine's own.
		if n.Pos() >= lit.Pos() && n.Pos() < lit.End() {
			return false
		}
		switch w := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range w.Lhs {
				report(lhs, w.Pos())
			}
		case *ast.IncDecStmt:
			report(w.X, w.Pos())
		}
		return true
	})
}

// workerClosure recognizes a func literal passed to one of the
// parallel-runner entry points, returning the literal and its worker
// parameter object (the first parameter, by the runner's contract).
func workerClosure(pass *analysis.Pass, call *ast.CallExpr) (*ast.FuncLit, types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !workerFuncs[fn.Name()] {
		return nil, nil
	}
	path := fn.Pkg().Path()
	if path != "internal/parallel" && !strings.HasSuffix(path, "/internal/parallel") {
		return nil, nil
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		var worker types.Object
		if params := lit.Type.Params; params != nil && len(params.List) > 0 && len(params.List[0].Names) > 0 {
			worker = pass.TypesInfo.Defs[params.List[0].Names[0]]
		}
		return lit, worker
	}
	return nil, nil
}

// checkMachineCapture enforces rule 2 on one closure: no captured
// machine values, and machine-slice indexing only by the worker param.
func checkMachineCapture(pass *analysis.Pass, lit *ast.FuncLit,
	captured map[types.Object][]*ast.Ident, worker types.Object, what string) {

	for obj, uses := range captured {
		if isMachinePtr(obj.Type()) {
			pass.Reportf(firstUse(uses),
				"*core.Machine %s captured by %s: machines are single-owner; derive them from the worker index or pass them explicitly",
				obj.Name(), what)
			continue
		}
		if !isMachineSlice(obj.Type()) {
			continue
		}
		// A captured machine slice is the sanctioned per-worker-slot
		// pattern ONLY when every index is the worker parameter.
		for _, use := range uses {
			idx := indexOf(pass, lit, use)
			if idx == nil {
				continue
			}
			root := analysis.RootIdent(idx)
			if worker != nil && root != nil && analysis.ObjectOf(pass.TypesInfo, root) == worker {
				continue
			}
			pass.Reportf(use.Pos(),
				"machine slice %s indexed by something other than the closure's worker parameter inside a %s: workers must never share a machine",
				obj.Name(), what)
		}
	}
}

// firstUse returns the earliest use position for deterministic reports.
func firstUse(uses []*ast.Ident) token.Pos {
	pos := uses[0].Pos()
	for _, u := range uses[1:] {
		if u.Pos() < pos {
			pos = u.Pos()
		}
	}
	return pos
}

// indexOf finds the index expression applied to a use of a slice ident
// inside the literal (machines[i] -> i), or nil when the use is not
// indexed.
func indexOf(pass *analysis.Pass, lit *ast.FuncLit, use *ast.Ident) ast.Expr {
	var out ast.Expr
	analysis.WithParents(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		if n != use || len(stack) == 0 {
			return true
		}
		if idx, ok := stack[len(stack)-1].(*ast.IndexExpr); ok && idx.X == use {
			out = idx.Index
		}
		return true
	})
	return out
}

// isMachinePtr matches *core.Machine.
func isMachinePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isMachineNamed(p.Elem())
}

// isMachineSlice matches []*core.Machine.
func isMachineSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isMachinePtr(s.Elem())
}

// isMachineNamed matches the core.Machine named type (module or fixture
// layout).
func isMachineNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Machine" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/core" || strings.HasSuffix(path, "/internal/core")
}

// containsMachine walks a type for any reachable *core.Machine.
func containsMachine(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isMachinePtr(t) || isMachineNamed(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return containsMachine(u.Elem(), seen)
	case *types.Slice:
		return containsMachine(u.Elem(), seen)
	case *types.Array:
		return containsMachine(u.Elem(), seen)
	case *types.Map:
		return containsMachine(u.Key(), seen) || containsMachine(u.Elem(), seen)
	case *types.Chan:
		return containsMachine(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMachine(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
