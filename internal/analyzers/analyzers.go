// Package analyzers assembles the simlint suite: the custom static
// checks that turn this repository's determinism, reset-coverage,
// hot-path, and worker-isolation conventions into build-time errors.
// See DESIGN.md, "Static invariants", for each analyzer's contract and
// annotation grammar.
package analyzers

import (
	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/detflow"
	"repro/internal/analyzers/detrand"
	"repro/internal/analyzers/hotcall"
	"repro/internal/analyzers/hotpath"
	"repro/internal/analyzers/resetcheck"
	"repro/internal/analyzers/sharecheck"
)

// All is the suite cmd/simlint runs, in reporting order. The first
// three are per-package passes from simlint v1; hotcall and sharecheck
// are the v2 interprocedural passes over the module call graph and
// facts store, and detflow is a module pass whose sink-reachability
// replaces detrand's hardcoded scope on the output side.
var All = []*analysis.Analyzer{
	detrand.Analyzer,
	resetcheck.Analyzer,
	hotpath.Analyzer,
	hotcall.Analyzer,
	detflow.Analyzer,
	sharecheck.Analyzer,
}
