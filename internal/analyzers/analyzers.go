// Package analyzers assembles the simlint suite: the custom static
// checks that turn this repository's determinism, reset-coverage, and
// hot-path conventions into build-time errors. See DESIGN.md, "Static
// invariants", for each analyzer's contract and annotation grammar.
package analyzers

import (
	"repro/internal/analyzers/analysis"
	"repro/internal/analyzers/detrand"
	"repro/internal/analyzers/hotpath"
	"repro/internal/analyzers/resetcheck"
)

// All is the suite cmd/simlint runs, in reporting order.
var All = []*analysis.Analyzer{
	detrand.Analyzer,
	resetcheck.Analyzer,
	hotpath.Analyzer,
}
