package resetpkg

// gauge is rewound element-wise by machine.Reset below.
type gauge struct {
	v   int
	ema float64
}

func (g *gauge) reset() {
	g.v = 0
	g.ema = 0
}

// machine exercises every coverage rule: direct assignment, range-and-
// rewind, builtin call argument, method call on a field, local alias,
// same-receiver helper, address-taken, and the resetsafe annotation.
type machine struct {
	cfg     string //simlint:resetsafe configuration survives reuse by design
	ticks   int
	gauges  []gauge
	byID    map[int]*gauge
	prim    gauge
	scratch []int
	parts   [2][]int
	seq     uint64
}

func (m *machine) Reset() {
	m.ticks = 0
	for i := range m.gauges { // element-wise rewind covers gauges
		m.gauges[i].reset()
	}
	clear(m.byID)        // builtin argument covers byID
	m.prim.reset()       // method call on a field covers prim
	buf := m.scratch[:0] // local alias rooted at scratch
	m.scratch = buf
	m.resetParts() // same-receiver helper covers parts
	take(&m.seq)   // address-taken covers seq
}

func (m *machine) resetParts() {
	for i := range m.parts {
		m.parts[i] = m.parts[i][:0]
	}
}

func take(p *uint64) { *p = 0 }

// blank shows the wholesale form: *recv = T{} covers every field.
type blank struct {
	a, b int
}

func (z *blank) Reset() { *z = blank{} }
