package resetpkg

// ringStats mirrors the regression resetcheck exists for: the struct
// gained lastSeq after Reset was written, and Reset was left stale —
// exactly what deleting one assignment from network.Fabric.Reset or
// sim.Kernel.Reset looks like. The annotated name field shows the escape
// hatch for state that must survive.
type ringStats struct {
	count   int
	sum     int
	lastSeq uint64 // the field Reset forgot
	name    string //simlint:resetsafe immutable identity assigned at construction
}

func (r *ringStats) Reset() { // want "ringStats.lastSeq is not reset by Reset"
	r.count = 0
	r.sum = 0
}

// twoPhase shows the same hole through the unexported spelling: reset
// rewinds hot element-wise but never mentions cold.
type twoPhase struct {
	hot  []int
	cold []int
}

func (t *twoPhase) reset() { // want "twoPhase.cold is not reset by reset"
	for i := range t.hot {
		t.hot[i] = 0
	}
}
