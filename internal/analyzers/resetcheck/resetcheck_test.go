package resetcheck_test

import (
	"testing"

	"repro/internal/analyzers/atest"
	"repro/internal/analyzers/resetcheck"
)

// TestResetcheck runs the analyzer over one fixture package holding both
// the failure cases (a struct that grew a field after Reset was written,
// mirroring the warm-reuse regression the analyzer exists to catch) and
// a struct exercising every coverage rule cleanly.
func TestResetcheck(t *testing.T) {
	atest.Run(t, "testdata", "resetpkg", resetcheck.Analyzer)
}
