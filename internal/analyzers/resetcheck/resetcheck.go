// Package resetcheck implements the simlint reset-coverage analyzer.
//
// Warm machine reuse (core.Machine) rewinds a kernel/fabric pair in
// place between runs, and its correctness rests on every piece of
// mutable run state being rewound: a struct field added without a
// matching line in Reset silently leaks one run's state into the next —
// the classic warm-reuse heisenbug, visible only as a determinism
// mismatch several layers up.
//
// For every struct type with a Reset (or unexported reset) method, the
// analyzer requires each field to be either
//
//   - assigned in Reset — directly, through a local alias, via a method
//     call on the field (f.counters.Reset()), by being ranged over and
//     rewound element-wise, by having its address taken, or inside any
//     same-receiver helper method Reset calls — or
//   - annotated with //simlint:resetsafe <reason> on the field's line
//     (or its doc comment), declaring it deliberately reset-exempt:
//     immutable wiring, identity, or configuration that must survive.
//
// The coverage rules are deliberately syntactic over-approximations: a
// mention in a resetting position counts. What the analyzer guarantees
// is the converse — a field with no resetting mention and no
// annotation cannot build — which is exactly the regression that
// matters when a struct grows a new field.
package resetcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analyzers/analysis"
)

// Analyzer is the resetcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "resetcheck",
	Doc: "every field of a struct with a Reset method must be assigned in " +
		"Reset (directly or via a callee) or carry //simlint:resetsafe <reason>",
	Run: run,
}

// methodIndex maps receiver base-type name -> method name -> decl.
type methodIndex map[string]map[string]*ast.FuncDecl

func run(pass *analysis.Pass) error {
	methods := methodIndex{}
	specs := map[string]*ast.TypeSpec{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) == 0 {
					continue
				}
				name := recvTypeName(d.Recv.List[0].Type)
				if name == "" {
					continue
				}
				if methods[name] == nil {
					methods[name] = map[string]*ast.FuncDecl{}
				}
				methods[name][d.Name.Name] = d
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						specs[ts.Name.Name] = ts
					}
				}
			}
		}
	}

	for typeName, byName := range methods {
		reset := byName["Reset"]
		if reset == nil {
			reset = byName["reset"]
		}
		if reset == nil {
			continue
		}
		ts := specs[typeName]
		if ts == nil {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		checkReset(pass, typeName, st, reset, byName)
	}
	return nil
}

// recvTypeName unwraps a receiver type expression to its base type name.
func recvTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr: // generic receiver
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// fieldNames lists a struct's field names (embedded fields by their type
// name) with any resetsafe annotation.
func structFields(st *ast.StructType) (names []string, exempt map[string]bool, fieldPos map[string]ast.Node) {
	exempt = map[string]bool{}
	fieldPos = map[string]ast.Node{}
	for _, f := range st.Fields.List {
		_, safe := analysis.DirectiveReason([]*ast.CommentGroup{f.Doc, f.Comment}, "resetsafe")
		var fnames []string
		if len(f.Names) == 0 {
			if n := recvTypeName(f.Type); n != "" { // embedded
				fnames = []string{n}
			}
		} else {
			for _, id := range f.Names {
				fnames = append(fnames, id.Name)
			}
		}
		for _, n := range fnames {
			if n == "_" {
				continue
			}
			names = append(names, n)
			fieldPos[n] = f
			if safe {
				exempt[n] = true
			}
		}
	}
	return names, exempt, fieldPos
}

// checkReset verifies field coverage for one (struct, Reset) pair.
func checkReset(pass *analysis.Pass, typeName string, st *ast.StructType, reset *ast.FuncDecl, byName map[string]*ast.FuncDecl) {
	names, exempt, _ := structFields(st)
	isField := map[string]bool{}
	for _, n := range names {
		isField[n] = true
	}

	cov := &coverage{
		pass:    pass,
		isField: isField,
		covered: map[string]bool{},
		byName:  byName,
		visited: map[*ast.FuncDecl]bool{},
	}
	cov.method(reset)

	for _, n := range names {
		if exempt[n] || cov.covered[n] || cov.all {
			continue
		}
		pass.Reportf(reset.Pos(),
			"%s.%s is not reset by %s: assign it or annotate the field //simlint:resetsafe <reason> (warm reuse would leak it across runs)",
			typeName, n, reset.Name.Name)
	}
}

// coverage walks Reset (and same-receiver callees) accumulating the set
// of fields touched in a resetting position.
type coverage struct {
	pass    *analysis.Pass
	isField map[string]bool
	covered map[string]bool
	all     bool // *recv = T{} style wholesale reset seen
	byName  map[string]*ast.FuncDecl
	visited map[*ast.FuncDecl]bool
}

// method processes one method body. Local variables aliasing the
// receiver (or one of its fields) propagate coverage: fl := c.Flits[r]
// followed by fl[t] = 0 covers Flits.
func (c *coverage) method(fd *ast.FuncDecl) {
	if fd == nil || fd.Body == nil || c.visited[fd] {
		return
	}
	c.visited[fd] = true

	recvObj := c.receiverObject(fd)
	if recvObj == nil {
		return
	}
	// alias maps a local object to the receiver field it is rooted at;
	// the empty string aliases the whole receiver.
	alias := map[types.Object]string{recvObj: ""}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				c.mark(alias, lhs)
			}
			// Record fresh aliases: lhs idents bound to receiver-rooted
			// rhs expressions.
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if field, rooted := c.root(alias, x.Rhs[i]); rooted {
						if obj := c.objectOf(id); obj != nil {
							alias[obj] = field
						}
					}
				}
			}
		case *ast.IncDecStmt:
			c.mark(alias, x.X)
		case *ast.UnaryExpr:
			// Taking a field's address hands it to someone who can
			// mutate it.
			if x.Op.String() == "&" {
				if field, rooted := c.root(alias, x.X); rooted && field != "" {
					c.covered[field] = true
				}
			}
		case *ast.RangeStmt:
			c.rangeStmt(alias, x)
		case *ast.CallExpr:
			c.call(alias, x)
		}
		return true
	})
}

// mark records an assignment through expr.
func (c *coverage) mark(alias map[types.Object]string, expr ast.Expr) {
	if star, ok := expr.(*ast.StarExpr); ok {
		if field, rooted := c.root(alias, star.X); rooted && field == "" {
			c.all = true // *recv = ... rewrites everything
			return
		}
	}
	if field, rooted := c.root(alias, expr); rooted && field != "" {
		c.covered[field] = true
	}
}

// rangeStmt covers fields that are ranged over and rewound in the loop
// body (the `for _, s := range f.servers { s.reset() }` idiom), and
// binds the loop variables as aliases of the ranged field.
func (c *coverage) rangeStmt(alias map[types.Object]string, r *ast.RangeStmt) {
	field, rooted := c.root(alias, r.X)
	if !rooted || field == "" {
		return
	}
	if r.Body != nil && len(r.Body.List) > 0 {
		c.covered[field] = true
	}
	for _, v := range []ast.Expr{r.Key, r.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.objectOf(id); obj != nil {
				alias[obj] = field
			}
		}
	}
}

// call covers fields passed to callees or receiving method calls, and
// recurses into same-receiver helper methods.
func (c *coverage) call(alias map[types.Object]string, call *ast.CallExpr) {
	// Arguments: clear(recv.f), copy(recv.f, ...), helper(&recv.f)...
	for _, arg := range call.Args {
		if field, rooted := c.root(alias, arg); rooted && field != "" {
			c.covered[field] = true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	field, rooted := c.root(alias, sel.X)
	if !rooted {
		return
	}
	if field != "" {
		// Method call on a field: recv.band.reset(), recv.rng.Seed(...).
		c.covered[field] = true
		return
	}
	// Same-receiver helper: recv.m() — union its coverage.
	c.method(c.byName[sel.Sel.Name])
}

// root resolves expr to (field, true) when it is a chain rooted at the
// receiver or one of its aliases; field is "" for the receiver itself.
func (c *coverage) root(alias map[types.Object]string, expr ast.Expr) (string, bool) {
	// Unwrap to find the first selector directly on an aliased object.
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := c.objectOf(x); obj != nil {
			if field, ok := alias[obj]; ok {
				return field, true
			}
		}
		return "", false
	case *ast.SelectorExpr:
		field, rooted := c.root(alias, x.X)
		if !rooted {
			return "", false
		}
		if field != "" {
			return field, true // deeper selection stays within the field
		}
		if c.isField[x.Sel.Name] {
			return x.Sel.Name, true
		}
		return "", false // method value or promoted name we don't track
	case *ast.IndexExpr:
		return c.root(alias, x.X)
	case *ast.SliceExpr:
		return c.root(alias, x.X)
	case *ast.StarExpr:
		return c.root(alias, x.X)
	case *ast.ParenExpr:
		return c.root(alias, x.X)
	case *ast.UnaryExpr:
		return c.root(alias, x.X)
	}
	return "", false
}

func (c *coverage) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// receiverObject returns the types.Object of fd's receiver variable.
func (c *coverage) receiverObject(fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return c.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}
