// Package sim is a detrand fixture standing in for the real simulation
// packages: its import path (internal/sim) puts it in scope.
package sim

import (
	"math/rand"
	"time"
)

// wallClock: host time is forbidden in simulation code.
func wallClock() time.Time {
	return time.Now() // want "time.Now in simulation code"
}

// globalDraw: package-level math/rand functions share process state.
func globalDraw() int {
	return rand.Intn(6) // want "global math/rand.Intn draws from shared process-wide state"
}

// seededDraw: explicit generators and their methods are fine.
func seededDraw() float64 {
	r := rand.New(rand.NewSource(7))
	return r.Float64()
}

// sumMap: bare map iteration is flagged.
func sumMap(m map[string]int) int {
	t := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		t += v
	}
	return t
}

// sumMapAllowed: the same reduction under an allow annotation is not.
func sumMapAllowed(m map[string]int) int {
	t := 0
	//simlint:allow detrand commutative sum, order-insensitive
	for _, v := range m {
		t += v
	}
	return t
}

// concurrency: goroutines and select leak runtime scheduling order.
func concurrency(c chan int) int {
	go send(c) // want "go statement outside internal/parallel"
	select {   // want "select statement outside internal/parallel"
	case v := <-c:
		return v
	default:
	}
	return 0
}

func send(c chan int) { c <- 1 }
