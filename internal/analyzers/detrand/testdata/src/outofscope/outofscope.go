// Package outofscope uses every construct detrand forbids, but its
// import path is outside the simulation scope, so the analyzer must stay
// silent (no want comments: any diagnostic fails the test).
package outofscope

import (
	"math/rand"
	"time"
)

// Sample is tooling-style code where host time, shared RNG state, and
// map iteration are all harmless.
func Sample(m map[int]int) (time.Time, int) {
	t := 0
	for _, v := range m {
		t += v
	}
	go func() { _ = t }()
	return time.Now(), rand.Intn(3) + t
}
