package detrand_test

import (
	"testing"

	"repro/internal/analyzers/atest"
	"repro/internal/analyzers/detrand"
)

// TestDetrandFlagsSimPackages runs the analyzer over a fixture package
// whose import path falls inside the simulation scope: every forbidden
// construct must be flagged, and an //simlint:allow annotation must
// silence its site.
func TestDetrandFlagsSimPackages(t *testing.T) {
	atest.Run(t, "testdata", "internal/sim", detrand.Analyzer)
}

// TestDetrandIgnoresOutOfScope runs the analyzer over a package outside
// the simulation scope using the same forbidden constructs; the fixture
// has no want comments, so any diagnostic fails the test.
func TestDetrandIgnoresOutOfScope(t *testing.T) {
	atest.Run(t, "testdata", "outofscope", detrand.Analyzer)
}
