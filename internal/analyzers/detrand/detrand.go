// Package detrand implements the simlint determinism analyzer.
//
// The reproduction's headline guarantee is bit-identical results for a
// given seed, sequential or parallel (DESIGN.md "Determinism"). Inside
// the simulation packages that guarantee outlaws four constructs:
//
//   - time.Now — wall-clock time in model code makes results depend on
//     the host; virtual time comes from sim.Kernel.Now.
//   - the global math/rand functions (rand.Intn, rand.Float64, ...) —
//     they draw from process-wide shared state, so any second consumer
//     (another worker, a test) perturbs the stream. Every random draw
//     must come from an explicitly threaded *rand.Rand.
//   - ranging over a map — iteration order is randomized per run, so
//     any map-range whose body can reach simulation state or output is
//     a nondeterminism seed. Order-insensitive reductions are
//     suppressed site by site with //simlint:allow detrand <reason>.
//   - go and select statements — scheduling order is the runtime's
//     choice. All concurrency is quarantined in internal/parallel,
//     whose merge discipline makes worker order unobservable; sim's
//     coroutine handoff (strictly one runnable goroutine) carries an
//     allow annotation.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analyzers/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time, global math/rand state, map iteration, " +
		"and goroutine scheduling in simulation packages",
	Run: run,
}

// Scope lists the module-relative package paths (and their subtrees)
// the analyzer applies to: the packages whose execution can reach
// simulation state or run output.
var Scope = []string{
	"internal/sim",
	"internal/network",
	"internal/routing",
	"internal/apps",
	"internal/mpi",
	"internal/workload",
	"internal/core",
}

// concurrencyExempt names the one package allowed to spawn goroutines:
// the parallel runner, whose deterministic merge makes scheduling order
// unobservable.
const concurrencyExempt = "internal/parallel"

// randConstructors are the math/rand package-level functions that build
// explicit generators rather than touching the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// InScope reports whether pkgPath is one of the packages detrand's
// determinism rules apply to. Exported so detflow can avoid
// double-reporting map iteration in packages this analyzer already
// covers, and so the scope-drift test can compare the hand-maintained
// list against computed sink reachability.
func InScope(pkgPath string) bool {
	return inScope(pkgPath, Scope)
}

// inScope reports whether the package path falls under any entry of
// Scope (entries are matched as whole path segments, with or without
// the module-path prefix).
func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) ||
			strings.HasPrefix(pkgPath, s+"/") || strings.Contains(pkgPath, "/"+s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), Scope) {
		return nil
	}
	exemptConc := inScope(pass.Pkg.Path(), []string{concurrencyExempt})
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, x)
			case *ast.RangeStmt:
				if t := pass.TypesInfo.Types[x.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(x.Pos(),
							"map iteration order is nondeterministic; iterate a sorted key slice or annotate an order-insensitive reduction")
					}
				}
			case *ast.GoStmt:
				if !exemptConc {
					pass.Reportf(x.Pos(),
						"go statement outside internal/parallel: goroutine scheduling is nondeterministic")
				}
			case *ast.SelectStmt:
				if !exemptConc {
					pass.Reportf(x.Pos(),
						"select statement outside internal/parallel: case choice is nondeterministic")
				}
			}
			return true
		})
	}
	return nil
}

// checkSelector flags uses of time.Now and of math/rand's global-state
// package-level functions.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
				pass.Reportf(sel.Pos(),
					"time.Now in simulation code: results would depend on the host clock; use the kernel's virtual time")
			}
		case "math/rand", "math/rand/v2":
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil && !randConstructors[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"global math/rand.%s draws from shared process-wide state; use an explicit per-run *rand.Rand stream", fn.Name())
			}
		}
	}
}
