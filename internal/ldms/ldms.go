// Package ldms reproduces the LDMS global monitoring the paper uses: a
// daemon sampling every router's tile counters (and optionally every NIC's
// ORB latency counters) at a fixed period across the whole system, giving
// the system-level congestion view of Section V.
package ldms

import (
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Sample is one global observation window (the delta between two
// consecutive daemon ticks).
type Sample struct {
	At     sim.Time
	Totals network.ClassTotals
	// RouterRatios holds each router's network-tile stalls-to-flits
	// ratio for this window (only when RecordRouterRatios is set).
	RouterRatios []float64
	// NICLatency holds each node's mean request-response latency for
	// this window in seconds (only when RecordNICLatency is set; NaNs
	// excluded, nodes with no tracked pairs omitted).
	NICLatency []float64
}

// Options configures what each tick records beyond class totals.
type Options struct {
	Period             sim.Time
	RecordRouterRatios bool
	RecordNICLatency   bool
	// Stream drops the per-window RouterRatios/NICLatency sample slices
	// and keeps only the daemon-level online aggregates, so a long
	// campaign's monitoring footprint stays bounded no matter how many
	// windows elapse. The pooled distributions remain available through
	// RouterRatioAgg and NICLatencyAgg (which are maintained in either
	// mode); AllRouterRatios/AllNICLatencies return nil under Stream.
	Stream bool
}

// Daemon periodically samples a fabric's counters. Start schedules the
// first tick; Stop prevents further ticks (one already-scheduled tick may
// still fire and is recorded normally).
type Daemon struct {
	fab     *network.Fabric
	opts    Options
	prev    *network.Counters
	prevAt  sim.Time
	samples []Sample
	stopped bool
	// Pooled online distributions across all windows. Ticks run on the
	// single-threaded event kernel, so the fold order (window by window,
	// router/node index within a window) is deterministic.
	routerAgg *stats.Agg
	nicAgg    *stats.Agg
}

// Start launches a daemon on fab's kernel.
func Start(fab *network.Fabric, opts Options) *Daemon {
	if opts.Period <= 0 {
		opts.Period = sim.Second // LDMS default on Theta: 1 minute; ours: 1s windows
	}
	d := &Daemon{fab: fab, opts: opts, prev: fab.Counters().Snapshot(), prevAt: fab.Kernel().Now()}
	if opts.RecordRouterRatios {
		d.routerAgg = stats.NewAgg()
	}
	if opts.RecordNICLatency {
		d.nicAgg = stats.NewAgg()
	}
	d.arm()
	return d
}

func (d *Daemon) arm() {
	d.fab.Kernel().After(d.opts.Period, func() {
		if d.stopped {
			return
		}
		d.tick()
		d.arm()
	})
}

// tick records one window.
func (d *Daemon) tick() {
	now := d.fab.Kernel().Now()
	cur := d.fab.Counters().Snapshot()
	delta := cur.Sub(d.prev)
	s := Sample{At: now, Totals: delta.Aggregate(nil)}
	if d.opts.RecordRouterRatios {
		ratios := delta.RouterRatios(nil)
		d.routerAgg.AddAll(ratios)
		if !d.opts.Stream {
			s.RouterRatios = ratios
		}
	}
	if d.opts.RecordNICLatency {
		topo := d.fab.Topology()
		for n := 0; n < topo.NumNodes(); n++ {
			if delta.ORBCount[n] > 0 {
				lat := delta.ORBTimeSum[n] / sim.Time(delta.ORBCount[n])
				v := lat.Seconds()
				d.nicAgg.Add(v)
				if !d.opts.Stream {
					s.NICLatency = append(s.NICLatency, v)
				}
			}
		}
	}
	d.samples = append(d.samples, s)
	d.prev = cur
	d.prevAt = now
}

// Stop halts future sampling, records one final partial window, and
// drops the daemon's fabric reference. Every recorded Sample is already
// materialized (Snapshot and Sub deep-copy the counters), so a stopped
// daemon's results stay valid even after warm machine reuse rewinds and
// reruns the fabric underneath it — and any bug that ticks a stopped
// daemon fails loudly on the nil fabric instead of silently folding
// another run's counters into this run's samples.
func (d *Daemon) Stop() {
	if d.stopped {
		return
	}
	if d.fab.Kernel().Now() > d.prevAt {
		d.tick()
	}
	d.stopped = true
	d.fab = nil
	d.prev = nil
}

// Samples returns the recorded windows.
func (d *Daemon) Samples() []Sample { return d.samples }

// TotalsOverall sums class totals across all windows.
func (d *Daemon) TotalsOverall() network.ClassTotals {
	var ct network.ClassTotals
	for _, s := range d.samples {
		for c := topology.TileClass(0); c < topology.NumTileClasses; c++ {
			ct.Flits[c] += s.Totals.Flits[c]
			ct.Stalls[c] += s.Totals.Stalls[c]
		}
	}
	return ct
}

// RouterRatioAgg returns the pooled per-router per-window ratio
// distribution across all windows (nil when RecordRouterRatios unset;
// *stats.Agg reads are nil-safe).
func (d *Daemon) RouterRatioAgg() *stats.Agg { return d.routerAgg }

// NICLatencyAgg returns the pooled per-NIC mean-latency distribution
// across all windows (nil when RecordNICLatency unset).
func (d *Daemon) NICLatencyAgg() *stats.Agg { return d.nicAgg }

// AllRouterRatios concatenates router-ratio samples across windows (the
// population behind the paper's Fig. 13 STALLS/FLITS panels). Empty when
// Options.Stream dropped the per-window slices — use RouterRatioAgg.
func (d *Daemon) AllRouterRatios() []float64 {
	var out []float64
	for _, s := range d.samples {
		out = append(out, s.RouterRatios...)
	}
	return out
}

// AllNICLatencies concatenates per-NIC mean-latency samples across windows
// (the population behind the paper's Fig. 14 percentiles). Empty when
// Options.Stream dropped the per-window slices — use NICLatencyAgg.
func (d *Daemon) AllNICLatencies() []float64 {
	var out []float64
	for _, s := range d.samples {
		out = append(out, s.NICLatency...)
	}
	return out
}
