package ldms

import (
	"testing"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testFabric(t *testing.T) (*network.Fabric, *sim.Kernel) {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	return network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), 1), k
}

// drip injects a message every interval until stop, keeping traffic
// flowing across sampling windows.
func drip(fab *network.Fabric, k *sim.Kernel, interval, stop sim.Time) {
	var tick func()
	n := topology.NodeID(0)
	tick = func() {
		if k.Now() >= stop {
			return
		}
		fab.Send(n, 20, 64*1024, routing.AD0)
		n = (n + 1) % 8
		k.After(interval, tick)
	}
	k.At(0, tick)
}

func TestDaemonSamples(t *testing.T) {
	fab, k := testFabric(t)
	d := Start(fab, Options{Period: sim.Millisecond, RecordRouterRatios: true, RecordNICLatency: true})
	drip(fab, k, 100*sim.Microsecond, 5*sim.Millisecond)
	k.At(6*sim.Millisecond, func() { d.Stop() })
	k.Run()
	samples := d.Samples()
	if len(samples) < 5 {
		t.Fatalf("samples = %d, want >= 5", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At <= samples[i-1].At {
			t.Fatal("sample times not increasing")
		}
	}
	// Early windows saw traffic.
	if samples[0].Totals.TotalFlits() == 0 {
		t.Fatal("first window empty despite traffic")
	}
	if len(d.AllRouterRatios()) == 0 {
		t.Fatal("no router ratios")
	}
	if len(d.AllNICLatencies()) == 0 {
		t.Fatal("no NIC latencies")
	}
	for _, l := range d.AllNICLatencies() {
		if l <= 0 {
			t.Fatal("nonpositive latency sample")
		}
	}
}

func TestDaemonStopHaltsSampling(t *testing.T) {
	fab, k := testFabric(t)
	d := Start(fab, Options{Period: sim.Millisecond})
	k.At(2500*sim.Microsecond, func() { d.Stop() })
	// Without Stop the daemon would keep the kernel alive forever; Run
	// returning at all proves the chain stops.
	end := k.Run()
	if end > 4*sim.Millisecond {
		t.Fatalf("kernel ran to %v after Stop", end)
	}
	n := len(d.Samples())
	d.Stop() // idempotent
	if len(d.Samples()) != n {
		t.Fatal("second Stop added samples")
	}
}

func TestDeltaWindows(t *testing.T) {
	// Counter deltas across windows must sum to the global counters.
	fab, k := testFabric(t)
	d := Start(fab, Options{Period: sim.Millisecond})
	drip(fab, k, 200*sim.Microsecond, 4*sim.Millisecond)
	k.At(8*sim.Millisecond, func() { d.Stop() })
	k.Run()
	total := d.TotalsOverall()
	global := fab.Counters().Aggregate(nil)
	if total.TotalFlits() != global.TotalFlits() {
		t.Fatalf("window sum %d != global %d", total.TotalFlits(), global.TotalFlits())
	}
}

func TestDefaultPeriod(t *testing.T) {
	fab, k := testFabric(t)
	d := Start(fab, Options{})
	if d.opts.Period != sim.Second {
		t.Fatalf("default period = %v", d.opts.Period)
	}
	d.Stop()
	k.Run()
}
