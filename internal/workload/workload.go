// Package workload models the production job mix of the paper's systems:
// the Theta job-size distribution behind Fig. 1 (≈40% of core-hours from
// 128-512 node jobs), job durations, and the traffic character of
// background jobs used to emulate production network noise.
package workload

import (
	"math/rand"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SizeBucket is one job-size class with its share of machine core-hours.
type SizeBucket struct {
	Nodes          int
	CoreHourWeight float64
}

// Mix is a job-size and duration distribution.
type Mix struct {
	Buckets []SizeBucket
	// MeanDuration is the mean job wallclock; durations are sampled
	// uniformly in [0.5, 1.5) x mean.
	MeanDuration sim.Time
}

// ThetaMix reproduces the paper's Fig. 1: the 128-512 node range carries
// ~40% of core-hours, with meaningful mass both below and far above.
func ThetaMix() Mix {
	return Mix{
		Buckets: []SizeBucket{
			{32, 0.03}, {64, 0.05},
			{128, 0.15}, {256, 0.15}, {384, 0.04}, {512, 0.06},
			{640, 0.07}, {896, 0.07}, {1024, 0.06},
			{1536, 0.10}, {2048, 0.08},
			{2816, 0.06}, {3456, 0.04}, {4224, 0.04},
		},
		MeanDuration: 2 * sim.Second, // scaled-down production hours
	}
}

// totalWeight sums core-hour weights.
func (m Mix) totalWeight() float64 {
	t := 0.0
	for _, b := range m.Buckets {
		t += b.CoreHourWeight
	}
	return t
}

// SampleJob draws one job instance. Instance frequency is core-hour weight
// divided by node count, so that core-hours (not job counts) follow the
// bucket weights.
func (m Mix) SampleJob(rng *rand.Rand) (nodes int, duration sim.Time) {
	total := 0.0
	for _, b := range m.Buckets {
		total += b.CoreHourWeight / float64(b.Nodes)
	}
	x := rng.Float64() * total
	nodes = m.Buckets[len(m.Buckets)-1].Nodes
	for _, b := range m.Buckets {
		x -= b.CoreHourWeight / float64(b.Nodes)
		if x <= 0 {
			nodes = b.Nodes
			break
		}
	}
	duration = sim.Time(float64(m.MeanDuration) * (0.5 + rng.Float64()))
	return nodes, duration
}

// CoreHourCCDF simulates a campaign of n jobs and returns the
// complementary CDF of core-hours over job size — the paper's Fig. 1.
func (m Mix) CoreHourCCDF(n int, rng *rand.Rand) []stats.CCDFPoint {
	sizes := make([]float64, n)
	hours := make([]float64, n)
	for i := 0; i < n; i++ {
		nodes, dur := m.SampleJob(rng)
		sizes[i] = float64(nodes)
		hours[i] = float64(nodes) * dur.Seconds()
	}
	return stats.WeightedCCDF(sizes, hours)
}

// FractionInRange returns the share of core-hours carried by jobs whose
// size lies in [lo, hi] — used to validate the 40% claim for 128-512.
func (m Mix) FractionInRange(lo, hi int) float64 {
	t := m.totalWeight()
	if t == 0 {
		return 0
	}
	in := 0.0
	for _, b := range m.Buckets {
		if b.Nodes >= lo && b.Nodes <= hi {
			in += b.CoreHourWeight
		}
	}
	return in / t
}

// TrafficClass describes how intense a background job's communication is.
type TrafficClass struct {
	Pattern  apps.NoisePattern
	MsgBytes int
	Gap      sim.Time
	Weight   float64
}

// DefaultTrafficClasses is the production-noise mixture: mostly moderate
// local and global traffic, a minority of heavy global flows and incast.
// Intensities average 1-2.5 GB/s per node — busy-production levels where
// adaptive routing decisions actually matter (an idle network makes every
// bias equivalent, see Section II-D of the paper).
func DefaultTrafficClasses() []TrafficClass {
	return []TrafficClass{
		{apps.NoiseUniform, 64 * 1024, 75 * sim.Microsecond, 0.45},
		{apps.NoiseShift, 64 * 1024, 100 * sim.Microsecond, 0.25},
		{apps.NoiseStencil, 64 * 1024, 75 * sim.Microsecond, 0.15},
		{apps.NoiseUniform, 128 * 1024, 175 * sim.Microsecond, 0.10},
		{apps.NoiseHotspot, 32 * 1024, 200 * sim.Microsecond, 0.05},
	}
}

// SampleTraffic draws one traffic class according to the weights.
func SampleTraffic(classes []TrafficClass, rng *rand.Rand) TrafficClass {
	total := 0.0
	for _, c := range classes {
		total += c.Weight
	}
	x := rng.Float64() * total
	for _, c := range classes {
		x -= c.Weight
		if x <= 0 {
			return c
		}
	}
	return classes[len(classes)-1]
}
