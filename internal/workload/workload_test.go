package workload

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

func TestThetaMixShape(t *testing.T) {
	m := ThetaMix()
	// The paper: ~40% of core-hours from 128-512 node jobs.
	frac := m.FractionInRange(128, 512)
	if frac < 0.35 || frac > 0.45 {
		t.Errorf("128-512 core-hour fraction = %.2f, want ~0.40", frac)
	}
	if m.FractionInRange(1, 4224) < 0.999 {
		t.Error("weights do not cover all sizes")
	}
}

func TestSampleJobDistribution(t *testing.T) {
	m := ThetaMix()
	rng := rand.New(rand.NewSource(1))
	coreHours := map[int]float64{}
	total := 0.0
	for i := 0; i < 20000; i++ {
		nodes, dur := m.SampleJob(rng)
		if dur < m.MeanDuration/2 || dur > m.MeanDuration*3/2 {
			t.Fatalf("duration %v outside [0.5, 1.5) x mean", dur)
		}
		ch := float64(nodes) * dur.Seconds()
		coreHours[nodes] += ch
		total += ch
	}
	// Empirical core-hour share of the 128-512 range should approach the
	// configured 40%.
	in := 0.0
	for nodes, ch := range coreHours {
		if nodes >= 128 && nodes <= 512 {
			in += ch
		}
	}
	got := in / total
	if got < 0.32 || got > 0.48 {
		t.Errorf("sampled 128-512 share = %.3f, want ~0.40", got)
	}
}

func TestCoreHourCCDF(t *testing.T) {
	m := ThetaMix()
	rng := rand.New(rand.NewSource(2))
	ccdf := m.CoreHourCCDF(5000, rng)
	if len(ccdf) < 5 {
		t.Fatalf("ccdf has %d points", len(ccdf))
	}
	if ccdf[0].Frac < 0.999999 || ccdf[0].Frac > 1.000001 {
		t.Errorf("ccdf starts at %g", ccdf[0].Frac)
	}
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i].Frac > ccdf[i-1].Frac {
			t.Fatal("ccdf not monotone")
		}
	}
	// Sanity: there is mass above 1024 nodes (big jobs exist).
	last := ccdf[len(ccdf)-1]
	if last.X < 2048 {
		t.Errorf("largest sampled job only %g nodes", last.X)
	}
}

func TestSampleTraffic(t *testing.T) {
	classes := DefaultTrafficClasses()
	rng := rand.New(rand.NewSource(3))
	counts := map[apps.NoisePattern]int{}
	for i := 0; i < 5000; i++ {
		c := SampleTraffic(classes, rng)
		counts[c.Pattern]++
		if c.MsgBytes <= 0 || c.Gap <= 0 {
			t.Fatalf("bad class %+v", c)
		}
	}
	// Stencil (0.35) should be sampled more than hotspot (0.05).
	if counts[apps.NoiseStencil] <= counts[apps.NoiseHotspot] {
		t.Errorf("sampling weights broken: %v", counts)
	}
}

func TestSampleTrafficSingleClass(t *testing.T) {
	only := []TrafficClass{{apps.NoiseUniform, 1024, sim.Microsecond, 1}}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		if c := SampleTraffic(only, rng); c.Pattern != apps.NoiseUniform {
			t.Fatal("single-class sampling broken")
		}
	}
}
