package sim

import (
	"fmt"
)

// Handler receives typed events scheduled with AtEvent/AfterEvent. It is
// the allocation-free alternative to closure callbacks: the scheduler
// stores a registered handler's index plus a small scalar payload inline
// in the event, so hot model code (the network fabric) schedules without
// touching the heap. kind discriminates event types within one handler; a
// and b carry whatever the handler needs to find its state again (indexes
// into model-owned arenas, typically).
type Handler interface {
	HandleEvent(kind uint8, a, b int64)
}

// HandlerID names a handler registered with RegisterHandler. IDs are
// stored in events instead of the interface value itself so the event
// struct stays small and carries only one pointer word.
type HandlerID int32

// Typed-event payload packing. The whole (kind, handler, a, b) payload is
// packed into one uint64 so the event struct is exactly 32 bytes with a
// single pointer field: structs with pointers that stay ≤32 bytes are
// copied with inline moves, while anything larger goes through a
// typedmemmove call per copy — measured at 3× the per-event cost on the
// heap's sift swaps, the hottest loop in the simulator. The packing caps a
// kernel at 256 handlers, 256 kinds per handler, and payload scalars in
// [0, 2^24); AtEvent panics past any of these limits (they are far above
// what any realistic fabric needs — a and b index servers and live
// packets).
const (
	payloadBits = 24
	maxPayload  = 1<<payloadBits - 1
	maxHandlers = 256
)

// event is one scheduled callback: either a closure (fn) or, when fn is
// nil, the packed typed payload in pay. Keep this struct at 32 bytes (see
// above) — every push/pop sift swap copies it.
type event struct {
	t   Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
	pay uint64 // kind<<56 | handler<<48 | a<<24 | b
}

// less orders events by (t, seq): deterministic FIFO among equal times.
func (e *event) less(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// eventHeap is an inline 4-ary min-heap of event values. A 4-ary layout
// halves the tree depth of sift-down (the hot operation in a DES where
// most pushes are near-future) and avoids container/heap's interface
// boxing; together with the same-timestamp band below it is the hottest
// structure in the simulator.
type eventHeap []event

//simlint:hotpath
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	s := *h
	for i > 0 {
		parent := (i - 1) / 4
		if !s[i].less(&s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

//simlint:hotpath
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = event{} // release the closure for GC
	s = s[:last]
	*h = s
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= len(s) {
			break
		}
		min := first
		end := first + 4
		if end > len(s) {
			end = len(s)
		}
		for c := first + 1; c < end; c++ {
			if s[c].less(&s[min]) {
				min = c
			}
		}
		if !s[min].less(&s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// bandEntry is one event in the same-timestamp band: a callback known to
// fire at the current virtual time, so it carries neither a timestamp nor
// a sequence number (FIFO position in the band IS its sequence order).
type bandEntry struct {
	fn  func()
	pay uint64
}

// band is the same-timestamp insertion band: a FIFO ring of events
// scheduled for the CURRENT virtual time. Scheduling at t == now is the
// hot degenerate case of a DES heap — zero-delay wakes, signal fires, and
// proc handoffs all land there, and pushing them through the 4-ary heap
// costs a full sift up and a full sift down each even though their
// ordering is forced (they always run after everything already queued at
// now, in scheduling order). The band makes them two pointer moves
// instead. The drain rule in step preserves exact (t, seq) order: heap
// events at the current time were all scheduled before now advanced — so
// with strictly smaller sequence numbers than any band entry — and run
// first; band entries then run in append order. The band fully drains
// before virtual time advances, so the backing array is reused forever
// after warmup.
type band struct {
	buf  []bandEntry
	head int
}

func (b *band) empty() bool { return b.head == len(b.buf) }
func (b *band) len() int    { return len(b.buf) - b.head }

//simlint:hotpath
func (b *band) push(e bandEntry) { b.buf = append(b.buf, e) }

//simlint:hotpath
func (b *band) take() bandEntry {
	e := b.buf[b.head]
	b.buf[b.head] = bandEntry{} // release the closure for GC
	b.head++
	if b.head == len(b.buf) {
		b.buf = b.buf[:0]
		b.head = 0
	}
	return e
}

func (b *band) reset() {
	for i := range b.buf {
		b.buf[i] = bandEntry{}
	}
	b.buf = b.buf[:0]
	b.head = 0
}

// tailCall is a typed event deferred to run immediately after the current
// event's handler returns (see TryTailCall).
type tailCall struct {
	h    HandlerID
	kind uint8
	a, b int64
}

// Kernel is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with NewKernel. A Kernel is not
// safe for concurrent use: all model code must run on the kernel goroutine
// or inside a Proc it controls.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	band    band       // events at t == now, FIFO (see band)
	tail    []tailCall // deferred continuations of the current event
	inEvent bool       // an event handler is currently executing
	// handlers is the typed-event dispatch table, by HandlerID.
	handlers []Handler //simlint:resetsafe registrations survive Reset by contract: warm fabrics keep their HandlerID
	stopped  bool
	parked   chan struct{} //simlint:resetsafe channel identity; parked procs forbid Reset anyway (panic guard)
	nProcs   int           //simlint:resetsafe live procs; Reset panics unless zero, so zero is preserved
	// tieArmed is true when the clock's current reading was set by a heap
	// event (as opposed to an idle RunUntil advance or a fresh kernel),
	// so a further heap event at the same reading is a genuine
	// same-timestamp tie for KernelStats.TimestampTies.
	tieArmed bool
	stats    KernelStats
}

// KernelStats counts kernel-level activity, useful in benchmarks and tests.
type KernelStats struct {
	EventsExecuted uint64
	// TailCalls counts typed events that ran as direct continuations of
	// the event that scheduled them (TryTailCall) instead of through the
	// queue. They do the same model work as a zero-delay event but are
	// not counted in EventsExecuted, which tallies queue traffic.
	TailCalls    uint64
	ProcsSpawned uint64
	ProcSwitches uint64
	// TimestampTies counts heap events that fired at a virtual time some
	// earlier heap event had already fired at — i.e., members beyond the
	// first of each exact-timestamp group. Such groups are the only
	// places where scheduling order (the seq tiebreak) rather than
	// physics decides execution order, which makes this the detector for
	// "this run's outcome may depend on event-scheduling details":
	// network.FuseLinks changes WHERE its events are scheduled, so its
	// equivalence tests assert byte-identity exactly when both runs
	// report zero ties. Deliberate zero-delay continuations (the
	// same-timestamp band, tail calls) are not counted — they follow
	// their trigger by construction.
	TimestampTies uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Stats returns a copy of the kernel's activity counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) + k.band.len() }

// panicPast reports scheduling before the current time. Outlined from the
// schedulers so the hot typed-event path stays free of fmt in its body.
//
//simlint:cold panic formatting on a model-bug path that never returns
func (k *Kernel) panicPast(t Time) {
	panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
}

// panicPayload reports a typed-event scalar outside the packable range.
//
//simlint:cold panic formatting on a model-bug path that never returns
func panicPayload(a, b int64) {
	panic(fmt.Sprintf("sim: typed-event payload (%d, %d) outside [0, 2^%d)", a, b, payloadBits))
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a model bug, and silently reordering would break
// determinism guarantees.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		k.panicPast(t)
	}
	if t == k.now {
		k.band.push(bandEntry{fn: fn})
		return
	}
	k.seq++
	k.events.push(event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// RegisterHandler adds h to the kernel's typed-event dispatch table and
// returns its id. Models register once at construction and schedule with
// the id; registration itself may allocate (table growth) but scheduling
// never does.
func (k *Kernel) RegisterHandler(h Handler) HandlerID {
	if len(k.handlers) >= maxHandlers {
		panic("sim: too many registered handlers")
	}
	k.handlers = append(k.handlers, h)
	return HandlerID(len(k.handlers) - 1)
}

// AtEvent schedules a typed event at absolute time t. It is the
// allocation-free fast path: the handler id and scalar payload are stored
// inline in the event queue, so (unlike At, whose closures escape) nothing
// is heap-allocated in steady state. Ordering is identical to At: events
// fire in (time, scheduling sequence) order regardless of which API queued
// them.
//
//simlint:hotpath
func (k *Kernel) AtEvent(t Time, h HandlerID, kind uint8, a, b int64) {
	if t < k.now {
		k.panicPast(t)
	}
	if uint64(a) > maxPayload || uint64(b) > maxPayload {
		panicPayload(a, b)
	}
	pay := uint64(kind)<<56 | uint64(h)<<48 | uint64(a)<<payloadBits | uint64(b)
	if t == k.now {
		k.band.push(bandEntry{pay: pay})
		return
	}
	k.seq++
	k.events.push(event{t: t, seq: k.seq, pay: pay})
}

// TryTailCall defers a typed event to run as a direct continuation: it
// fires immediately after the currently executing event's handler returns,
// without ever entering the queue. That is exactly the queue position a
// zero-delay AtEvent would occupy — but ONLY when nothing else is pending
// at the current timestamp, so the call succeeds (and returns true) only
// then. On false the caller must schedule normally. Multiple tail calls
// registered during one event run in registration order, still matching
// zero-delay event semantics.
//
//simlint:hotpath
func (k *Kernel) TryTailCall(h HandlerID, kind uint8, a, b int64) bool {
	if !k.inEvent || !k.band.empty() {
		return false
	}
	if len(k.events) > 0 && k.events[0].t == k.now {
		return false
	}
	k.tail = append(k.tail, tailCall{h: h, kind: kind, a: a, b: b})
	return true
}

// AfterEvent schedules a typed event d after the current time.
//
//simlint:hotpath
func (k *Kernel) AfterEvent(d Time, h HandlerID, kind uint8, a, b int64) {
	k.AtEvent(k.now+d, h, kind, a, b)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// exec runs one event callback, then drains any tail calls it (or its
// continuations) registered.
//
//simlint:hotpath
func (k *Kernel) exec(fn func(), pay uint64) {
	k.stats.EventsExecuted++
	k.inEvent = true
	if fn != nil {
		fn()
	} else {
		k.handlers[pay>>48&0xff].HandleEvent(uint8(pay>>56),
			int64(pay>>payloadBits&maxPayload), int64(pay&maxPayload))
	}
	// Tail calls run back-to-back with the event that registered them;
	// appends during the loop (a continuation registering its own tail
	// call) extend it in order.
	for i := 0; i < len(k.tail); i++ {
		tc := k.tail[i]
		k.stats.TailCalls++
		k.handlers[tc.h].HandleEvent(tc.kind, tc.a, tc.b)
	}
	k.tail = k.tail[:0]
	k.inEvent = false
}

// step executes the earliest event. Returns false when no events remain.
//
// Batch drain of the current timestamp: heap events at t == now first
// (they were scheduled before now advanced, so they hold the smaller
// sequence numbers), then the band in FIFO order — exact (t, seq) order
// without one sift per zero-delay event. Virtual time advances only once
// both are empty.
//
//simlint:hotpath
func (k *Kernel) step() bool {
	if len(k.events) > 0 && k.events[0].t == k.now {
		// A heap event at the clock's current reading: if an earlier heap
		// event already fired at this exact time, seq order is deciding.
		if k.tieArmed {
			k.stats.TimestampTies++
		}
		e := k.events.pop()
		k.exec(e.fn, e.pay)
		return true
	}
	if !k.band.empty() {
		e := k.band.take()
		k.exec(e.fn, e.pay)
		return true
	}
	if len(k.events) == 0 {
		return false
	}
	e := k.events.pop()
	k.now = e.t
	k.tieArmed = true
	k.exec(e.fn, e.pay)
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.step() {
	}
	return k.now
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to deadline (even if idle) and returns. Events scheduled beyond the
// deadline remain queued.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for !k.stopped {
		if k.band.empty() && (len(k.events) == 0 || k.events[0].t > deadline) {
			break
		}
		k.step()
	}
	if k.now < deadline {
		k.now = deadline
		k.tieArmed = false // idle advance: nothing fired at this reading
	}
	return k.now
}

// LiveProcs returns the number of spawned procs that have not finished.
// A fully drained kernel with live procs means model code is parked on a
// signal that never fired; such a kernel cannot be safely Reset.
func (k *Kernel) LiveProcs() int { return k.nProcs }

// Reset rewinds the kernel to time zero with an empty queue and zeroed
// stats, retaining registered handlers and all queue capacity. It is the
// reuse path that lets one warm kernel serve many simulation runs without
// reallocating its event storage; handler IDs issued before the reset
// stay valid. Reset panics if live procs remain — their goroutines are
// parked inside model code and would corrupt a new run.
func (k *Kernel) Reset() {
	if k.nProcs != 0 {
		panic(fmt.Sprintf("sim: Reset with %d live procs", k.nProcs))
	}
	for i := range k.events {
		k.events[i] = event{} // release closures for GC
	}
	k.events = k.events[:0]
	k.band.reset()
	k.tail = k.tail[:0]
	k.inEvent = false
	k.now, k.seq = 0, 0
	k.stopped = false
	k.tieArmed = false
	k.stats = KernelStats{}
}
