package sim

import "testing"

// TestBandFIFOOrderAmongEqualTimestamps pins the same-timestamp drain rule
// against the pre-band reference semantics: events fire in exact (t, seq)
// order no matter whether they sit in the heap (scheduled before virtual
// time reached t) or in the band (scheduled at t == now, from inside an
// event). Heap entries at the current time carry the smaller sequence
// numbers, so they must all run before any band entry, and each group runs
// FIFO within itself.
func TestBandFIFOOrderAmongEqualTimestamps(t *testing.T) {
	k := NewKernel()
	var order []int
	at := func(tm Time, id int) {
		k.At(tm, func() { order = append(order, id) })
	}

	// Three events pre-queued at t=10 (heap, seqs 1..3). The first one
	// schedules two zero-delay events (band) plus a future event; the
	// second schedules one more zero-delay event after those.
	k.At(10, func() {
		order = append(order, 1)
		at(10, 4) // band
		at(12, 7) // heap, future
		at(10, 5) // band
	})
	k.At(10, func() {
		order = append(order, 2)
		at(10, 6) // band, after 4 and 5
	})
	at(10, 3)
	k.Run()

	// Reference (t, seq) order: heap entries 1,2,3 first (scheduled before
	// now reached 10), then band entries 4,5,6 in scheduling order, then 7
	// at t=12.
	want := []int{1, 2, 3, 4, 5, 6, 7}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", k.Pending())
	}
}

// TestBandTypedAndClosureInterleave checks the band preserves order across
// the two scheduling APIs: typed events and closures scheduled at the
// current time run in scheduling order, exactly as zero-delay heap events
// did before the band existed.
func TestBandTypedAndClosureInterleave(t *testing.T) {
	k := NewKernel()
	var order []int
	rec := k.RegisterHandler(&recordingHandler{order: &order})
	k.At(5, func() {
		order = append(order, 0)
		k.AfterEvent(0, rec, 0, 1, 0)                   // band, typed
		k.After(0, func() { order = append(order, 2) }) // band, closure
		k.AtEvent(5, rec, 0, 3, 0)                      // band, typed
	})
	k.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestBandDeepNesting drains long zero-delay chains: each band entry
// schedules the next at the same timestamp, so the whole cascade runs
// without virtual time advancing.
func TestBandDeepNesting(t *testing.T) {
	k := NewKernel()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 1000 {
			k.After(0, chain)
		}
	}
	k.At(7, chain)
	k.Run()
	if n != 1000 {
		t.Fatalf("chain ran %d times, want 1000", n)
	}
	if k.Now() != 7 {
		t.Fatalf("now = %v, want 7 (zero-delay chain must not advance time)", k.Now())
	}
}

// tailHandler records typed-event deliveries and can register follow-up
// tail calls from inside a handler.
type tailHandler struct {
	k     *Kernel
	id    HandlerID
	order *[]int
	chain int // while >0, each delivery tail-calls a successor
}

func (h *tailHandler) HandleEvent(kind uint8, a, b int64) {
	*h.order = append(*h.order, int(a))
	if h.chain > 0 {
		h.chain--
		if !h.k.TryTailCall(h.id, kind, a+100, b) {
			h.k.AfterEvent(0, h.id, kind, a+100, b)
		}
	}
}

// TestTailCallOrdering checks TryTailCall runs continuations in
// registration order immediately after the current event, refuses when
// anything is pending at the current timestamp (where a queued zero-delay
// event would NOT be next), and books them as TailCalls rather than
// EventsExecuted.
func TestTailCallOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	h := &tailHandler{k: k, order: &order}
	h.id = k.RegisterHandler(h)

	k.At(10, func() {
		// Nothing else is queued at t=10, so the continuation slot is
		// exactly where a zero-delay event would land: both succeed.
		order = append(order, 1)
		if !k.TryTailCall(h.id, 0, 2, 0) {
			t.Error("tail call refused with empty queue")
		}
		if !k.TryTailCall(h.id, 0, 3, 0) {
			t.Error("second tail call refused")
		}
	})
	k.At(20, func() {
		// Another event is queued at t=20 (the one below), so a tail call
		// here would run before it despite having a larger virtual seq.
		order = append(order, 4)
		if k.TryTailCall(h.id, 0, 99, 0) {
			t.Error("tail call accepted with an event pending at now")
		}
	})
	k.At(20, func() { order = append(order, 5) })
	k.Run()

	want := []int{1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("ran %d handlers, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	st := k.Stats()
	if st.TailCalls != 2 {
		t.Fatalf("TailCalls = %d, want 2", st.TailCalls)
	}
	if st.EventsExecuted != 3 {
		t.Fatalf("EventsExecuted = %d, want 3 (tail calls bypass the queue)", st.EventsExecuted)
	}
}

// TestTailCallChained checks a tail-called handler can itself tail-call:
// the continuation list extends while draining, preserving order.
func TestTailCallChained(t *testing.T) {
	k := NewKernel()
	var order []int
	h := &tailHandler{k: k, order: &order, chain: 3}
	h.id = k.RegisterHandler(h)
	k.AtEvent(1, h.id, 0, 0, 0)
	k.Run()
	want := []int{0, 100, 200, 300}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if st := k.Stats(); st.TailCalls != 3 || st.EventsExecuted != 1 {
		t.Fatalf("stats = %+v, want 3 tail calls / 1 executed", st)
	}
}

// TestTailCallRefusedOutsideEvent pins that TryTailCall outside event
// context falls back to normal scheduling — there is no current event to
// continue from.
func TestTailCallRefusedOutsideEvent(t *testing.T) {
	k := NewKernel()
	var order []int
	h := &tailHandler{k: k, order: &order}
	h.id = k.RegisterHandler(h)
	if k.TryTailCall(h.id, 0, 1, 0) {
		t.Fatal("tail call accepted outside an event")
	}
}

// TestKernelReset checks Reset rewinds a used kernel to a state
// behaviorally identical to a fresh one: same execution order, same
// stats, same final time, with handler IDs surviving.
func TestKernelReset(t *testing.T) {
	run := func(k *Kernel, rec HandlerID, order *[]int) (Time, KernelStats) {
		*order = (*order)[:0]
		k.At(10, func() {
			*order = append(*order, 1)
			k.After(0, func() { *order = append(*order, 2) })
		})
		k.AtEvent(20, rec, 0, 3, 0)
		end := k.Run()
		return end, k.Stats()
	}

	fresh := NewKernel()
	var freshOrder []int
	freshRec := fresh.RegisterHandler(&recordingHandler{order: &freshOrder})
	freshEnd, freshStats := run(fresh, freshRec, &freshOrder)

	warm := NewKernel()
	var warmOrder []int
	warmRec := warm.RegisterHandler(&recordingHandler{order: &warmOrder})
	// Dirty the kernel: run a different workload, leave an event queued,
	// then reset.
	warm.At(999, func() {})
	warm.At(1, func() { warm.After(0, func() {}) })
	warm.RunUntil(5)
	warm.Reset()
	if warm.Now() != 0 || warm.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d, want 0/0", warm.Now(), warm.Pending())
	}
	warmEnd, warmStats := run(warm, warmRec, &warmOrder)

	if warmEnd != freshEnd {
		t.Fatalf("end time warm=%v fresh=%v", warmEnd, freshEnd)
	}
	if warmStats != freshStats {
		t.Fatalf("stats warm=%+v fresh=%+v", warmStats, freshStats)
	}
	for i := range freshOrder {
		if i >= len(warmOrder) || warmOrder[i] != freshOrder[i] {
			t.Fatalf("order warm=%v fresh=%v", warmOrder, freshOrder)
		}
	}
}

// TestResetLiveProcsPanics pins the safety check: resetting a kernel with
// a parked proc would leave its goroutine wedged inside old model state.
func TestResetLiveProcsPanics(t *testing.T) {
	k := NewKernel()
	sig := NewSignal()
	k.Spawn(func(p *Proc) { p.Wait(sig) }) // parks forever
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("Reset with a live proc did not panic")
		}
	}()
	k.Reset()
}
