package sim

// Proc is a coroutine running on the kernel: a goroutine that alternates
// control with the kernel so that exactly one of (kernel, some proc) is
// executing at any instant. Procs give model code (MPI ranks, traffic
// generators) a natural blocking style — Sleep, Wait — on top of the
// event queue, with fully deterministic scheduling.
type Proc struct {
	k      *Kernel
	resume chan struct{}
	// resumeFn is the one closure that hands control to this proc,
	// allocated once at spawn. Everything that schedules a resume —
	// SpawnAt, Sleep, Signal.Fire — reuses it, so waking a proc never
	// allocates: Signal.Fire sits on the fabric's packet-delivery hot
	// path, where a per-waiter closure would be a heap hit per message.
	resumeFn func()
	done     bool
}

// Kernel returns the kernel this proc runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn starts fn as a new proc at the current virtual time. fn begins
// executing when the kernel reaches the spawn event; Spawn itself returns
// immediately.
func (k *Kernel) Spawn(fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, fn)
}

// SpawnAt starts fn as a new proc at absolute virtual time t.
func (k *Kernel) SpawnAt(t Time, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, resume: make(chan struct{})}
	p.resumeFn = func() { k.switchTo(p) }
	k.nProcs++
	k.stats.ProcsSpawned++
	//simlint:allow detrand coroutine handoff: exactly one of (kernel, proc) runs at a time, order fixed by the event queue
	go func() {
		<-p.resume // wait for the kernel to hand us control the first time
		fn(p)
		p.done = true
		k.nProcs--
		k.parked <- struct{}{} // final handback; never resumed again
	}()
	k.At(t, p.resumeFn)
	return p
}

// switchTo transfers control from the kernel to p and blocks until p parks
// (or finishes). Must only be called from kernel context (inside an event).
func (k *Kernel) switchTo(p *Proc) {
	k.stats.ProcSwitches++
	p.resume <- struct{}{}
	<-k.parked
}

// park transfers control from the proc back to the kernel and blocks until
// the kernel resumes this proc again.
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.resume
}

// Sleep blocks the proc for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Even a zero-length sleep yields: the proc re-enters the event
		// queue so same-time events scheduled earlier run first.
		d = 0
	}
	p.k.After(d, p.resumeFn)
	p.park()
}

// Yield lets all other events at the current timestamp run, then resumes.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait blocks the proc until s fires. If s has already fired it returns
// immediately without yielding.
func (p *Proc) Wait(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitAll blocks until every signal in sigs has fired.
func (p *Proc) WaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Wait(s)
	}
}

// Signal is a one-shot broadcast event. The zero value is ready to use.
// Procs Wait on it; any model code (kernel or proc context) Fires it.
// Waiters are resumed via fresh kernel events, preserving determinism.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and schedules every waiter to resume at the
// current virtual time. Firing an already-fired signal is a no-op. Fire is
// allocation-free: each waiter is scheduled via its spawn-time resumeFn,
// so firing from the packet-delivery hot path never touches the heap.
//
//simlint:hotpath
func (s *Signal) Fire(k *Kernel) {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		k.At(k.now, w.resumeFn)
	}
	s.waiters = nil
}
