// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock measured in picoseconds and a binary-heap
// event queue. Model code runs either as plain scheduled callbacks or as
// coroutine Procs (goroutines that hand control back and forth with the
// kernel, so exactly one goroutine is ever runnable). All ordering is
// deterministic: events fire in (time, insertion sequence) order.
package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in picoseconds.
//
// Picosecond resolution lets us represent multi-GB/s link serialization
// delays exactly while still covering ~106 days of virtual time in an int64.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time with an adaptive unit, e.g. "1.25ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	}
}
