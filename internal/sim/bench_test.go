package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel event dispatch: the floor
// cost of everything built on the simulator.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Nanosecond, tick)
		}
	}
	b.ResetTimer()
	k.At(0, tick)
	k.Run()
}

// BenchmarkHeapChurn measures scheduling with a deep pending queue, the
// regime of a busy fabric.
func BenchmarkHeapChurn(b *testing.B) {
	k := NewKernel()
	// Pre-fill with far-future events to keep the heap deep.
	for i := 0; i < 4096; i++ {
		k.At(Time(1_000_000+i)*Nanosecond, func() {})
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Time(n%7+1)*Nanosecond, tick)
		}
	}
	b.ResetTimer()
	k.At(0, tick)
	k.RunUntil(999_999 * Nanosecond)
}

// BenchmarkProcSwitch measures coroutine handoff cost (two goroutine
// channel transfers per blocking operation).
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run()
}
