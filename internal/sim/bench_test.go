package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel event dispatch: the floor
// cost of everything built on the simulator.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Nanosecond, tick)
		}
	}
	b.ResetTimer()
	k.At(0, tick)
	k.Run()
}

// BenchmarkHeapChurn measures scheduling with a deep pending queue, the
// regime of a busy fabric.
func BenchmarkHeapChurn(b *testing.B) {
	k := NewKernel()
	// Pre-fill with far-future events to keep the heap deep.
	for i := 0; i < 4096; i++ {
		k.At(Time(1_000_000+i)*Nanosecond, func() {})
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Time(n%7+1)*Nanosecond, tick)
		}
	}
	b.ResetTimer()
	k.At(0, tick)
	k.RunUntil(999_999 * Nanosecond)
}

// benchHandler self-reschedules through the typed-event fast path until
// it has fired n times.
type benchHandler struct {
	k  *Kernel
	id HandlerID
	i  int
	n  int
}

func (h *benchHandler) HandleEvent(kind uint8, a, b int64) {
	h.i++
	if h.i < h.n {
		h.k.AfterEvent(Nanosecond, h.id, kind, a, b)
	}
}

// BenchmarkTypedEventThroughput measures the typed-event dispatch path
// (AfterEvent + HandleEvent): same event stream as
// BenchmarkEventThroughput but with scalar payloads instead of closures,
// so the difference between the two is the closure-boxing cost the fabric
// no longer pays. Run with -benchmem: this path must report 0 allocs/op.
func BenchmarkTypedEventThroughput(b *testing.B) {
	k := NewKernel()
	h := &benchHandler{k: k, n: b.N}
	h.id = k.RegisterHandler(h)
	b.ReportAllocs()
	b.ResetTimer()
	k.AtEvent(0, h.id, 0, 0, 0)
	k.Run()
}

// BenchmarkProcSwitch measures coroutine handoff cost (two goroutine
// channel transfers per blocking operation).
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run()
}
