package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{1500 * Nanosecond, "1.5us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-2 * Second, "-2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(10*Nanosecond, func() { order = append(order, 2) })
	k.At(5*Nanosecond, func() { order = append(order, 1) })
	k.At(10*Nanosecond, func() { order = append(order, 3) }) // same time: FIFO
	k.At(20*Nanosecond, func() { order = append(order, 4) })
	end := k.Run()
	if end != 20*Nanosecond {
		t.Fatalf("end time = %v, want 20ns", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*Nanosecond, func() {})
	})
	k.Run()
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10*Nanosecond, func() { fired++ })
	k.At(30*Nanosecond, func() { fired++ })
	k.RunUntil(20 * Nanosecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 20*Nanosecond {
		t.Fatalf("now = %v, want 20ns (idle advance)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if fired != 2 || k.Now() != 30*Nanosecond {
		t.Fatalf("after Run: fired=%d now=%v", fired, k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.At(1*Nanosecond, func() { n++; k.Stop() })
	k.At(2*Nanosecond, func() { n++ })
	k.Run()
	if n != 1 {
		t.Fatalf("n = %d, want 1 (Stop should halt)", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(1*Nanosecond, recurse)
		}
	}
	k.At(0, recurse)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 99*Nanosecond {
		t.Fatalf("now = %v, want 99ns", k.Now())
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Spawn(func(p *Proc) {
		p.Sleep(5 * Microsecond)
		wake = p.Now()
	})
	k.Run()
	if wake != 5*Microsecond {
		t.Fatalf("woke at %v, want 5us", wake)
	}
}

func TestProcSignal(t *testing.T) {
	k := NewKernel()
	s := NewSignal()
	var got []string
	k.Spawn(func(p *Proc) {
		p.Wait(s)
		got = append(got, "waiter@"+p.Now().String())
	})
	k.Spawn(func(p *Proc) {
		p.Sleep(3 * Nanosecond)
		got = append(got, "firer")
		s.Fire(k)
	})
	k.Run()
	if len(got) != 2 || got[0] != "firer" || got[1] != "waiter@3ns" {
		t.Fatalf("got = %v", got)
	}
}

func TestSignalAlreadyFired(t *testing.T) {
	k := NewKernel()
	s := NewSignal()
	s.Fire(k)
	s.Fire(k) // double-fire is a no-op
	ran := false
	k.Spawn(func(p *Proc) {
		p.Wait(s) // returns immediately
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("proc waiting on fired signal never ran")
	}
}

func TestWaitAll(t *testing.T) {
	k := NewKernel()
	a, b, c := NewSignal(), NewSignal(), NewSignal()
	var done Time
	k.Spawn(func(p *Proc) {
		p.WaitAll(a, b, c)
		done = p.Now()
	})
	k.At(1*Nanosecond, func() { b.Fire(k) })
	k.At(2*Nanosecond, func() { a.Fire(k) })
	k.At(7*Nanosecond, func() { c.Fire(k) })
	k.Run()
	if done != 7*Nanosecond {
		t.Fatalf("WaitAll completed at %v, want 7ns", done)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			d := Time(rng.Intn(1000)) * Nanosecond
			k.Spawn(func(p *Proc) {
				p.Sleep(d)
				order = append(order, i)
			})
		}
		k.Run()
		return order
	}
	a, b := run(42), run(42)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a, b)
		}
	}
}

func TestProcChain(t *testing.T) {
	// A chain of procs each waking the next via a signal: exercises
	// proc→proc control transfer through the kernel.
	k := NewKernel()
	const n = 64
	sigs := make([]*Signal, n+1)
	for i := range sigs {
		sigs[i] = NewSignal()
	}
	hops := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(func(p *Proc) {
			p.Wait(sigs[i])
			hops++
			p.Sleep(1 * Nanosecond)
			sigs[i+1].Fire(k)
		})
	}
	k.At(0, func() { sigs[0].Fire(k) })
	k.Run()
	if hops != n {
		t.Fatalf("hops = %d, want %d", hops, n)
	}
	if !sigs[n].Fired() {
		t.Fatal("final signal not fired")
	}
	if k.Now() != Time(n)*Nanosecond {
		t.Fatalf("now = %v, want %dns", k.Now(), n)
	}
}

func TestKernelStats(t *testing.T) {
	k := NewKernel()
	k.Spawn(func(p *Proc) { p.Sleep(1 * Nanosecond) })
	k.At(0, func() {})
	k.Run()
	st := k.Stats()
	if st.ProcsSpawned != 1 {
		t.Fatalf("ProcsSpawned = %d", st.ProcsSpawned)
	}
	if st.EventsExecuted < 2 {
		t.Fatalf("EventsExecuted = %d, want >= 2", st.EventsExecuted)
	}
	if st.ProcSwitches < 2 {
		t.Fatalf("ProcSwitches = %d, want >= 2", st.ProcSwitches)
	}
}

// TestTimestampTies pins the tie detector's semantics: only heap events
// beyond the first of an exact-timestamp group count; deliberate
// zero-delay continuations (the same-timestamp band) and idle RunUntil
// clock advances do not.
func TestTimestampTies(t *testing.T) {
	k := NewKernel()
	k.At(5*Nanosecond, func() {
		k.At(k.Now(), func() {}) // zero-delay continuation: band, not a tie
	})
	k.At(5*Nanosecond, func() {}) // second heap event at 5ns: one tie
	k.At(5*Nanosecond, func() {}) // third: another
	k.At(7*Nanosecond, func() {}) // fresh time: not a tie
	k.Run()
	if got := k.Stats().TimestampTies; got != 2 {
		t.Fatalf("TimestampTies = %d, want 2", got)
	}

	// An idle RunUntil advance sets the clock without any event firing at
	// the new reading; later events must not count against it.
	k.Reset()
	k.RunUntil(100 * Nanosecond)
	k.At(150*Nanosecond, func() {})
	k.Run()
	if got := k.Stats().TimestampTies; got != 0 {
		t.Fatalf("TimestampTies after idle advance = %d, want 0", got)
	}
}

// Property: for any batch of (delay, id) pairs, procs complete in
// nondecreasing delay order, ties broken by spawn order.
func TestProcOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 200 {
			delays = delays[:200]
		}
		k := NewKernel()
		type rec struct {
			d  Time
			id int
		}
		var finished []rec
		for i, d := range delays {
			i, dt := i, Time(d)*Nanosecond
			k.Spawn(func(p *Proc) {
				p.Sleep(dt)
				finished = append(finished, rec{dt, i})
			})
		}
		k.Run()
		if len(finished) != len(delays) {
			return false
		}
		for i := 1; i < len(finished); i++ {
			if finished[i].d < finished[i-1].d {
				return false
			}
			if finished[i].d == finished[i-1].d && finished[i].id < finished[i-1].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
