package sim

import "testing"

// countingHandler is a minimal typed-event consumer that optionally
// reschedules itself, driving a steady event stream with no closures.
type countingHandler struct {
	k     *Kernel
	id    HandlerID
	n     int
	chain int // while n < chain, each event schedules a successor
}

func (h *countingHandler) HandleEvent(kind uint8, a, b int64) {
	h.n++
	if h.n < h.chain {
		h.k.AfterEvent(Nanosecond, h.id, kind, a, b)
	}
}

// TestTypedEventDispatchAllocFree pins the kernel's typed-event fast path
// at zero allocations per dispatch in steady state: once the event heap
// has grown to its working size, scheduling and executing AtEvent/
// AfterEvent events must never touch the allocator. This is the
// foundation the fabric's zero-alloc packet path is built on; a
// regression here shows up as allocs-per-packet one layer up.
func TestTypedEventDispatchAllocFree(t *testing.T) {
	k := NewKernel()
	h := &countingHandler{k: k}
	h.id = k.RegisterHandler(h)

	// Warm the heap past the working depth of the measured loop.
	for i := 0; i < 1024; i++ {
		k.AtEvent(k.Now()+Time(i), h.id, 0, 0, 0)
	}
	k.Run()

	const perRun = 256
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < perRun; i++ {
			k.AfterEvent(Time(i%7), h.id, 0, int64(i), 0)
		}
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed event schedule+dispatch allocated %.2f times per %d events, want 0",
			allocs, perRun)
	}
}

// TestTypedEventOrdering checks that typed and closure events interleave
// in strict (time, scheduling sequence) order regardless of which API
// queued them.
func TestTypedEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	rec := k.RegisterHandler(&recordingHandler{order: &order})
	k.At(5, func() { order = append(order, 1) })
	k.AtEvent(5, rec, 0, 2, 0)
	k.At(5, func() { order = append(order, 3) })
	k.AtEvent(3, rec, 0, 0, 0)
	k.Run()
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

type recordingHandler struct{ order *[]int }

func (h *recordingHandler) HandleEvent(kind uint8, a, b int64) {
	*h.order = append(*h.order, int(a))
}

// TestSignalFireAllocFree pins Signal.Fire at zero allocations per fire
// in steady state. Fire runs on the fabric's packet-delivery hot path
// (every completed message fires its Done signal), and before proc
// resume closures were hoisted to spawn time it allocated one closure
// per waiter per fire — an interprocedural leak the per-function hotpath
// gate could not see (simlint's hotcall analyzer caught it). Signals are
// one-shot, so the test prepares one signal with parked waiters per
// AllocsPerRun round rather than reusing one.
func TestSignalFireAllocFree(t *testing.T) {
	k := NewKernel()
	const waiters = 8
	const rounds = 50
	// rounds+1: AllocsPerRun calls the body once for warmup (which also
	// grows the same-timestamp band to its working size) before measuring.
	sigs := make([]*Signal, rounds+1)
	for i := range sigs {
		s := NewSignal()
		sigs[i] = s
		for j := 0; j < waiters; j++ {
			k.Spawn(func(p *Proc) { p.Wait(s) })
		}
	}
	k.Run() // park every waiter on its signal

	next := 0
	allocs := testing.AllocsPerRun(rounds, func() {
		s := sigs[next]
		next++
		s.Fire(k)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("Signal.Fire allocated %.2f times per fire with %d waiters, want 0",
			allocs, waiters)
	}
}
