package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func buildTopo(t testing.TB, groups int) *topology.Topology {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(groups))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCompactAllocation(t *testing.T) {
	topo := buildTopo(t, 4)
	a := NewAllocator(topo)
	nodes, err := a.Alloc(8, Compact, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		if int(n) != i {
			t.Fatalf("compact allocation not contiguous: %v", nodes)
		}
	}
	// One group of the test config holds 16 nodes; 8 nodes span 1 group.
	if g := GroupsSpanned(topo, nodes); g != 1 {
		t.Fatalf("compact 8 nodes span %d groups", g)
	}
}

func TestCompactSkipsUsed(t *testing.T) {
	topo := buildTopo(t, 4)
	a := NewAllocator(topo)
	first, _ := a.Alloc(4, Compact, nil)
	second, _ := a.Alloc(4, Compact, nil)
	if second[0] != 4 {
		t.Fatalf("second allocation starts at %d", second[0])
	}
	a.Free(first)
	third, _ := a.Alloc(2, Compact, nil)
	if third[0] != 0 {
		t.Fatalf("freed nodes not reused: %v", third)
	}
}

func TestDispersedSpansGroups(t *testing.T) {
	topo := buildTopo(t, 4)
	a := NewAllocator(topo)
	rng := rand.New(rand.NewSource(42))
	nodes, err := a.Alloc(16, Dispersed, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g := GroupsSpanned(topo, nodes); g < 3 {
		t.Fatalf("dispersed 16/64 nodes span only %d groups", g)
	}
	// Sorted output.
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatal("dispersed output not sorted/unique")
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	topo := buildTopo(t, 2)
	a := NewAllocator(topo)
	total := topo.NumNodes()
	if _, err := a.Alloc(total, Compact, nil); err != nil {
		t.Fatal(err)
	}
	if a.FreeNodes() != 0 {
		t.Fatalf("free = %d", a.FreeNodes())
	}
	if _, err := a.Alloc(1, Compact, nil); err == nil {
		t.Fatal("overallocation succeeded")
	}
}

func TestAllocInvalidSize(t *testing.T) {
	a := NewAllocator(buildTopo(t, 2))
	if _, err := a.Alloc(0, Compact, nil); err == nil {
		t.Fatal("zero-size allocation succeeded")
	}
	if _, err := a.Alloc(-3, Compact, nil); err == nil {
		t.Fatal("negative allocation succeeded")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewAllocator(buildTopo(t, 2))
	nodes, _ := a.Alloc(2, Compact, nil)
	a.Free(nodes)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(nodes)
}

func TestRoutersOf(t *testing.T) {
	topo := buildTopo(t, 2)
	// Nodes 0,1 share router 0; node 2 is router 1.
	rs := RoutersOf(topo, []topology.NodeID{0, 1, 2})
	if len(rs) != 2 || rs[0] != 0 || rs[1] != 1 {
		t.Fatalf("routers = %v", rs)
	}
}

// Property: random sequences of alloc/free never double-allocate a node
// and keep the free count consistent.
func TestAllocatorProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		topo, err := topology.Build(topology.TestConfig(3))
		if err != nil {
			return false
		}
		a := NewAllocator(topo)
		rng := rand.New(rand.NewSource(seed))
		var live [][]topology.NodeID
		owned := make(map[topology.NodeID]bool)
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := 1 + int(op/2)%8
				policy := Compact
				if op%4 == 0 {
					policy = Dispersed
				}
				nodes, err := a.Alloc(n, policy, rng)
				if err != nil {
					continue // exhausted is fine
				}
				for _, id := range nodes {
					if owned[id] {
						return false // double allocation
					}
					owned[id] = true
				}
				live = append(live, nodes)
			} else {
				i := int(op) % len(live)
				a.Free(live[i])
				for _, id := range live[i] {
					delete(owned, id)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return a.FreeNodes() == topo.NumNodes()-len(owned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupsSpannedProductionScale(t *testing.T) {
	topo, err := topology.Build(topology.ThetaConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(topo)
	rng := rand.New(rand.NewSource(1))

	compact, _ := a.Alloc(256, Compact, rng)
	dispersed, _ := a.Alloc(256, Dispersed, rng)
	gc := GroupsSpanned(topo, compact)
	gd := GroupsSpanned(topo, dispersed)
	if gc > 2 {
		t.Errorf("compact 256 nodes on Theta span %d groups, want <= 2", gc)
	}
	if gd < 8 {
		t.Errorf("dispersed 256 nodes on Theta span %d groups, want most of 12", gd)
	}
}

func TestAllocClustered(t *testing.T) {
	topo, err := topology.Build(topology.ThetaMiniConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, target := range []int{1, 2, 4, 8, 12} {
		a := NewAllocator(topo)
		nodes, err := a.AllocClustered(24, target, rng)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if len(nodes) != 24 {
			t.Fatalf("target %d: got %d nodes", target, len(nodes))
		}
		got := GroupsSpanned(topo, nodes)
		// 24 nodes need at least 1 group (32 nodes/group); spanning can
		// exceed the target only when groups lack capacity.
		if got > target+1 {
			t.Errorf("target %d groups: spanned %d", target, got)
		}
		a.Free(nodes)
	}
}

func TestAllocClusteredSpill(t *testing.T) {
	topo, err := topology.Build(topology.ThetaMiniConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(topo)
	rng := rand.New(rand.NewSource(3))
	// Asking for more nodes than one group holds with target 1 must
	// spill to additional groups rather than fail.
	nodes, err := a.AllocClustered(100, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g := GroupsSpanned(topo, nodes); g < 4 {
		t.Errorf("100 nodes with 32/group spanned only %d groups", g)
	}
}

func TestAllocClusteredErrors(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(topo)
	rng := rand.New(rand.NewSource(3))
	if _, err := a.AllocClustered(0, 1, rng); err == nil {
		t.Error("zero-size clustered alloc succeeded")
	}
	if _, err := a.AllocClustered(topo.NumNodes()+1, 2, rng); err == nil {
		t.Error("oversized clustered alloc succeeded")
	}
}
