// Package placement allocates compute nodes to jobs. It provides the two
// policies the paper's controlled experiments compare — compact (fill
// node IDs in order, minimizing groups spanned) and dispersed (uniform
// random over free nodes, the ALPS-style scattered allocation) — plus
// groups-spanned accounting used to organize Figs. 3 and 4.
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/topology"
)

// Policy selects how nodes are chosen for a job.
type Policy uint8

// Placement policies.
const (
	// Compact fills free nodes in ascending ID order: consecutive
	// routers, chassis, and groups.
	Compact Policy = iota
	// Dispersed picks uniformly random free nodes, typically spanning
	// many groups.
	Dispersed
)

func (p Policy) String() string {
	switch p {
	case Compact:
		return "compact"
	case Dispersed:
		return "dispersed"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Allocator tracks node occupancy for one machine.
type Allocator struct {
	topo  *topology.Topology
	used  []bool
	nUsed int
}

// NewAllocator returns an allocator with all active nodes free.
func NewAllocator(topo *topology.Topology) *Allocator {
	return &Allocator{topo: topo, used: make([]bool, topo.NumNodes())}
}

// FreeNodes returns how many nodes are currently free.
func (a *Allocator) FreeNodes() int { return len(a.used) - a.nUsed }

// Alloc reserves n nodes under the given policy. rng is used only by
// Dispersed. Returns an error if fewer than n nodes are free.
func (a *Allocator) Alloc(n int, policy Policy, rng *rand.Rand) ([]topology.NodeID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: invalid allocation size %d", n)
	}
	if n > a.FreeNodes() {
		return nil, fmt.Errorf("placement: %d nodes requested, %d free", n, a.FreeNodes())
	}
	var out []topology.NodeID
	switch policy {
	case Compact:
		out = make([]topology.NodeID, 0, n)
		for id := 0; id < len(a.used) && len(out) < n; id++ {
			if !a.used[id] {
				out = append(out, topology.NodeID(id))
			}
		}
	case Dispersed:
		free := make([]topology.NodeID, 0, a.FreeNodes())
		for id := 0; id < len(a.used); id++ {
			if !a.used[id] {
				free = append(free, topology.NodeID(id))
			}
		}
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		out = append([]topology.NodeID(nil), free[:n]...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	default:
		return nil, fmt.Errorf("placement: unknown policy %v", policy)
	}
	for _, id := range out {
		a.used[id] = true
	}
	a.nUsed += n
	return out, nil
}

// Free releases previously allocated nodes. Releasing a free node panics:
// it means the caller double-freed an allocation.
func (a *Allocator) Free(nodes []topology.NodeID) {
	for _, id := range nodes {
		if !a.used[id] {
			panic(fmt.Sprintf("placement: double free of node %d", id))
		}
		a.used[id] = false
		a.nUsed--
	}
}

// AllocClustered reserves n nodes drawn from approximately `groups`
// randomly chosen dragonfly groups, emulating the fragmented first-fit
// placements of a production scheduler (a job may land on anything from 1
// group to the whole machine — the x-axis of the paper's Figs. 3 and 4).
// If the chosen groups cannot hold n nodes, more groups are drawn; the
// call fails only when the whole machine cannot.
func (a *Allocator) AllocClustered(n, groups int, rng *rand.Rand) ([]topology.NodeID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: invalid allocation size %d", n)
	}
	if n > a.FreeNodes() {
		return nil, fmt.Errorf("placement: %d nodes requested, %d free", n, a.FreeNodes())
	}
	ng := a.topo.Cfg.Groups
	if groups < 1 {
		groups = 1
	}
	if groups > ng {
		groups = ng
	}
	order := rng.Perm(ng)
	// Free nodes per group, in the random group order.
	out := make([]topology.NodeID, 0, n)
	chosen := 0
	for _, g := range order {
		if len(out) >= n {
			break
		}
		if chosen >= groups && len(out) >= n {
			break
		}
		free := a.freeInGroup(topology.GroupID(g))
		if len(free) == 0 {
			continue
		}
		chosen++
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		need := n - len(out)
		if need > len(free) {
			need = len(free)
		}
		out = append(out, free[:need]...)
	}
	if len(out) < n {
		return nil, fmt.Errorf("placement: fragmented machine cannot hold %d nodes", n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for _, id := range out {
		a.used[id] = true
	}
	a.nUsed += n
	return out, nil
}

// freeInGroup lists the free nodes of one group.
func (a *Allocator) freeInGroup(g topology.GroupID) []topology.NodeID {
	var out []topology.NodeID
	for id := 0; id < len(a.used); id++ {
		if !a.used[id] && a.topo.GroupOfNode(topology.NodeID(id)) == g {
			out = append(out, topology.NodeID(id))
		}
	}
	return out
}

// GroupsSpanned counts the distinct dragonfly groups the nodes occupy.
func GroupsSpanned(topo *topology.Topology, nodes []topology.NodeID) int {
	seen := make(map[topology.GroupID]struct{})
	for _, n := range nodes {
		seen[topo.GroupOfNode(n)] = struct{}{}
	}
	return len(seen)
}

// RoutersOf returns the distinct routers hosting the nodes, ascending.
func RoutersOf(topo *topology.Topology, nodes []topology.NodeID) []topology.RouterID {
	seen := make(map[topology.RouterID]struct{})
	for _, n := range nodes {
		seen[topo.RouterOfNode(n)] = struct{}{}
	}
	out := make([]topology.RouterID, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
