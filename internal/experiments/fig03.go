package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/routing"
	"repro/internal/stats"
)

// GroupsPoint is one run plotted on the groups-spanned axis.
type GroupsPoint struct {
	Groups     int
	Mode       routing.Mode
	Normalized float64 // Z-score within (app, size), pooled across modes
}

// Fig3Result reproduces the paper's Fig. 3: MILC and MILCREORDER
// normalized runtimes at three job sizes, ordered by the number of
// dragonfly groups the placement spans, AD0 vs AD3.
type Fig3Result struct {
	Machine string
	// Points[app][nodes] lists the per-run normalized samples.
	Points map[string]map[int][]GroupsPoint
	// MeanImprovement[app][nodes] is AD3's mean runtime improvement.
	MeanImprovement map[string]map[int]float64
	Sizes           []int
	Apps            []string
}

// Fig3GroupsSpanned runs the production campaigns at all three sizes.
func Fig3GroupsSpanned(p Profile, seed int64) (*Fig3Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	return groupsSpannedStudy(mp, "Theta", p,
		[]apps.App{apps.MILC{}, apps.MILC{Reorder: true}},
		[]int{p.NodesSmall, p.NodesMedium, p.NodesLarge}, seed)
}

// groupsSpannedStudy is shared with Fig. 4 (Cori).
func groupsSpannedStudy(mp *machinePool, machine string, p Profile,
	appList []apps.App, sizes []int, seed int64) (*Fig3Result, error) {

	res := &Fig3Result{
		Machine:         machine,
		Points:          map[string]map[int][]GroupsPoint{},
		MeanImprovement: map[string]map[int]float64{},
		Sizes:           sizes,
	}
	modes := []routing.Mode{routing.AD0, routing.AD3}
	for _, a := range appList {
		res.Apps = append(res.Apps, a.Name())
		res.Points[a.Name()] = map[int][]GroupsPoint{}
		res.MeanImprovement[a.Name()] = map[int]float64{}
		for _, nodes := range sizes {
			// Fold runtimes into the pooled and per-mode aggregates as
			// the campaign streams; only the small GroupsPoint slice is
			// retained (Normalized temporarily carries the raw runtime
			// until the pooled moments are known).
			pooled := stats.NewAgg()
			perMode := map[routing.Mode]*stats.Agg{}
			for _, m := range modes {
				perMode[m] = stats.NewAgg()
			}
			pts := make([]GroupsPoint, 0, p.Runs*len(modes))
			err := productionReduce(mp, p, a, nodes, modes, seed+int64(nodes),
				func(idx int, s *Sample) {
					pooled.Add(s.RuntimeSec)
					perMode[s.Mode].Add(s.RuntimeSec)
					pts = append(pts, GroupsPoint{
						Groups: s.Groups, Mode: s.Mode, Normalized: s.RuntimeSec,
					})
				})
			if err != nil {
				return nil, err
			}
			// Z-score against the pooled mean of both modes (the
			// paper's normalization for a given job size).
			mean, std := pooled.Mean(), pooled.Std()
			for i := range pts {
				if std > 0 {
					pts[i].Normalized = (pts[i].Normalized - mean) / std
				} else {
					pts[i].Normalized = 0
				}
			}
			sort.Slice(pts, func(i, j int) bool { return pts[i].Groups < pts[j].Groups })
			res.Points[a.Name()][nodes] = pts
			res.MeanImprovement[a.Name()][nodes] =
				stats.PercentImprovementAgg(perMode[routing.AD0], perMode[routing.AD3])
		}
	}
	return res, nil
}

// Render prints per-size scatter rows ordered by groups spanned.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — normalized runtime vs groups spanned (%s)\n", r.Machine)
	for _, app := range r.Apps {
		for _, nodes := range r.Sizes {
			fmt.Fprintf(&b, "%s @ %d nodes (AD3 mean improvement %.1f%%):\n",
				app, nodes, r.MeanImprovement[app][nodes])
			for _, pt := range r.Points[app][nodes] {
				fmt.Fprintf(&b, "  groups=%-3d %-4s z=%+.2f\n", pt.Groups, pt.Mode, pt.Normalized)
			}
		}
	}
	return b.String()
}
