package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Fig9Result reproduces the paper's Fig. 9: controlled (reservation)
// experiments where every job on the machine runs the SAME app with the
// SAME routing mode, swept over all four adaptive modes. Runtimes are
// Z-scored per application over the pooled mode samples.
type Fig9Result struct {
	Nodes int
	// Z[mode] aggregates the normalized runtimes of all apps and jobs.
	Z map[routing.Mode]*stats.Agg
	// Mean[mode] is the mean normalized runtime.
	Mean map[routing.Mode]float64
	// Spread[mode] is max-min of the normalized runtimes.
	Spread map[routing.Mode]float64
}

// Fig9ControlledAllModes runs the ensembles: for each app and each mode,
// `EnsembleMedium` simultaneous jobs, half compact, half dispersed. The
// per-(mode, policy) reservations are independent machine runs, so each
// app's eight ensembles fan out across the worker pool; runtimes fold in
// the original nesting order and each RunResult is dropped right after
// its fold, keeping output identical to the sequential sweep in O(workers)
// memory.
func Fig9ControlledAllModes(p Profile, seed int64) (*Fig9Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Nodes:  p.NodesMedium,
		Z:      map[routing.Mode]*stats.Agg{},
		Mean:   map[routing.Mode]float64{},
		Spread: map[routing.Mode]float64{},
	}
	modes := []routing.Mode{routing.AD0, routing.AD1, routing.AD2, routing.AD3}
	policies := []placement.Policy{placement.Compact, placement.Dispersed}
	count := p.EnsembleMedium / 2
	if count < 1 {
		count = 1
	}
	// Per app: run each mode's ensemble, fold raw runtimes, z-score per
	// app over all modes pooled, then merge into the cross-app aggregates
	// in mode order.
	for _, a := range []apps.App{apps.MILC{}, apps.Nek5000{}, apps.Qbox{}} {
		a := a
		perMode := map[routing.Mode]*stats.Agg{}
		pool := stats.NewAgg()
		err := parallel.ReduceContext(context.Background(), mp.workers(), len(modes)*len(policies),
			func(worker, idx int) (*core.RunResult, error) {
				mi, policy := idx/len(policies), policies[idx%len(policies)]
				return ensembleRun(mp.machine(worker), p, a, count, p.NodesMedium,
					modes[mi], policy, seed+int64(mi)*101, nil)
			},
			func(idx int, run *core.RunResult) {
				mode := modes[idx/len(policies)]
				agg := perMode[mode]
				if agg == nil {
					agg = stats.NewAgg()
					perMode[mode] = agg
				}
				for _, j := range run.Jobs {
					v := j.Runtime.Seconds()
					agg.Add(v)
					pool.Add(v)
				}
			})
		if err != nil {
			return nil, err
		}
		mean, std := pool.Mean(), pool.Std()
		for _, mode := range modes {
			if perMode[mode] == nil {
				continue
			}
			if res.Z[mode] == nil {
				res.Z[mode] = stats.NewAgg()
			}
			res.Z[mode].Merge(perMode[mode].Normalized(mean, std))
		}
	}
	for mode, zs := range res.Z {
		res.Mean[mode] = zs.Mean()
		res.Spread[mode] = zs.Max() - zs.Min()
	}
	return res, nil
}

// Render prints the per-mode normalized summary (the paper's box plot).
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — controlled ensembles, all apps, %d nodes, modes AD0..AD3\n", r.Nodes)
	fmt.Fprintf(&b, "%-6s %-6s %-9s %-9s %-9s\n", "mode", "n", "mean(z)", "sd(z)", "range(z)")
	for _, mode := range []routing.Mode{routing.AD0, routing.AD1, routing.AD2, routing.AD3} {
		zs := r.Z[mode]
		fmt.Fprintf(&b, "%-6s %-6d %-+9.3f %-9.3f %-9.2f\n",
			mode, zs.Count(), r.Mean[mode], zs.Std(), r.Spread[mode])
	}
	return b.String()
}
