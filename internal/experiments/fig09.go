package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Fig9Result reproduces the paper's Fig. 9: controlled (reservation)
// experiments where every job on the machine runs the SAME app with the
// SAME routing mode, swept over all four adaptive modes. Runtimes are
// Z-scored per application over the pooled mode samples.
type Fig9Result struct {
	Nodes int
	// Z[mode] pools the normalized runtimes of all apps and jobs.
	Z map[routing.Mode][]float64
	// Mean[mode] is the mean normalized runtime.
	Mean map[routing.Mode]float64
	// Spread[mode] is max-min of the normalized runtimes.
	Spread map[routing.Mode]float64
}

// Fig9ControlledAllModes runs the ensembles: for each app and each mode,
// `EnsembleMedium` simultaneous jobs, half compact, half dispersed. The
// per-(mode, policy) reservations are independent machine runs, so each
// app's eight ensembles fan out across the worker pool; aggregation walks
// the results in the original nesting order, keeping output identical to
// the sequential sweep.
func Fig9ControlledAllModes(p Profile, seed int64) (*Fig9Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Nodes:  p.NodesMedium,
		Z:      map[routing.Mode][]float64{},
		Mean:   map[routing.Mode]float64{},
		Spread: map[routing.Mode]float64{},
	}
	modes := []routing.Mode{routing.AD0, routing.AD1, routing.AD2, routing.AD3}
	policies := []placement.Policy{placement.Compact, placement.Dispersed}
	count := p.EnsembleMedium / 2
	if count < 1 {
		count = 1
	}
	// Per app: run each mode's ensemble, collect raw runtimes, z-score
	// per app over all modes pooled.
	for _, a := range []apps.App{apps.MILC{}, apps.Nek5000{}, apps.Qbox{}} {
		a := a
		runs, err := parallel.Map(mp.workers(), len(modes)*len(policies),
			func(worker, idx int) (*core.RunResult, error) {
				mi, policy := idx/len(policies), policies[idx%len(policies)]
				return ensembleRun(mp.machine(worker), p, a, count, p.NodesMedium,
					modes[mi], policy, seed+int64(mi)*101, nil)
			})
		if err != nil {
			return nil, err
		}
		perMode := map[routing.Mode][]float64{}
		var pool []float64
		for idx, run := range runs {
			mode := modes[idx/len(policies)]
			for _, j := range run.Jobs {
				v := j.Runtime.Seconds()
				perMode[mode] = append(perMode[mode], v)
				pool = append(pool, v)
			}
		}
		mean, std := stats.MeanStd(pool)
		for mode, vs := range perMode {
			res.Z[mode] = append(res.Z[mode], stats.ZScoresAgainst(vs, mean, std)...)
		}
	}
	for mode, zs := range res.Z {
		res.Mean[mode] = stats.Mean(zs)
		lo, hi := stats.MinMax(zs)
		res.Spread[mode] = hi - lo
	}
	return res, nil
}

// Render prints the per-mode normalized summary (the paper's box plot).
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — controlled ensembles, all apps, %d nodes, modes AD0..AD3\n", r.Nodes)
	fmt.Fprintf(&b, "%-6s %-6s %-9s %-9s %-9s\n", "mode", "n", "mean(z)", "sd(z)", "range(z)")
	for _, mode := range []routing.Mode{routing.AD0, routing.AD1, routing.AD2, routing.AD3} {
		zs := r.Z[mode]
		fmt.Fprintf(&b, "%-6s %-6d %-+9.3f %-9.3f %-9.2f\n",
			mode, len(zs), r.Mean[mode], stats.StdDev(zs), r.Spread[mode])
	}
	return b.String()
}
