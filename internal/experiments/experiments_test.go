package experiments

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
)

// testProfile is the bench-scale profile, which is the smallest that
// still drives every harness end to end. It fans runs out over all CPUs:
// output is identical for any worker count (see determinism_test.go), and
// running the whole suite through the pool keeps the parallel paths under
// the race detector in CI.
//
// Under -short the campaigns shrink further (fewer runs and iterations,
// shorter windows): the race detector multiplies DES cost by roughly an
// order of magnitude, so CI's `go test -race -short` pass exercises every
// harness and the full parallel machinery without full-scale campaigns.
func testProfile() Profile {
	p := Bench()
	p.Name = "test"
	p.Workers = runtime.NumCPU()
	if testing.Short() {
		p.Runs = 1
		p.CampaignWindow = 6 * sim.Millisecond
		p.LDMSPeriod = 2 * sim.Millisecond
		for app, n := range p.Iterations {
			if n > 1 {
				p.Iterations[app] = (n + 1) / 2
			}
		}
	}
	return p
}

func TestFig1(t *testing.T) {
	r := Fig1JobSizes(testProfile(), 1)
	if len(r.CCDF) < 5 {
		t.Fatalf("ccdf points = %d", len(r.CCDF))
	}
	if r.Frac128to512 < 0.3 || r.Frac128to512 > 0.5 {
		t.Errorf("128-512 share = %.2f, want ~0.40", r.Frac128to512)
	}
	out := r.Render()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "128-512") {
		t.Error("render incomplete")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1Characterization(testProfile(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byApp := map[string]Table1Row{}
	for _, row := range r.Rows {
		byApp[row.App] = row
		if row.MPIPercent <= 0 || row.MPIPercent >= 100 {
			t.Errorf("%s MPI%% = %.1f", row.App, row.MPIPercent)
		}
		if row.TopCalls[0] == "" {
			t.Errorf("%s has no top call", row.App)
		}
	}
	// Structural checks from the paper's Table I.
	if byApp["Rayleigh"].P2PAvgBytes > byApp["HACC"].P2PAvgBytes {
		t.Error("Rayleigh should have less p2p than HACC")
	}
	if byApp["Qbox"].TopCalls[0] != "MPI_Alltoallv" {
		t.Errorf("Qbox top call = %s", byApp["Qbox"].TopCalls[0])
	}
	if !strings.Contains(r.Render(), "Table I") {
		t.Error("render incomplete")
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2MILCRuntimePDF(testProfile(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"MILC", "MILCREORDER"} {
		for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
			ms := r.PerApp[app][mode]
			if ms.N == 0 || ms.Mean <= 0 {
				t.Fatalf("%s/%s stats empty: %+v", app, mode, ms)
			}
		}
	}
	if !strings.Contains(r.Render(), "improvement") {
		t.Error("render incomplete")
	}
}

func TestFig3AndFig4(t *testing.T) {
	p := testProfile()
	r, err := Fig3GroupsSpanned(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("apps = %v", r.Apps)
	}
	for _, app := range r.Apps {
		for _, nodes := range r.Sizes {
			pts := r.Points[app][nodes]
			if len(pts) != 2*p.Runs {
				t.Fatalf("%s@%d: %d points, want %d", app, nodes, len(pts), 2*p.Runs)
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].Groups < pts[i-1].Groups {
					t.Fatal("points not ordered by groups")
				}
			}
		}
	}
	if !strings.Contains(r.Render(), "groups") {
		t.Error("render incomplete")
	}

	c, err := Fig4CoriGroupsSpanned(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Machine != "Cori" || len(c.Apps) != 1 {
		t.Fatalf("cori result: %+v", c.Apps)
	}
}

func TestFig5Fig6(t *testing.T) {
	p := testProfile()
	b, err := Fig5MILCBreakdown(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Runs) != 2*p.Runs {
		t.Fatalf("breakdown runs = %d", len(b.Runs))
	}
	for _, run := range b.Runs {
		if run.Compute <= 0 {
			t.Fatal("no compute time in breakdown")
		}
		if run.Parts["MPI_Allreduce"] <= 0 {
			t.Fatal("no allreduce share")
		}
	}
	if !strings.Contains(b.Render(), "Allreduce") {
		t.Error("render incomplete")
	}

	f6, err := Fig6MILCTileRatios(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		if len(f6.Ratios[mode]) == 0 {
			t.Fatalf("no ratios for %s", mode)
		}
	}
	if !strings.Contains(f6.Render(), "Proc_req") {
		t.Error("render incomplete")
	}
}

func TestTable2Fig7Fig8(t *testing.T) {
	p := testProfile()
	t2, err := Table2AllApps(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 6 {
		t.Fatalf("rows = %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row.MeanAD0 <= 0 || row.MeanAD3 <= 0 {
			t.Fatalf("%s means: %+v", row.App, row)
		}
	}
	if !strings.Contains(t2.Render(), "Table II") {
		t.Error("render incomplete")
	}

	f7 := Fig7NormalizedAllApps(t2)
	if len(f7.Order) != 6 {
		t.Fatalf("fig7 apps = %d", len(f7.Order))
	}
	if !strings.Contains(f7.Render(), "Fig. 7") {
		t.Error("render incomplete")
	}

	f8 := Fig8HACCBreakdown(t2)
	if len(f8.Runs) == 0 {
		t.Fatal("fig8 has no HACC runs")
	}
	if !strings.Contains(f8.Render(), "HACC") {
		t.Error("render incomplete")
	}
}

func TestFig9(t *testing.T) {
	r, err := Fig9ControlledAllModes(testProfile(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD1, routing.AD2, routing.AD3} {
		if r.Z[mode].Count() == 0 {
			t.Fatalf("no samples for %s", mode)
		}
	}
	if !strings.Contains(r.Render(), "AD2") {
		t.Error("render incomplete")
	}
}

func TestFig10Fig12(t *testing.T) {
	p := testProfile()
	f10, err := Fig10MILCEnsembleCounters(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		ec := f10.PerMode[mode]
		if ec.Totals.TotalFlits() == 0 {
			t.Fatalf("%s: no flits", mode)
		}
		if ec.MeanRuntime <= 0 {
			t.Fatalf("%s: no runtime", mode)
		}
	}
	if !strings.Contains(f10.Render(), "Fig. 10") {
		t.Error("render incomplete")
	}

	f12, err := Fig12HACCEnsembleCounters(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if f12.App != "HACC" || !strings.Contains(f12.Render(), "Fig. 12") {
		t.Error("fig12 wrong app or render")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11RegimeComparison(testProfile(), 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		for _, regime := range []string{
			RegimeProduction, RegimeIsolated,
			RegimeControlledCompact, RegimeControlledDisperse,
		} {
			if r.Ratios[mode][regime].Count() == 0 {
				t.Fatalf("%s/%s empty", mode, regime)
			}
		}
	}
	if !strings.Contains(r.Render(), "isolated") {
		t.Error("render incomplete")
	}
}

func TestFig13Fig14(t *testing.T) {
	r, err := Fig13DefaultSwitch(testProfile(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.Before.Totals.TotalFlits() == 0 || r.After.Totals.TotalFlits() == 0 {
		t.Fatal("campaigns produced no traffic")
	}
	if r.Before.Windows < 2 {
		t.Fatalf("windows = %d", r.Before.Windows)
	}
	if r.Before.NICLatencies.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if !strings.Contains(r.Render(), "Fig. 13") {
		t.Error("render incomplete")
	}

	f14 := Fig14LatencyPercentiles(r)
	if len(f14.BeforeUS) != len(fig14Percentiles) {
		t.Fatal("percentile count mismatch")
	}
	for i, v := range f14.BeforeUS {
		if v <= 0 {
			t.Fatalf("percentile %g nonpositive", fig14Percentiles[i])
		}
	}
	if !strings.Contains(f14.Render(), "P99.99") {
		t.Error("render incomplete")
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Quick(), Standard()} {
		if p.Runs < 2 || p.NodesMedium <= 0 || p.CampaignWindow <= 0 {
			t.Errorf("%s profile incomplete: %+v", p.Name, p)
		}
		if p.iterationsFor("NoSuchApp") <= 0 || p.scaleFor("NoSuchApp") <= 0 {
			t.Error("fallbacks broken")
		}
	}
}

func TestAblations(t *testing.T) {
	p := testProfile()
	p.Runs = 1 // smoke scale

	if r, err := AblationCandidates(p, routing.AD0, 20); err != nil || len(r.Points) != 3 {
		t.Fatalf("candidates: %v %v", r, err)
	}
	if r, err := AblationBufferDepth(p, routing.AD0, 21); err != nil || len(r.Points) != 3 {
		t.Fatalf("buffers: %v %v", r, err)
	}
	if r, err := AblationEstimateQuality(p, routing.AD0, 22); err != nil || len(r.Points) != 3 {
		t.Fatalf("estimates: %v %v", r, err)
	}
	if r, err := AblationProgressiveAD1(p, 23); err != nil || len(r.Points) != 2 {
		t.Fatalf("ad1: %v %v", r, err)
	}
	r, err := AblationBaselines(p, 24)
	if err != nil || len(r.Points) != 6 {
		t.Fatalf("baselines: %v %v", r, err)
	}
	for _, pt := range r.Points {
		if pt.MeanRuntime <= 0 {
			t.Fatalf("point %s has no runtime", pt.Label)
		}
	}
	if !strings.Contains(r.Render(), "VAL") {
		t.Error("render incomplete")
	}
}
