package experiments

import (
	"repro/internal/apps"
)

// Fig4CoriGroupsSpanned reproduces the paper's Fig. 4: the same
// groups-spanned study for MILC on Cori, whose reduced bisection (4
// cables per group pair vs Theta's 12) makes minimal bias matter even at
// the large size. The result type is shared with Fig. 3.
func Fig4CoriGroupsSpanned(p Profile, seed int64) (*Fig3Result, error) {
	mp, err := p.coriPool()
	if err != nil {
		return nil, err
	}
	res, err := groupsSpannedStudy(mp, "Cori", p,
		[]apps.App{apps.MILC{}},
		[]int{p.NodesSmall, p.CoriNodesMedium, p.NodesLarge}, seed)
	if err != nil {
		return nil, err
	}
	return res, nil
}
