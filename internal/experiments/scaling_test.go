package experiments

import (
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/routing"
)

// TestEnsembleWarmPoolArtifactBytes pins machine reuse at the ensemble
// level: the second campaign on a pool runs entirely on warm machines
// (every kernel and fabric rewound in place from the first campaign),
// and must reproduce the cold pool's samples deeply equal and its
// rendered Fig. 6 artifact byte for byte. Together with
// core.TestMachineResetEquivalence this closes the reset-reuse loop from
// kernel state all the way to artifact bytes.
func TestEnsembleWarmPoolArtifactBytes(t *testing.T) {
	p := testProfile()
	p.Workers = 2
	modes := []routing.Mode{routing.AD0, routing.AD3}
	app := apps.MILC{}

	mp, err := p.thetaPool()
	if err != nil {
		t.Fatal(err)
	}
	campaign := func() ([]Sample, *Fig6Result) {
		tiles := tileAggs{}
		var samples []Sample
		err := productionReduce(mp, p, app, p.NodesMedium, modes, 42,
			func(idx int, s *Sample) {
				samples = append(samples, s.Compact())
				foldTileRatios(tiles, s)
			})
		if err != nil {
			t.Fatal(err)
		}
		return samples, &Fig6Result{App: app.Name(), Nodes: p.NodesMedium, Ratios: tiles}
	}
	cold, f6Cold := campaign()
	warm, f6Warm := campaign()
	if !reflect.DeepEqual(cold, warm) {
		t.Error("warm-pool campaign samples differ from the cold-pool campaign")
	}
	a, b := f6Cold.Render(), f6Warm.Render()
	if a != b {
		t.Errorf("rendered Fig. 6 differs between cold and warm pool:\n--- cold ---\n%s--- warm ---\n%s", a, b)
	}
}

// TestParallelScalingGate is the CI regression gate for replication-level
// parallelism: a -j 4 ensemble finishing slower than the sequential one
// is a bug (the state BENCH_2.json recorded at 0.81x), not a tuning
// note. It is opt-in via SCALING_GATE=1 because it measures wall-clock —
// meaningless under -race, on loaded laptops, or on single-CPU hosts,
// where it skips.
func TestParallelScalingGate(t *testing.T) {
	if os.Getenv("SCALING_GATE") == "" {
		t.Skip("set SCALING_GATE=1 to run the wall-clock scaling gate")
	}
	if runtime.NumCPU() < 2 {
		t.Skipf("host has %d CPU; parallel speedup is unmeasurable", runtime.NumCPU())
	}
	p := testProfile()
	p.Runs = 8 // enough tasks (x2 modes) to keep 4 workers busy
	modes := []routing.Mode{routing.AD0, routing.AD3}

	run := func(workers int) time.Duration {
		p.Workers = workers
		start := time.Now()
		if _, err := ProductionEnsemble(p, apps.MILC{}, p.NodesMedium, modes, 3); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(1) // warm OS caches so the timed pair compares like with like
	seq := run(1)
	par := run(4)
	t.Logf("sequential %v, -j4 %v, speedup %.2fx", seq, par, seq.Seconds()/par.Seconds())
	if par > seq {
		t.Errorf("-j4 ensemble (%v) slower than sequential (%v): parallel running is a regression", par, seq)
	}
}
