package experiments

import (
	"fmt"
	"strings"
)

// fig14Percentiles are the sampled percentiles of the paper's Fig. 14.
var fig14Percentiles = []float64{5, 25, 50, 75, 90, 95, 99, 99.9, 99.99}

// Fig14Result reproduces the paper's Fig. 14: the change in system-wide
// packet-pair latency percentiles after the default switch to AD3,
// measured from the NIC ORB counters sampled by LDMS across both
// campaigns (it consumes the Fig. 13 result).
type Fig14Result struct {
	Percentiles []float64
	BeforeUS    []float64 // AD0 era latency percentiles, microseconds
	AfterUS     []float64 // AD3 era
	ChangePct   []float64 // relative change (negative = faster)
	Samples     [2]int
}

// Fig14LatencyPercentiles derives the percentile comparison from the two
// campaign latency sample pools.
func Fig14LatencyPercentiles(f13 *Fig13Result) *Fig14Result {
	res := &Fig14Result{Percentiles: fig14Percentiles}
	before := f13.Before.NICLatencies.Percentiles(fig14Percentiles)
	after := f13.After.NICLatencies.Percentiles(fig14Percentiles)
	res.Samples = [2]int{f13.Before.NICLatencies.Count(), f13.After.NICLatencies.Count()}
	for i := range fig14Percentiles {
		b := before[i] * 1e6
		a := after[i] * 1e6
		res.BeforeUS = append(res.BeforeUS, b)
		res.AfterUS = append(res.AfterUS, a)
		change := 0.0
		if b > 0 {
			change = 100 * (a - b) / b
		}
		res.ChangePct = append(res.ChangePct, change)
	}
	return res
}

// Render prints the percentile table (the paper reports tail latencies
// reduced by 20-30%, e.g. P99.99 918us -> 663us).
func (r *Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — system-wide packet-pair latency percentiles (NIC ORB counters)\n")
	fmt.Fprintf(&b, "samples: before=%d after=%d\n", r.Samples[0], r.Samples[1])
	fmt.Fprintf(&b, "%-8s %-12s %-12s %-10s\n", "pct", "AD0 (us)", "AD3 (us)", "%change")
	for i, p := range r.Percentiles {
		fmt.Fprintf(&b, "P%-7g %-12.2f %-12.2f %-+10.1f\n",
			p, r.BeforeUS[i], r.AfterUS[i], r.ChangePct[i])
	}
	return b.String()
}
