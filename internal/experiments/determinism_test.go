package experiments

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/routing"
)

// The parallel ensemble runner's contract is byte-identical output for
// every worker count: runs fan out across workers but results merge in
// seed order, and each run draws only from its own explicit streams. These
// tests pin that contract for a communication-light app (MILC) and a
// bandwidth-heavy one (HACC).

func ensembleBothWays(t *testing.T, app apps.App, seed int64) (seq, par []Sample) {
	t.Helper()
	p := testProfile()
	modes := []routing.Mode{routing.AD0, routing.AD3}

	p.Workers = 1
	seq, err := ProductionEnsemble(p, app, p.NodesMedium, modes, seed)
	if err != nil {
		t.Fatalf("sequential ensemble: %v", err)
	}

	p.Workers = 8
	par, err = ProductionEnsemble(p, app, p.NodesMedium, modes, seed)
	if err != nil {
		t.Fatalf("parallel ensemble: %v", err)
	}
	return seq, par
}

func checkEnsembleDeterminism(t *testing.T, app apps.App) {
	t.Helper()
	seq, par := ensembleBothWays(t, app, 42)
	if len(seq) == 0 {
		t.Fatal("empty sample set")
	}
	if len(seq) != len(par) {
		t.Fatalf("sample counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	// Campaign samples come back compact: the digest is attached and the
	// full report dropped on the worker, before the sample is retained.
	for i := range seq {
		if seq[i].Report != nil || seq[i].Reduced == nil {
			t.Fatalf("sample %d not compact: Report attached=%v, Reduced attached=%v",
				i, seq[i].Report != nil, seq[i].Reduced != nil)
		}
	}
	// DeepEqual follows the Reduced pointers, so this compares the full
	// retained contents — runtimes, per-call digest times, tile totals.
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("sample %d (seed %d, mode %s) differs between workers=1 and workers=8",
				i, seq[i].Seed, seq[i].Mode)
		}
	}
}

// The streaming tile-ratio fold must be worker-count invariant too: the
// per-class aggregates fold in seed order whatever the schedule, so the
// rendered Fig. 6 artifact is byte-identical at any fan-out.
func TestFig6DeterminismAcrossWorkers(t *testing.T) {
	p := testProfile()
	p.Workers = 1
	seq, err := Fig6MILCTileRatios(p, 42)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	p.Workers = 8
	par, err := Fig6MILCTileRatios(p, 42)
	if err != nil {
		t.Fatalf("workers=8: %v", err)
	}
	a, b := seq.Render(), par.Render()
	if a != b {
		t.Errorf("rendered Fig. 6 artifact differs:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", a, b)
	}
}

func TestEnsembleDeterminismMILC(t *testing.T) {
	checkEnsembleDeterminism(t, apps.MILC{})
}

func TestEnsembleDeterminismHACC(t *testing.T) {
	checkEnsembleDeterminism(t, apps.HACC{})
}

// Repeated parallel runs with the same seed must also agree with each
// other (no order-dependent accumulation hiding behind a lucky schedule).
func TestEnsembleParallelRepeatable(t *testing.T) {
	p := testProfile()
	p.Workers = 8
	modes := []routing.Mode{routing.AD0}
	a, err := ProductionEnsemble(p, apps.MILC{}, p.NodesMedium, modes, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProductionEnsemble(p, apps.MILC{}, p.NodesMedium, modes, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two parallel runs with the same seed disagree")
	}
}
