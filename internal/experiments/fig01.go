package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig1Result reproduces the paper's Fig. 1: the complementary cumulative
// distribution of Theta core-hours over job size (number of nodes).
type Fig1Result struct {
	CCDF []stats.CCDFPoint
	// Frac128to512 is the share of core-hours from 128-512 node jobs;
	// the paper reports ~40%.
	Frac128to512 float64
	Jobs         int
}

// Fig1JobSizes synthesizes a campaign from the Theta job mix and computes
// the Fig. 1 CCDF. One explicit stream drives the whole figure: the CCDF
// and the 128-512 band share come from the same draw rather than replaying
// a re-seeded generator's sequence.
func Fig1JobSizes(p Profile, seed int64) *Fig1Result {
	mix := workload.ThetaMix()
	nJobs := 2000 * (p.Runs + 1)
	rng := runStream(seed, saltJobMix)
	sizes := make([]float64, nJobs)
	hours := make([]float64, nJobs)
	in, total := 0.0, 0.0
	for i := 0; i < nJobs; i++ {
		nodes, dur := mix.SampleJob(rng)
		ch := float64(nodes) * dur.Seconds()
		sizes[i], hours[i] = float64(nodes), ch
		total += ch
		if nodes >= 128 && nodes <= 512 {
			in += ch
		}
	}
	return &Fig1Result{
		CCDF:         stats.WeightedCCDF(sizes, hours),
		Frac128to512: in / total,
		Jobs:         nJobs,
	}
}

// Render prints the CCDF series (the paper's Fig. 1 curve).
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — Theta job size distribution (CCDF of core-hours), %d jobs\n", r.Jobs)
	fmt.Fprintf(&b, "%-8s %-10s\n", "nodes", "corehours>=")
	for _, pt := range r.CCDF {
		fmt.Fprintf(&b, "%-8.0f %-10.3f\n", pt.X, pt.Frac)
	}
	fmt.Fprintf(&b, "128-512 node share of core-hours: %.1f%% (paper: ~40%%)\n",
		100*r.Frac128to512)
	return b.String()
}
