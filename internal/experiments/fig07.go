package experiments

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/stats"
)

// Fig7Result reproduces the paper's Fig. 7: per-application Z-scored
// runtime distributions under AD0 vs AD3 (the companion plot to
// Table II). It reuses Table II's samples.
type Fig7Result struct {
	Nodes int
	// Z[app][mode] aggregates the normalized runtimes (pooled
	// normalization per app across both modes).
	Z map[string]map[routing.Mode]*stats.Agg
	// Order preserves the app ordering.
	Order []string
}

// Fig7NormalizedAllApps derives the figure from Table II samples.
func Fig7NormalizedAllApps(t2 *Table2Result) *Fig7Result {
	res := &Fig7Result{Nodes: t2.Nodes, Z: map[string]map[routing.Mode]*stats.Agg{}}
	pooled := map[string]*stats.Agg{}
	perMode := map[string]map[routing.Mode]*stats.Agg{}
	for _, s := range t2.Samples {
		if _, ok := pooled[s.App]; !ok {
			res.Order = append(res.Order, s.App)
			pooled[s.App] = stats.NewAgg()
			perMode[s.App] = map[routing.Mode]*stats.Agg{}
		}
		pooled[s.App].Add(s.RuntimeSec)
		agg := perMode[s.App][s.Mode]
		if agg == nil {
			agg = stats.NewAgg()
			perMode[s.App][s.Mode] = agg
		}
		agg.Add(s.RuntimeSec)
	}
	for _, app := range res.Order {
		mean, std := pooled[app].Mean(), pooled[app].Std()
		res.Z[app] = map[routing.Mode]*stats.Agg{}
		for mode, agg := range perMode[app] {
			res.Z[app][mode] = agg.Normalized(mean, std)
		}
	}
	return res
}

// Render prints the per-app mode summaries (mean z, spread).
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — normalized runtimes per application, AD0 vs AD3 (%d nodes)\n", r.Nodes)
	fmt.Fprintf(&b, "%-13s %-7s %-9s %-9s %-9s %-9s\n", "App", "mode", "mean(z)", "sd(z)", "min(z)", "max(z)")
	for _, app := range r.Order {
		for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
			zs := r.Z[app][mode]
			if zs.Count() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-13s %-7s %-+9.2f %-9.2f %-+9.2f %-+9.2f\n",
				app, mode, zs.Mean(), zs.Std(), zs.Min(), zs.Max())
		}
	}
	return b.String()
}
