package experiments

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/stats"
)

// Fig7Result reproduces the paper's Fig. 7: per-application Z-scored
// runtime distributions under AD0 vs AD3 (the companion plot to
// Table II). It reuses Table II's samples.
type Fig7Result struct {
	Nodes int
	// Z[app][mode] holds the normalized runtimes (pooled normalization
	// per app across both modes).
	Z map[string]map[routing.Mode][]float64
	// Order preserves the app ordering.
	Order []string
}

// Fig7NormalizedAllApps derives the figure from Table II samples.
func Fig7NormalizedAllApps(t2 *Table2Result) *Fig7Result {
	res := &Fig7Result{Nodes: t2.Nodes, Z: map[string]map[routing.Mode][]float64{}}
	perApp := map[string][]Sample{}
	for _, s := range t2.Samples {
		if _, ok := perApp[s.App]; !ok {
			res.Order = append(res.Order, s.App)
		}
		perApp[s.App] = append(perApp[s.App], s)
	}
	for _, app := range res.Order {
		samples := perApp[app]
		mean, std := stats.MeanStd(runtimes(samples))
		res.Z[app] = map[routing.Mode][]float64{}
		for mode, ss := range byMode(samples) {
			res.Z[app][mode] = stats.ZScoresAgainst(runtimes(ss), mean, std)
		}
	}
	return res
}

// Render prints the per-app mode summaries (mean z, spread).
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — normalized runtimes per application, AD0 vs AD3 (%d nodes)\n", r.Nodes)
	fmt.Fprintf(&b, "%-13s %-7s %-9s %-9s %-9s %-9s\n", "App", "mode", "mean(z)", "sd(z)", "min(z)", "max(z)")
	for _, app := range r.Order {
		for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
			zs := r.Z[app][mode]
			if len(zs) == 0 {
				continue
			}
			lo, hi := stats.MinMax(zs)
			fmt.Fprintf(&b, "%-13s %-7s %-+9.2f %-9.2f %-+9.2f %-+9.2f\n",
				app, mode, stats.Mean(zs), stats.StdDev(zs), lo, hi)
		}
	}
	return b.String()
}
