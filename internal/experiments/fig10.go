package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ldms"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// EnsembleCounters summarizes the global tile-counter picture of one
// controlled ensemble (the per-tile-class panels of the paper's Figs. 10
// and 12).
type EnsembleCounters struct {
	Mode        routing.Mode
	MeanRuntime float64
	Totals      network.ClassTotals
	// PeakRank3Stalls is the largest per-tile stall count among rank-3
	// tiles — the localized hot-spot metric from Fig. 12.
	PeakRank3Stalls float64
	// RouterRatioP50/P95 summarize the distribution of per-router
	// stalls-to-flits ratios.
	RouterRatioP50, RouterRatioP95 float64
}

// Fig10Result holds both modes' ensemble counter pictures.
type Fig10Result struct {
	App     string
	Figure  string
	Jobs    int
	Nodes   int
	PerMode map[routing.Mode]EnsembleCounters
}

// Fig10MILCEnsembleCounters reproduces the paper's Fig. 10: an ensemble of
// large MILC jobs filling the machine, run under AD0 and then AD3, with
// the whole-system stalls/flits/ratio compared per tile class.
func Fig10MILCEnsembleCounters(p Profile, seed int64) (*Fig10Result, error) {
	return ensembleCounterStudy(p, apps.MILC{}, "Fig. 10", p.EnsembleLarge, p.NodesLarge, seed)
}

// Fig12HACCEnsembleCounters reproduces the paper's Fig. 12: the HACC
// ensemble, where strong minimal bias concentrates load on a subset of
// rank-3 links (peak stalls) and increases total flits via backpressure.
func Fig12HACCEnsembleCounters(p Profile, seed int64) (*Fig10Result, error) {
	return ensembleCounterStudy(p, apps.HACC{}, "Fig. 12", p.EnsembleMedium, p.NodesMedium, seed)
}

func ensembleCounterStudy(p Profile, a apps.App, figure string, count, nodes int, seed int64) (*Fig10Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{
		App: a.Name(), Figure: figure, Jobs: count, Nodes: nodes,
		PerMode: map[routing.Mode]EnsembleCounters{},
	}
	modes := []routing.Mode{routing.AD0, routing.AD3}
	// The two modes' ensembles are independent whole-machine runs; fan
	// them out and aggregate in mode order.
	runs, err := parallel.Map(mp.workers(), len(modes),
		func(worker, idx int) (*core.RunResult, error) {
			return ensembleRun(mp.machine(worker), p, a, count, nodes,
				modes[idx], placement.Dispersed, seed,
				&ldms.Options{Period: p.LDMSPeriod, RecordRouterRatios: true})
		})
	if err != nil {
		return nil, err
	}
	for idx, mode := range modes {
		run := runs[idx]
		m := mp.machine(0)
		mean := 0.0
		for _, j := range run.Jobs {
			mean += j.Runtime.Seconds()
		}
		mean /= float64(len(run.Jobs))
		ec := EnsembleCounters{Mode: mode, MeanRuntime: mean, Totals: run.Global}
		// Peak rank-3 per-tile stalls (hot-spot localization).
		c := run.GlobalCounters
		for r := range c.Stalls {
			for t := range c.Stalls[r] {
				if m.Topo.TileClassOf(t) == topology.TileRank3 && c.Stalls[r][t] > ec.PeakRank3Stalls {
					ec.PeakRank3Stalls = c.Stalls[r][t]
				}
			}
		}
		ratios := c.RouterRatios(nil)
		ps := stats.Percentiles(ratios, []float64{50, 95})
		ec.RouterRatioP50, ec.RouterRatioP95 = ps[0], ps[1]
		res.PerMode[mode] = ec
	}
	return res, nil
}

// Render prints the per-class counters for both modes side by side.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d x %d-node %s ensemble, global counters, AD0 vs AD3\n",
		r.Figure, r.Jobs, r.Nodes, r.App)
	a0, a3 := r.PerMode[routing.AD0], r.PerMode[routing.AD3]
	fmt.Fprintf(&b, "mean job runtime: AD0 %.4fs, AD3 %.4fs\n", a0.MeanRuntime, a3.MeanRuntime)
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-9s | %-14s %-14s %-9s\n",
		"tile", "AD0 flits", "AD0 stalls", "ratio", "AD3 flits", "AD3 stalls", "ratio")
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		fmt.Fprintf(&b, "%-10s %-14d %-14.0f %-9.3f | %-14d %-14.0f %-9.3f\n",
			class,
			a0.Totals.Flits[class], a0.Totals.Stalls[class], a0.Totals.Ratio(class),
			a3.Totals.Flits[class], a3.Totals.Stalls[class], a3.Totals.Ratio(class))
	}
	fmt.Fprintf(&b, "peak rank-3 tile stalls: AD0 %.0f, AD3 %.0f\n", a0.PeakRank3Stalls, a3.PeakRank3Stalls)
	fmt.Fprintf(&b, "router stalls/flits p50/p95: AD0 %.3f/%.3f, AD3 %.3f/%.3f\n",
		a0.RouterRatioP50, a0.RouterRatioP95, a3.RouterRatioP50, a3.RouterRatioP95)
	return b.String()
}
