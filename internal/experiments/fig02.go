package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/routing"
	"repro/internal/stats"
)

// ModeStats summarizes one routing mode's runtime sample.
type ModeStats struct {
	Mode routing.Mode
	N    int
	Mean float64
	Std  float64
	P95  float64
	PDF  *stats.Histogram
}

// modeStats computes the summary, applying the paper's ±3σ outlier
// filter to the aggregated runtimes.
func modeStats(mode routing.Mode, values *stats.Agg, lo, hi float64, bins int) ModeStats {
	filtered := values.FilterOutliers(3)
	return ModeStats{
		Mode: mode, N: filtered.Count(),
		Mean: filtered.Mean(), Std: filtered.Std(),
		P95: filtered.Percentile(95),
		PDF: filtered.Hist(lo, hi, bins),
	}
}

// Fig2Result reproduces the paper's Fig. 2: runtime probability densities
// for MILC and MILCREORDER at the medium job size under AD0 vs AD3 in
// production conditions.
type Fig2Result struct {
	Nodes   int
	PerApp  map[string]map[routing.Mode]ModeStats
	Samples []Sample
}

// Fig2MILCRuntimePDF runs the production campaigns and builds the PDFs.
// Runtimes fold into per-mode aggregates as the runs stream; the retained
// samples are compact (no Reports).
func Fig2MILCRuntimePDF(p Profile, seed int64) (*Fig2Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Nodes: p.NodesMedium, PerApp: map[string]map[routing.Mode]ModeStats{}}
	modes := []routing.Mode{routing.AD0, routing.AD3}
	for _, a := range []apps.App{apps.MILC{}, apps.MILC{Reorder: true}} {
		all := stats.NewAgg()
		perModeAgg := map[routing.Mode]*stats.Agg{}
		err := productionReduce(mp, p, a, p.NodesMedium, modes, seed,
			func(idx int, s *Sample) {
				res.Samples = append(res.Samples, s.Compact())
				all.Add(s.RuntimeSec)
				agg := perModeAgg[s.Mode]
				if agg == nil {
					agg = stats.NewAgg()
					perModeAgg[s.Mode] = agg
				}
				agg.Add(s.RuntimeSec)
			})
		if err != nil {
			return nil, err
		}
		lo, hi := all.Min(), all.Max()
		perMode := map[routing.Mode]ModeStats{}
		for mode, agg := range perModeAgg {
			perMode[mode] = modeStats(mode, agg, lo, hi, 10)
		}
		res.PerApp[a.Name()] = perMode
	}
	return res, nil
}

// Render prints mean / σ / P95 and the density series per app per mode.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — MILC & MILCREORDER runtime PDFs (%d nodes, production)\n", r.Nodes)
	for _, app := range []string{"MILC", "MILCREORDER"} {
		perMode, ok := r.PerApp[app]
		if !ok {
			continue
		}
		for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
			ms := perMode[mode]
			fmt.Fprintf(&b, "%-13s %s n=%-3d mean=%.4fs std=%.4fs p95=%.4fs\n",
				app, mode, ms.N, ms.Mean, ms.Std, ms.P95)
		}
		ad0, ad3 := perMode[routing.AD0], perMode[routing.AD3]
		if ad0.Mean > 0 {
			fmt.Fprintf(&b, "%-13s AD3 mean improvement over AD0: %.1f%% (paper: ~11%%)\n",
				app, 100*(ad0.Mean-ad3.Mean)/ad0.Mean)
		}
		// Density series (bin center, AD0 pdf, AD3 pdf).
		if ad0.PDF != nil && ad3.PDF != nil {
			fmt.Fprintf(&b, "  %-10s %-10s %-10s\n", "runtime", "pdf(AD0)", "pdf(AD3)")
			for i := range ad0.PDF.Counts {
				fmt.Fprintf(&b, "  %-10.4f %-10.3f %-10.3f\n",
					ad0.PDF.BinCenter(i), ad0.PDF.PDF(i), ad3.PDF.PDF(i))
			}
		}
	}
	return b.String()
}

// Fig2FromSamples derives the Fig. 2 PDFs from an existing sample set
// (e.g. Table II's runs) instead of launching a fresh campaign. Compact
// samples suffice — only runtimes are consumed.
func Fig2FromSamples(nodes int, samples []Sample) *Fig2Result {
	res := &Fig2Result{Nodes: nodes, PerApp: map[string]map[routing.Mode]ModeStats{}}
	perApp := map[string][]Sample{}
	for _, s := range samples {
		if s.App == "MILC" || s.App == "MILCREORDER" {
			perApp[s.App] = append(perApp[s.App], s)
			res.Samples = append(res.Samples, s)
		}
	}
	for app, ss := range perApp {
		lo, hi := stats.MinMax(runtimes(ss))
		perMode := map[routing.Mode]ModeStats{}
		for mode, ms := range byMode(ss) {
			agg := stats.NewAgg()
			agg.AddAll(runtimes(ms))
			perMode[mode] = modeStats(mode, agg, lo, hi, 10)
		}
		res.PerApp[app] = perMode
	}
	return res
}
