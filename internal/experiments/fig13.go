package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ldms"
	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// CampaignWindowStats summarizes one production era (before or after the
// default-routing change).
type CampaignWindowStats struct {
	Mode    routing.Mode
	Totals  network.ClassTotals
	Windows int
	// Per-window network flits and stalls (the paper's Fig. 13 time
	// series; one point per LDMS window).
	WindowFlits  []float64
	WindowStalls []float64
	// RouterRatios pools the per-router per-window ratio distribution and
	// NICLatencies the per-NIC mean-latency samples (Fig. 14 input). Both
	// are streamed by the LDMS daemon under Options.Stream, so the
	// campaign never materializes the raw sample slices.
	RouterRatios *stats.Agg
	NICLatencies *stats.Agg
}

// Fig13Result compares the two eras.
type Fig13Result struct {
	Before, After CampaignWindowStats
}

// Fig13DefaultSwitch reproduces the paper's Fig. 13 (and collects the
// Fig. 14 latency samples): two production campaigns with every job on
// the machine using the era's default mode — AD0 before, AD3 after. The
// eras are independent whole-machine campaigns and fan out across the
// worker pool; results are stored in era order.
func Fig13DefaultSwitch(p Profile, seed int64) (*Fig13Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}
	eras := []struct {
		mode routing.Mode
		dst  *CampaignWindowStats
	}{
		{routing.AD0, &res.Before},
		{routing.AD3, &res.After},
	}
	err = parallel.ForEach(mp.workers(), len(eras), func(worker, idx int) error {
		era := eras[idx]
		bg := core.DefaultBackground()
		bg.Env = mpi.UniformEnv(era.mode)
		camp, err := mp.machine(worker).RunCampaign(p.CampaignWindow, *bg, ldms.Options{
			Period:             p.LDMSPeriod,
			RecordRouterRatios: true,
			RecordNICLatency:   true,
			Stream:             true,
		}, seed)
		if err != nil {
			return err
		}
		st := CampaignWindowStats{Mode: era.mode, Totals: camp.Global}
		for _, s := range camp.LDMS.Samples() {
			var flits uint64
			var stalls float64
			for _, class := range networkClasses {
				flits += s.Totals.Flits[class]
				stalls += s.Totals.Stalls[class]
			}
			st.WindowFlits = append(st.WindowFlits, float64(flits))
			st.WindowStalls = append(st.WindowStalls, stalls)
		}
		st.Windows = len(st.WindowFlits)
		st.RouterRatios = camp.LDMS.RouterRatioAgg()
		st.NICLatencies = camp.LDMS.NICLatencyAgg()
		*era.dst = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// NetworkRatio returns an era's overall network-tile stalls-to-flits.
func (s CampaignWindowStats) NetworkRatio() float64 {
	var flits uint64
	var stalls float64
	for _, class := range networkClasses {
		flits += s.Totals.Flits[class]
		stalls += s.Totals.Stalls[class]
	}
	if flits == 0 {
		return 0
	}
	return stalls / float64(flits)
}

// Render prints the before/after comparison.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — system-wide counters before (AD0) and after (AD3) the default change\n")
	for _, st := range []CampaignWindowStats{r.Before, r.After} {
		ps := st.RouterRatios.Percentiles([]float64{50, 95})
		fmt.Fprintf(&b, "%-4s windows=%-4d netFlits=%-14.3g netStalls=%-14.3g ratio=%.3f routerRatio p50=%.3f p95=%.3f\n",
			st.Mode, st.Windows,
			stats.Mean(st.WindowFlits)*float64(st.Windows),
			stats.Mean(st.WindowStalls)*float64(st.Windows),
			st.NetworkRatio(),
			ps[0], ps[1])
	}
	b0, a3 := r.Before.NetworkRatio(), r.After.NetworkRatio()
	if b0 > 0 {
		fmt.Fprintf(&b, "network stalls-to-flits change: %.1f%% (paper: marked improvement, ~2x)\n",
			100*(b0-a3)/b0)
	}
	// Per-class table.
	fmt.Fprintf(&b, "%-10s %-12s %-12s\n", "tile", "AD0 ratio", "AD3 ratio")
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		fmt.Fprintf(&b, "%-10s %-12.3f %-12.3f\n", class,
			r.Before.Totals.Ratio(class), r.After.Totals.Ratio(class))
	}
	return b.String()
}
