package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AblationPoint is one configuration's outcome in an ablation sweep.
type AblationPoint struct {
	Label       string
	MeanRuntime float64
	StdRuntime  float64
	StallRatio  float64 // network-tile stalls-to-flits over the runs
	NonMinPct   float64 // job packets routed non-minimally
}

// AblationResult is one sweep over a design-choice axis.
type AblationResult struct {
	Axis   string
	App    string
	Mode   routing.Mode
	Points []AblationPoint
}

// Render prints the sweep.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s (%s under %s)\n", r.Axis, r.App, r.Mode)
	fmt.Fprintf(&b, "%-22s %-10s %-10s %-10s %-10s\n",
		"config", "mean(s)", "std(s)", "stl/flt", "nonmin%")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-22s %-10.4f %-10.4f %-10.3f %-10.1f\n",
			pt.Label, pt.MeanRuntime, pt.StdRuntime, pt.StallRatio, pt.NonMinPct)
	}
	return b.String()
}

// ablationRun executes p.Runs production runs of MILC with the given mode
// and returns the aggregate point. The seeded runs are independent, so
// they fan out across the pool; aggregation walks them in run order.
func ablationRun(mp *machinePool, p Profile, mode routing.Mode, label string, seed int64) (AblationPoint, error) {
	jobs, err := parallel.Map(mp.workers(), p.Runs,
		func(worker, i int) (*core.JobResult, error) {
			spec := core.JobSpec{
				App:       apps.MILC{},
				Cfg:       apps.Config{Iterations: p.iterationsFor("MILC"), Scale: p.scaleFor("MILC"), Seed: seed + int64(i)},
				Nodes:     p.NodesMedium,
				Placement: placement.Dispersed,
				Env:       mpi.UniformEnv(mode),
			}
			job, _, err := mp.machine(worker).RunOne(spec, core.RunOpts{
				Seed:       seed + int64(i),
				Background: core.DefaultBackground(),
				Warmup:     p.Warmup,
			})
			return job, err
		})
	if err != nil {
		return AblationPoint{}, err
	}
	var times []float64
	var stalls, flits float64
	var nonMin, total uint64
	for _, job := range jobs {
		times = append(times, job.Runtime.Seconds())
		for _, class := range networkClasses {
			stalls += job.Report.LocalTiles.Stalls[class]
			flits += float64(job.Report.LocalTiles.Flits[class])
		}
		nonMin += job.NonMinimalPkts
		total += job.MinimalPkts + job.NonMinimalPkts
	}
	mean, std := stats.MeanStd(times)
	pt := AblationPoint{Label: label, MeanRuntime: mean, StdRuntime: std}
	if flits > 0 {
		pt.StallRatio = stalls / flits
	}
	if total > 0 {
		pt.NonMinPct = 100 * float64(nonMin) / float64(total)
	}
	return pt, nil
}

// AblationCandidates sweeps the number of path candidates the adaptive
// choice scores (Aries evaluates a small fixed set; more candidates mean
// better-informed but costlier decisions).
func AblationCandidates(p Profile, mode routing.Mode, seed int64) (*AblationResult, error) {
	res := &AblationResult{Axis: "routing candidates (minimal/valiant)", App: "MILC", Mode: mode}
	for _, k := range []int{1, 2, 4} {
		k := k
		mp, err := p.thetaPool()
		if err != nil {
			return nil, err
		}
		mp.apply(func(m *core.Machine) {
			m.Route.MinimalCandidates = k
			m.Route.NonMinimalCandidates = k
		})
		pt, err := ablationRun(mp, p, mode, fmt.Sprintf("k=%d", k), seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// AblationBufferDepth sweeps per-VC buffer capacity: shallow buffers mean
// early backpressure and congestion spreading; deep buffers absorb bursts
// as latency.
func AblationBufferDepth(p Profile, mode routing.Mode, seed int64) (*AblationResult, error) {
	res := &AblationResult{Axis: "per-VC buffer depth", App: "MILC", Mode: mode}
	for _, flits := range []int{256, 768, 3072} {
		flits := flits
		mp, err := p.thetaPool()
		if err != nil {
			return nil, err
		}
		mp.apply(func(m *core.Machine) { m.Net.BufferFlits = flits })
		pt, err := ablationRun(mp, p, mode,
			fmt.Sprintf("%dKB", flits*mp.machine(0).Net.FlitBytes/1024), seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// AblationEstimateQuality sweeps the congestion-estimate error model: an
// oracle estimator (fresh, exact) against the hardware-faithful stale and
// noisy one. The gap is the information-quality mechanism behind the
// paper's findings.
func AblationEstimateQuality(p Profile, mode routing.Mode, seed int64) (*AblationResult, error) {
	res := &AblationResult{Axis: "load-estimate quality", App: "MILC", Mode: mode}
	type cfg struct {
		label     string
		staleness sim.Time
		jitter    float64
	}
	for _, c := range []cfg{
		{"oracle", 0, 0},
		{"stale-3us", 3 * sim.Microsecond, 0},
		{"stale+jitter", 3 * sim.Microsecond, 0.75},
	} {
		c := c
		mp, err := p.thetaPool()
		if err != nil {
			return nil, err
		}
		mp.apply(func(m *core.Machine) {
			m.Net.LoadStaleness = c.staleness
			m.Net.LoadJitter = c.jitter
		})
		pt, err := ablationRun(mp, p, mode, c.label, seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// AblationProgressiveAD1 compares injection-time AD1 (fixed shift 1)
// against the patented per-hop "increasingly minimal" re-evaluation.
func AblationProgressiveAD1(p Profile, seed int64) (*AblationResult, error) {
	res := &AblationResult{Axis: "AD1 progressive bias", App: "MILC", Mode: routing.AD1}
	for _, progressive := range []bool{false, true} {
		progressive := progressive
		mp, err := p.thetaPool()
		if err != nil {
			return nil, err
		}
		mp.apply(func(m *core.Machine) { m.Route.Progressive = progressive })
		label := "fixed-shift"
		if progressive {
			label = "progressive"
		}
		pt, err := ablationRun(mp, p, routing.AD1, label, seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// AblationBaselines compares the adaptive presets against the pure
// MIN/VAL bounds from the dragonfly literature.
func AblationBaselines(p Profile, seed int64) (*AblationResult, error) {
	res := &AblationResult{Axis: "routing policy bounds", App: "MILC", Mode: routing.AD0}
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	for _, mode := range []routing.Mode{
		routing.MinimalOnly, routing.AD3, routing.AD2, routing.AD1,
		routing.AD0, routing.ValiantOnly,
	} {
		pt, err := ablationRun(mp, p, mode, mode.String(), seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
