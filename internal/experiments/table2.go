package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Table2Row is one application's production comparison (the paper's
// Table II): mean ± σ runtime under AD0 and AD3 and the percentage
// improvements in total time and MPI time.
type Table2Row struct {
	App             string
	MeanAD0, StdAD0 float64
	MeanAD3, StdAD3 float64
	ImprovePct      float64 // runtime improvement of AD3 over AD0
	ImproveMPIPct   float64 // MPI-time improvement
	Runs            int     // per mode
	WelchT          float64 // significance of the runtime difference
}

// Table2Result is the full table plus the campaign's residue shared with
// the rest of the t2 family: compact per-run samples (Figs. 2/5/7/8) and
// MILC's tile-ratio aggregates (Fig. 6 via Fig6FromTable2). The full
// autoperf.Reports exist only inside the streaming fold.
type Table2Result struct {
	Nodes   int
	Rows    []Table2Row
	Samples []Sample
	Tiles   tileAggs
}

// Table2AllApps runs the production campaign for every application at the
// medium size under AD0 and AD3, folding statistics as the runs stream.
func Table2AllApps(p Profile, seed int64) (*Table2Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Nodes: p.NodesMedium, Tiles: tileAggs{}}
	modes := []routing.Mode{routing.AD0, routing.AD3}
	for _, a := range apps.All() {
		rt := map[routing.Mode]*stats.Agg{}
		mpiT := map[routing.Mode]*stats.Agg{}
		for _, m := range modes {
			rt[m], mpiT[m] = stats.NewAgg(), stats.NewAgg()
		}
		isMILC := a.Name() == milcApp().Name()
		err := productionReduce(mp, p, a, p.NodesMedium, modes, seed,
			func(idx int, s *Sample) {
				res.Samples = append(res.Samples, s.Compact())
				rt[s.Mode].Add(s.RuntimeSec)
				mpiT[s.Mode].Add(s.MPISec())
				if isMILC {
					foldTileRatios(res.Tiles, s)
				}
			})
		if err != nil {
			return nil, err
		}
		f0 := rt[routing.AD0].FilterOutliers(3)
		f3 := rt[routing.AD3].FilterOutliers(3)
		tstat, _ := stats.WelchTAgg(f0, f3)
		res.Rows = append(res.Rows, Table2Row{
			App:     a.Name(),
			MeanAD0: f0.Mean(), StdAD0: f0.Std(),
			MeanAD3: f3.Mean(), StdAD3: f3.Std(),
			ImprovePct:    stats.PercentImprovementAgg(f0, f3),
			ImproveMPIPct: stats.PercentImprovementAgg(mpiT[routing.AD0], mpiT[routing.AD3]),
			Runs:          f0.Count(),
			WelchT:        tstat,
		})
	}
	return res, nil
}

// Render prints the table in the paper's format.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — mean(σ) runtime (s) and %% improvement of AD3 over AD0, %d nodes, production\n", r.Nodes)
	fmt.Fprintf(&b, "%-13s %-18s %-18s %-10s %-10s %-6s %-6s\n",
		"App", "AD0 µ±σ", "AD3 µ±σ", "%time", "%MPI", "runs", "t")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %8.4f ± %-7.4f %8.4f ± %-7.4f %-10.1f %-10.1f %-6d %-6.1f\n",
			row.App, row.MeanAD0, row.StdAD0, row.MeanAD3, row.StdAD3,
			row.ImprovePct, row.ImproveMPIPct, row.Runs, row.WelchT)
	}
	return b.String()
}
