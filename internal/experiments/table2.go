package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Table2Row is one application's production comparison (the paper's
// Table II): mean ± σ runtime under AD0 and AD3 and the percentage
// improvements in total time and MPI time.
type Table2Row struct {
	App             string
	MeanAD0, StdAD0 float64
	MeanAD3, StdAD3 float64
	ImprovePct      float64 // runtime improvement of AD3 over AD0
	ImproveMPIPct   float64 // MPI-time improvement
	Runs            int     // per mode
	WelchT          float64 // significance of the runtime difference
}

// Table2Result is the full table plus the raw samples (shared with Figs.
// 5-8, which decompose the same runs).
type Table2Result struct {
	Nodes   int
	Rows    []Table2Row
	Samples []Sample
}

// Table2AllApps runs the production campaign for every application at the
// medium size under AD0 and AD3.
func Table2AllApps(p Profile, seed int64) (*Table2Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Nodes: p.NodesMedium}
	modes := []routing.Mode{routing.AD0, routing.AD3}
	for _, a := range apps.All() {
		samples, err := productionSamples(mp, p, a, p.NodesMedium, modes, seed)
		if err != nil {
			return nil, err
		}
		res.Samples = append(res.Samples, samples...)
		per := byMode(samples)
		rt0 := stats.FilterOutliers(runtimes(per[routing.AD0]), 3)
		rt3 := stats.FilterOutliers(runtimes(per[routing.AD3]), 3)
		m0, s0 := stats.MeanStd(rt0)
		m3, s3 := stats.MeanStd(rt3)
		tstat, _ := stats.WelchT(rt0, rt3)
		res.Rows = append(res.Rows, Table2Row{
			App:     a.Name(),
			MeanAD0: m0, StdAD0: s0,
			MeanAD3: m3, StdAD3: s3,
			ImprovePct:    stats.PercentImprovement(rt0, rt3),
			ImproveMPIPct: stats.PercentImprovement(mpiTimes(per[routing.AD0]), mpiTimes(per[routing.AD3])),
			Runs:          len(rt0),
			WelchT:        tstat,
		})
	}
	return res, nil
}

// Render prints the table in the paper's format.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — mean(σ) runtime (s) and %% improvement of AD3 over AD0, %d nodes, production\n", r.Nodes)
	fmt.Fprintf(&b, "%-13s %-18s %-18s %-10s %-10s %-6s %-6s\n",
		"App", "AD0 µ±σ", "AD3 µ±σ", "%time", "%MPI", "runs", "t")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %8.4f ± %-7.4f %8.4f ± %-7.4f %-10.1f %-10.1f %-6d %-6.1f\n",
			row.App, row.MeanAD0, row.StdAD0, row.MeanAD3, row.StdAD3,
			row.ImprovePct, row.ImproveMPIPct, row.Runs, row.WelchT)
	}
	return b.String()
}
