package experiments

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Fig6Result reproduces the paper's Fig. 6: the stalls-to-flits ratio on
// the application's local router tiles, broken down by tile class
// (Rank3/Rank2/Rank1/Proc_req/Proc_rsp), under AD0 vs AD3.
type Fig6Result struct {
	App   string
	Nodes int
	// Ratios[mode][class] is the distribution of per-tile ratios pooled
	// over all runs of that mode.
	Ratios map[routing.Mode]map[topology.TileClass][]float64
}

// Fig6MILCTileRatios runs the MILC production campaign and collects the
// per-class tile counter ratios from the AutoPerf reports.
func Fig6MILCTileRatios(p Profile, seed int64) (*Fig6Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	samples, err := productionSamples(mp, p, milcApp(), p.NodesMedium,
		[]routing.Mode{routing.AD0, routing.AD3}, seed)
	if err != nil {
		return nil, err
	}
	return fig6FromSamples("MILC", p.NodesMedium, samples), nil
}

func fig6FromSamples(app string, nodes int, samples []Sample) *Fig6Result {
	res := &Fig6Result{
		App: app, Nodes: nodes,
		Ratios: map[routing.Mode]map[topology.TileClass][]float64{},
	}
	for _, s := range samples {
		if s.App != app {
			continue
		}
		if res.Ratios[s.Mode] == nil {
			res.Ratios[s.Mode] = map[topology.TileClass][]float64{}
		}
		for class, ratios := range s.Report.LocalTileRatios {
			res.Ratios[s.Mode][class] = append(res.Ratios[s.Mode][class], ratios...)
		}
	}
	return res
}

// MeanRatio returns the mean ratio for (mode, class).
func (r *Fig6Result) MeanRatio(mode routing.Mode, class topology.TileClass) float64 {
	return stats.Mean(r.Ratios[mode][class])
}

// Render prints the per-class ratio summary in the paper's order.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — %s stalls-to-flits ratio by tile class (%d nodes)\n", r.App, r.Nodes)
	order := []topology.TileClass{
		topology.TileRank3, topology.TileRank2, topology.TileRank1,
		topology.TileProcReq, topology.TileProcRsp,
	}
	fmt.Fprintf(&b, "%-10s %-22s %-22s\n", "tile", "AD0 mean/p95", "AD3 mean/p95")
	for _, class := range order {
		a0 := r.Ratios[routing.AD0][class]
		a3 := r.Ratios[routing.AD3][class]
		fmt.Fprintf(&b, "%-10s %-8.3f/%-13.3f %-8.3f/%-13.3f\n", class,
			stats.Mean(a0), stats.Percentile(a0, 95),
			stats.Mean(a3), stats.Percentile(a3, 95))
	}
	return b.String()
}

// Fig6FromSamples derives the Fig. 6 tile ratios from existing samples.
func Fig6FromSamples(nodes int, samples []Sample) *Fig6Result {
	return fig6FromSamples("MILC", nodes, samples)
}
