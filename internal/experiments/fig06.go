package experiments

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// tileAggs pools per-tile stalls-to-flits ratios per mode and class as
// mergeable online aggregates, folded in seed order during the campaign
// (the distributions cannot be rebuilt from compact samples afterwards).
type tileAggs = map[routing.Mode]map[topology.TileClass]*stats.Agg

// foldTileRatios folds one full sample's per-class tile ratios into dst.
// Must run inside the streaming fold, while s.Report is still attached.
// Every class gets an aggregate (even if empty), mirroring the report's
// LocalTileRatios keys.
func foldTileRatios(dst tileAggs, s *Sample) {
	per := dst[s.Mode]
	if per == nil {
		per = map[topology.TileClass]*stats.Agg{}
		dst[s.Mode] = per
	}
	for class := topology.TileClass(0); class < topology.NumTileClasses; class++ {
		agg := per[class]
		if agg == nil {
			agg = stats.NewAgg()
			per[class] = agg
		}
		agg.AddAll(s.Report.LocalTileRatios[class])
	}
}

// Fig6Result reproduces the paper's Fig. 6: the stalls-to-flits ratio on
// the application's local router tiles, broken down by tile class
// (Rank3/Rank2/Rank1/Proc_req/Proc_rsp), under AD0 vs AD3.
type Fig6Result struct {
	App   string
	Nodes int
	// Ratios[mode][class] aggregates the per-tile ratios pooled over all
	// runs of that mode, in run order.
	Ratios tileAggs
}

// Fig6MILCTileRatios runs the MILC production campaign, folding the
// per-class tile counter ratios out of each AutoPerf report as it
// completes — the campaign never retains a full report.
func Fig6MILCTileRatios(p Profile, seed int64) (*Fig6Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{App: "MILC", Nodes: p.NodesMedium, Ratios: tileAggs{}}
	err = productionReduce(mp, p, milcApp(), p.NodesMedium,
		[]routing.Mode{routing.AD0, routing.AD3}, seed,
		func(idx int, s *Sample) {
			foldTileRatios(res.Ratios, s)
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MeanRatio returns the mean ratio for (mode, class).
func (r *Fig6Result) MeanRatio(mode routing.Mode, class topology.TileClass) float64 {
	return r.Ratios[mode][class].Mean()
}

// Render prints the per-class ratio summary in the paper's order.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — %s stalls-to-flits ratio by tile class (%d nodes)\n", r.App, r.Nodes)
	order := []topology.TileClass{
		topology.TileRank3, topology.TileRank2, topology.TileRank1,
		topology.TileProcReq, topology.TileProcRsp,
	}
	fmt.Fprintf(&b, "%-10s %-22s %-22s\n", "tile", "AD0 mean/p95", "AD3 mean/p95")
	for _, class := range order {
		a0 := r.Ratios[routing.AD0][class]
		a3 := r.Ratios[routing.AD3][class]
		fmt.Fprintf(&b, "%-10s %-8.3f/%-13.3f %-8.3f/%-13.3f\n", class,
			a0.Mean(), a0.Percentile(95),
			a3.Mean(), a3.Percentile(95))
	}
	return b.String()
}

// Fig6FromTable2 derives the Fig. 6 result from a Table 2 campaign's
// tile aggregates (the campaign folds MILC's ratios as it streams, so
// the t2 family shares one set of runs without retaining reports).
func Fig6FromTable2(t2 *Table2Result) *Fig6Result {
	return &Fig6Result{App: "MILC", Nodes: t2.Nodes, Ratios: t2.Tiles}
}
