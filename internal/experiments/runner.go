package experiments

import (
	"context"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/autoperf"
	"repro/internal/core"
	"repro/internal/ldms"
	"repro/internal/mpi"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

// machinePool hands each parallel worker its own Machine. A Machine
// mutates during Run — it rewinds and reuses a warm kernel/fabric pair
// across the runs assigned to its slot (see core.Machine) — so
// one-machine-per-worker is what keeps the no-shared-mutable-state
// invariant between workers trivially auditable. The reuse is also the
// point: each slot pays fabric construction once, not once per run.
type machinePool struct {
	machines []*core.Machine
}

// newMachinePool builds `workers` identical machines from cfg.
func newMachinePool(cfg topology.Config, workers int) (*machinePool, error) {
	if workers < 1 {
		workers = 1
	}
	mp := &machinePool{machines: make([]*core.Machine, workers)}
	for i := range mp.machines {
		m, err := core.NewMachine(cfg)
		if err != nil {
			return nil, err
		}
		mp.machines[i] = m
	}
	return mp, nil
}

// workers returns the pool's fan-out.
func (mp *machinePool) workers() int { return len(mp.machines) }

// machine returns the Machine owned by one worker slot.
func (mp *machinePool) machine(worker int) *core.Machine { return mp.machines[worker] }

// apply mutates every worker's machine identically (ablation sweeps).
func (mp *machinePool) apply(f func(m *core.Machine)) {
	for _, m := range mp.machines {
		f(m)
	}
}

// runStream builds the explicit per-run random stream for one seed. Every
// randomized choice outside a Machine.Run derives from such a stream —
// never from shared or package-level state — so runs stay independent and
// can execute on any worker in any order without changing their draws.
func runStream(seed, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*31 + salt))
}

// Stream salts keep the per-seed streams of different concerns apart.
const (
	// saltGroupSpread drives the placement-spread draw of production runs.
	saltGroupSpread = 7
	// saltJobMix drives the Fig. 1 synthetic job-mix campaign.
	saltJobMix = 13
)

// Sample is one production-style run observation: the unit of the paper's
// per-application statistics.
type Sample struct {
	App        string
	Mode       routing.Mode
	Seed       int64
	Nodes      int
	Groups     int // dragonfly groups spanned by the placement
	RuntimeSec float64
	// Report is the run's full AutoPerf output. Campaign pipelines hold
	// it only inside their streaming fold (its LocalTileRatios slices
	// scale with router count); retained samples carry nil here and keep
	// the fixed-size Reduced digest instead. Isolated/single-run paths
	// still populate it.
	Report *autoperf.Report
	// Reduced is the fixed-size digest built on the worker right after
	// the run completes; it survives compaction and is what long-lived
	// consumers (figures, tables, the simd service) read.
	Reduced *autoperf.Reduced
	// MinPkts / NonMinPkts count the job's own adaptive routing decisions,
	// and MeanTransitSec is the mean network transit of its packets —
	// per-run routing diagnostics the simd service aggregates into its
	// response (zero in harnesses that predate them).
	MinPkts        uint64
	NonMinPkts     uint64
	MeanTransitSec float64
	// Events / Packets are the run's whole-machine kernel event and
	// delivered-packet totals (background traffic included). Their ratio
	// is the events-per-packet figure the simd /metrics page exports —
	// the deterministic cost proxy the link-fusion work optimizes.
	// Zero in harnesses that predate them.
	Events  uint64
	Packets uint64
}

// MPISec returns the per-rank average MPI time in seconds.
func (s Sample) MPISec() float64 {
	if s.Reduced != nil {
		if s.Reduced.Ranks == 0 {
			return 0
		}
		return s.Reduced.MPITime.Seconds() / float64(s.Reduced.Ranks)
	}
	if s.Report == nil || s.Report.Ranks == 0 {
		return 0
	}
	return s.Report.Profile.MPITime().Seconds() / float64(s.Report.Ranks)
}

// Compact returns the sample with its full Report dropped; the Reduced
// digest (always present on campaign samples) carries everything a
// retained sample needs. Folds that keep samples beyond the streaming
// window must keep this, not the original.
func (s Sample) Compact() Sample {
	s.Report = nil
	return s
}

// jobSpec assembles the JobSpec for one production run. clusterGroups <= 0
// means use the explicit placement policy instead.
func (p Profile) jobSpec(app apps.App, nodes int, mode routing.Mode,
	policy placement.Policy, clusterGroups int, seed int64) core.JobSpec {
	return core.JobSpec{
		App: app,
		Cfg: apps.Config{
			Iterations: p.iterationsFor(app.Name()),
			Scale:      p.scaleFor(app.Name()),
			Seed:       seed,
		},
		Nodes:         nodes,
		Placement:     policy,
		ClusterGroups: clusterGroups,
		Env:           mpi.UniformEnv(mode),
	}
}

// productionSamples runs p.Runs production runs per mode, fanned out over
// the pool's workers. Run i of every mode shares a seed, so the placement
// (a fragmented allocation spanning a seed-chosen number of groups) and
// the background noise are identical across modes — only the instrumented
// job's routing differs, exactly the paper's production methodology (the
// rest of the system stays on the default AD0).
//
// Every (run, mode) pair is one independent task on its worker's own
// Machine; results are merged in (run, mode) order, so the sample slice is
// identical to what the sequential nested loop produced.
func productionSamples(mp *machinePool, p Profile, app apps.App, nodes int,
	modes []routing.Mode, seedBase int64) ([]Sample, error) {

	return productionSamplesCtx(context.Background(), mp, p, app, nodes,
		modes, core.DefaultBackground(), seedBase)
}

// productionSamplesCtx is the list-building wrapper over the streaming
// core: it retains one compact (Report-free) sample per task, in seed
// order. On error the returned slice holds the successful prefix/suffix
// samples in order (failed tasks contribute nothing); callers that need
// all-or-nothing semantics discard it when err != nil.
func productionSamplesCtx(ctx context.Context, mp *machinePool, p Profile,
	app apps.App, nodes int, modes []routing.Mode, bg *core.BackgroundSpec,
	seedBase int64) ([]Sample, error) {

	out := make([]Sample, 0, p.Runs*len(modes))
	err := productionReduceCtx(ctx, mp, p, app, nodes, modes, bg, seedBase,
		func(idx int, s *Sample) {
			out = append(out, s.Compact())
		})
	return out, err
}

// productionReduce is productionReduceCtx under the default background
// and context — the entry the figure/table folds use.
func productionReduce(mp *machinePool, p Profile, app apps.App, nodes int,
	modes []routing.Mode, seedBase int64, fold func(idx int, s *Sample)) error {

	return productionReduceCtx(context.Background(), mp, p, app, nodes,
		modes, core.DefaultBackground(), seedBase, fold)
}

// productionReduceCtx is the streaming core of the production campaign:
// each (run, mode) task executes on its worker's machine and its full
// Sample — Report attached, Reduced digest already built — is handed to
// fold in strict (run, mode) order, exactly the order the sequential
// nested loop would produce. The Report reference is dropped as soon as
// fold returns, so with parallel.ReduceContext's bounded reordering
// window the campaign retains O(workers) Reports at any moment, no
// matter how many runs it has. fold must not keep s.Report (or s itself)
// past its return; retain s.Compact() instead.
func productionReduceCtx(ctx context.Context, mp *machinePool, p Profile,
	app apps.App, nodes int, modes []routing.Mode, bg *core.BackgroundSpec,
	seedBase int64, fold func(idx int, s *Sample)) error {

	maxGroups := mp.machine(0).Topo.Cfg.Groups
	return parallel.ReduceContext(ctx, mp.workers(), p.Runs*len(modes),
		func(worker, idx int) (Sample, error) {
			i, mode := idx/len(modes), modes[idx%len(modes)]
			seed := seedBase + int64(i)
			// Seed-derived target spread: covers 1..maxGroups over the
			// campaign, like the paper's months of varying allocations.
			// The stream is rebuilt per task, so tasks that share a run
			// seed draw the same spread on any worker.
			gr := 1 + runStream(seed, saltGroupSpread).Intn(maxGroups)
			spec := p.jobSpec(app, nodes, mode, placement.Dispersed, gr, seed)
			job, res, err := mp.machine(worker).RunOne(spec, core.RunOpts{
				Seed:       seed,
				Background: bg,
				Warmup:     p.Warmup,
			})
			if err != nil {
				return Sample{}, err
			}
			return Sample{
				App: app.Name(), Mode: mode, Seed: seed,
				Nodes: nodes, Groups: job.GroupsSpanned,
				RuntimeSec: job.Runtime.Seconds(),
				Report:     job.Report,
				Reduced:    job.Report.Reduce(),
				MinPkts:    job.MinimalPkts, NonMinPkts: job.NonMinimalPkts,
				MeanTransitSec: job.MeanTransit.Seconds(),
				Events:         res.EventsExecuted,
				Packets:        res.PacketsDelivered,
			}, nil
		},
		func(idx int, s Sample) {
			fold(idx, &s)
		})
}

// SamplesOn runs the production-style campaign on caller-owned machines —
// the entry point the simd service layer drives. The machines must share
// one configuration; len(machines) sets the fan-out, and each machine is
// rewound warm across the runs assigned to its slot exactly as the batch
// pool does, so results are byte-identical to a batch campaign with the
// same arguments. Samples come back compact: the full per-run
// autoperf.Report is digested into Sample.Reduced on the worker and
// dropped, so a long-lived service process retains fixed-size samples.
// Cancelling ctx stops undispatched runs and returns ctx's error; runs
// already simulating complete first and their samples are kept.
func (p Profile) SamplesOn(ctx context.Context, machines []*core.Machine,
	app apps.App, nodes int, modes []routing.Mode, bg *core.BackgroundSpec,
	seedBase int64) ([]Sample, error) {

	return productionSamplesCtx(ctx, &machinePool{machines: machines}, p,
		app, nodes, modes, bg, seedBase)
}

// ProductionEnsemble is the exported entry to one app's production
// campaign: p.Runs seeded runs per mode, fanned out over p.Workers
// workers and merged in seed order. It is what the root-level ensemble
// benchmarks and the determinism regression tests drive.
func ProductionEnsemble(p Profile, app apps.App, nodes int,
	modes []routing.Mode, seedBase int64) ([]Sample, error) {

	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	return productionSamples(mp, p, app, nodes, modes, seedBase)
}

// isolatedSample runs one app alone on an otherwise idle machine.
func isolatedSample(m *core.Machine, p Profile, app apps.App, nodes int,
	mode routing.Mode, policy placement.Policy, seed int64) (Sample, error) {

	spec := p.jobSpec(app, nodes, mode, policy, 0, seed)
	job, _, err := m.RunOne(spec, core.RunOpts{Seed: seed})
	if err != nil {
		return Sample{}, err
	}
	return Sample{
		App: app.Name(), Mode: mode, Seed: seed,
		Nodes: nodes, Groups: job.GroupsSpanned,
		RuntimeSec: job.Runtime.Seconds(),
		Report:     job.Report,
		Reduced:    job.Report.Reduce(),
	}, nil
}

// ensembleRun launches `count` simultaneous copies of the same app (the
// paper's controlled reservation experiments) and returns the RunResult
// with per-job results plus global counters / LDMS samples.
func ensembleRun(m *core.Machine, p Profile, app apps.App, count, nodes int,
	mode routing.Mode, policy placement.Policy, seed int64,
	ldmsOpts *ldms.Options) (*core.RunResult, error) {

	specs := make([]core.JobSpec, count)
	for i := range specs {
		specs[i] = p.jobSpec(app, nodes, mode, policy, 0, seed+int64(i))
	}
	return m.Run(specs, core.RunOpts{Seed: seed, LDMS: ldmsOpts})
}

// byMode partitions samples by routing mode.
func byMode(samples []Sample) map[routing.Mode][]Sample {
	out := make(map[routing.Mode][]Sample)
	for _, s := range samples {
		out[s.Mode] = append(out[s.Mode], s)
	}
	return out
}

// runtimes extracts runtime seconds.
func runtimes(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.RuntimeSec
	}
	return out
}

// mpiTimes extracts per-rank MPI seconds.
func mpiTimes(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.MPISec()
	}
	return out
}

// milcApp returns the plain MILC proxy.
func milcApp() apps.App { return apps.MILC{} }

// networkClasses are the three network tile classes (the "40 network
// tiles" of the paper's Fig. 11).
var networkClasses = []topology.TileClass{
	topology.TileRank1, topology.TileRank2, topology.TileRank3,
}

// networkTileRatios pools a sample's per-tile stalls-to-flits ratios over
// the network tile classes. Requires the full Report — call it inside a
// streaming fold, before the sample is compacted.
func networkTileRatios(s *Sample) []float64 {
	n := 0
	for _, class := range networkClasses {
		n += len(s.Report.LocalTileRatios[class])
	}
	out := make([]float64, 0, n)
	for _, class := range networkClasses {
		out = append(out, s.Report.LocalTileRatios[class]...)
	}
	return out
}
