package experiments

import (
	"math/rand"

	"repro/internal/apps"
	"repro/internal/autoperf"
	"repro/internal/core"
	"repro/internal/ldms"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Sample is one production-style run observation: the unit of the paper's
// per-application statistics.
type Sample struct {
	App        string
	Mode       routing.Mode
	Seed       int64
	Nodes      int
	Groups     int // dragonfly groups spanned by the placement
	RuntimeSec float64
	Report     *autoperf.Report
}

// MPISec returns the per-rank average MPI time in seconds.
func (s Sample) MPISec() float64 {
	if s.Report == nil || s.Report.Ranks == 0 {
		return 0
	}
	return s.Report.Profile.MPITime().Seconds() / float64(s.Report.Ranks)
}

// jobSpec assembles the JobSpec for one production run. clusterGroups <= 0
// means use the explicit placement policy instead.
func (p Profile) jobSpec(app apps.App, nodes int, mode routing.Mode,
	policy placement.Policy, clusterGroups int, seed int64) core.JobSpec {
	return core.JobSpec{
		App: app,
		Cfg: apps.Config{
			Iterations: p.iterationsFor(app.Name()),
			Scale:      p.scaleFor(app.Name()),
			Seed:       seed,
		},
		Nodes:         nodes,
		Placement:     policy,
		ClusterGroups: clusterGroups,
		Env:           mpi.UniformEnv(mode),
	}
}

// productionSamples runs p.Runs production runs per mode. Run i of every
// mode shares a seed, so the placement (a fragmented allocation spanning a
// seed-chosen number of groups) and the background noise are identical
// across modes — only the instrumented job's routing differs, exactly the
// paper's production methodology (the rest of the system stays on the
// default AD0).
func productionSamples(m *core.Machine, p Profile, app apps.App, nodes int,
	modes []routing.Mode, seedBase int64) ([]Sample, error) {

	maxGroups := m.Topo.Cfg.Groups
	var out []Sample
	for i := 0; i < p.Runs; i++ {
		seed := seedBase + int64(i)
		// Seed-derived target spread: covers 1..maxGroups over the
		// campaign, like the paper's months of varying allocations.
		gr := 1 + rand.New(rand.NewSource(seed*31+7)).Intn(maxGroups)
		for _, mode := range modes {
			spec := p.jobSpec(app, nodes, mode, placement.Dispersed, gr, seed)
			job, _, err := m.RunOne(spec, core.RunOpts{
				Seed:       seed,
				Background: core.DefaultBackground(),
				Warmup:     p.Warmup,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Sample{
				App: app.Name(), Mode: mode, Seed: seed,
				Nodes: nodes, Groups: job.GroupsSpanned,
				RuntimeSec: job.Runtime.Seconds(), Report: job.Report,
			})
		}
	}
	return out, nil
}

// isolatedSample runs one app alone on an otherwise idle machine.
func isolatedSample(m *core.Machine, p Profile, app apps.App, nodes int,
	mode routing.Mode, policy placement.Policy, seed int64) (Sample, error) {

	spec := p.jobSpec(app, nodes, mode, policy, 0, seed)
	job, _, err := m.RunOne(spec, core.RunOpts{Seed: seed})
	if err != nil {
		return Sample{}, err
	}
	return Sample{
		App: app.Name(), Mode: mode, Seed: seed,
		Nodes: nodes, Groups: job.GroupsSpanned,
		RuntimeSec: job.Runtime.Seconds(), Report: job.Report,
	}, nil
}

// ensembleRun launches `count` simultaneous copies of the same app (the
// paper's controlled reservation experiments) and returns the RunResult
// with per-job results plus global counters / LDMS samples.
func ensembleRun(m *core.Machine, p Profile, app apps.App, count, nodes int,
	mode routing.Mode, policy placement.Policy, seed int64,
	ldmsOpts *ldms.Options) (*core.RunResult, error) {

	specs := make([]core.JobSpec, count)
	for i := range specs {
		specs[i] = p.jobSpec(app, nodes, mode, policy, 0, seed+int64(i))
	}
	return m.Run(specs, core.RunOpts{Seed: seed, LDMS: ldmsOpts})
}

// byMode partitions samples by routing mode.
func byMode(samples []Sample) map[routing.Mode][]Sample {
	out := make(map[routing.Mode][]Sample)
	for _, s := range samples {
		out[s.Mode] = append(out[s.Mode], s)
	}
	return out
}

// runtimes extracts runtime seconds.
func runtimes(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.RuntimeSec
	}
	return out
}

// mpiTimes extracts per-rank MPI seconds.
func mpiTimes(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.MPISec()
	}
	return out
}

// milcApp returns the plain MILC proxy.
func milcApp() apps.App { return apps.MILC{} }

// networkClasses are the three network tile classes (the "40 network
// tiles" of the paper's Fig. 11).
var networkClasses = []topology.TileClass{
	topology.TileRank1, topology.TileRank2, topology.TileRank3,
}

// networkTileRatios pools a sample's per-tile stalls-to-flits ratios over
// the network tile classes.
func networkTileRatios(s Sample) []float64 {
	var out []float64
	for _, class := range networkClasses {
		out = append(out, s.Report.LocalTileRatios[class]...)
	}
	return out
}
