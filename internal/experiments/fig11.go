package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Regime labels for Fig. 11.
const (
	RegimeProduction         = "production"
	RegimeIsolated           = "isolated"
	RegimeControlledCompact  = "controlled-compact"
	RegimeControlledDisperse = "controlled-disperse"
)

// Fig11Result reproduces the paper's Fig. 11: the distribution (PDF) of
// stalls-to-flits ratios on the job's local network tiles for MILC at the
// medium size, compared across production, isolated, and controlled
// (compact / disperse ensemble) regimes, for AD0 and AD3.
type Fig11Result struct {
	Nodes int
	// Ratios[mode][regime] aggregates per-tile network-tile ratios.
	Ratios map[routing.Mode]map[string]*stats.Agg
}

// regimeAgg returns (creating if needed) one regime's aggregate.
func (r *Fig11Result) regimeAgg(mode routing.Mode, regime string) *stats.Agg {
	per := r.Ratios[mode]
	if per == nil {
		per = map[string]*stats.Agg{}
		r.Ratios[mode] = per
	}
	agg := per[regime]
	if agg == nil {
		agg = stats.NewAgg()
		per[regime] = agg
	}
	return agg
}

// Fig11RegimeComparison runs all three regimes for both modes. Within a
// mode the production campaign, the isolated runs, and the two controlled
// ensembles each fan their independent runs across the worker pool; the
// ratio aggregates fold in run order, so output matches the sequential
// sweep exactly — and no regime retains a full report past its fold.
func Fig11RegimeComparison(p Profile, seed int64) (*Fig11Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Nodes: p.NodesMedium, Ratios: map[routing.Mode]map[string]*stats.Agg{}}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		mode := mode

		// Production: noisy machine.
		prodAgg := res.regimeAgg(mode, RegimeProduction)
		err := productionReduce(mp, p, milcApp(), p.NodesMedium,
			[]routing.Mode{mode}, seed, func(idx int, s *Sample) {
				prodAgg.AddAll(networkTileRatios(s))
			})
		if err != nil {
			return nil, err
		}

		// Isolated: one job alone.
		isoAgg := res.regimeAgg(mode, RegimeIsolated)
		err = parallel.ReduceContext(context.Background(), mp.workers(), p.Runs,
			func(worker, i int) (Sample, error) {
				return isolatedSample(mp.machine(worker), p, milcApp(), p.NodesMedium,
					mode, placement.Dispersed, seed+int64(i))
			},
			func(i int, s Sample) {
				isoAgg.AddAll(networkTileRatios(&s))
			})
		if err != nil {
			return nil, err
		}

		// Controlled: ensembles of the same app, compact and disperse.
		regimes := []struct {
			regime string
			policy placement.Policy
		}{
			{RegimeControlledCompact, placement.Compact},
			{RegimeControlledDisperse, placement.Dispersed},
		}
		err = parallel.ReduceContext(context.Background(), mp.workers(), len(regimes),
			func(worker, idx int) (*core.RunResult, error) {
				return ensembleRun(mp.machine(worker), p, milcApp(), p.EnsembleMedium,
					p.NodesMedium, mode, regimes[idx].policy, seed+977, nil)
			},
			func(idx int, run *core.RunResult) {
				agg := res.regimeAgg(mode, regimes[idx].regime)
				for _, j := range run.Jobs {
					for _, class := range networkClasses {
						agg.AddAll(j.Report.LocalTileRatios[class])
					}
				}
			})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints summary statistics of each regime's ratio distribution;
// the paper's claim is that production lies between the two controlled
// bounds under AD0.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — stalls-to-flits ratio on network tiles, MILC %d nodes\n", r.Nodes)
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		fmt.Fprintf(&b, "%s:\n", mode)
		for _, regime := range []string{
			RegimeIsolated, RegimeControlledCompact, RegimeProduction, RegimeControlledDisperse,
		} {
			ratios := r.Ratios[mode][regime]
			if ratios.Count() == 0 {
				continue
			}
			ps := ratios.Percentiles([]float64{25, 50, 75, 95})
			fmt.Fprintf(&b, "  %-20s n=%-6d mean=%-8.3f p25=%-8.3f p50=%-8.3f p75=%-8.3f p95=%-8.3f\n",
				regime, ratios.Count(), ratios.Mean(), ps[0], ps[1], ps[2], ps[3])
		}
	}
	return b.String()
}
