package experiments

import (
	"math"
	"testing"

	"repro/internal/routing"
)

// TestFusedProfileFigures validates the fused-vs-split link models at
// the figure level: the production config has rampant exact-timestamp
// event ties (every full packet is exactly one MTU), where the fused and
// split models legitimately schedule contention races in different
// orders, so byte-identity is not owed (see network's fused equivalence
// tests for the tie-free identity proof). What must hold instead is that
// fusion — now the default; Profile.SplitLinks restores the reference —
// does not move the paper's results: per-app per-mode mean runtimes stay
// within a fraction of the reference campaign's own run-to-run spread,
// and the AD3-vs-AD0 ordering that Fig. 2 reports is preserved.
func TestFusedProfileFigures(t *testing.T) {
	ref := testProfile()
	ref.SplitLinks = true
	fused := testProfile()

	rRef, err := Fig2MILCRuntimePDF(ref, 3)
	if err != nil {
		t.Fatal(err)
	}
	rFused, err := Fig2MILCRuntimePDF(fused, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"MILC", "MILCREORDER"} {
		for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
			mr := rRef.PerApp[app][mode]
			mf := rFused.PerApp[app][mode]
			if mf.N == 0 || mf.Mean <= 0 {
				t.Fatalf("fused %s/%s stats empty: %+v", app, mode, mf)
			}
			// Tolerance: the larger of the reference spread and 5% of the
			// mean (Quick-scale campaigns can have near-zero σ).
			tol := math.Max(mr.Std, 0.05*mr.Mean)
			if d := math.Abs(mf.Mean - mr.Mean); d > tol {
				t.Errorf("%s/%s: fused mean %.4fs vs reference %.4fs (Δ=%.4fs > tol %.4fs)",
					app, mode, mf.Mean, mr.Mean, d, tol)
			}
		}
		// Fig. 2's qualitative claim: AD3 does not lose to AD0 by more
		// than the tolerance under either model.
		ad0, ad3 := rFused.PerApp[app][routing.AD0], rFused.PerApp[app][routing.AD3]
		if ad3.Mean > ad0.Mean*1.10 {
			t.Errorf("%s: fused AD3 mean %.4fs worse than AD0 %.4fs beyond spread",
				app, ad3.Mean, ad0.Mean)
		}
	}

	// Fig. 6's tile-ratio structure must survive fusion: ratios present
	// for both modes, and the pooled means within the same tolerance
	// regime (stall accounting is the part of the counter contract the
	// lazy settle machinery most directly touches).
	f6Ref, err := Fig6MILCTileRatios(ref, 7)
	if err != nil {
		t.Fatal(err)
	}
	f6Fused, err := Fig6MILCTileRatios(fused, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		if len(f6Fused.Ratios[mode]) == 0 {
			t.Fatalf("fused fig6: no ratios for %s", mode)
		}
		// Pool across classes by count-weighting the per-class aggregates.
		var sumFused, sumRef float64
		var nFused, nRef int
		for class, rs := range f6Fused.Ratios[mode] {
			sumFused += rs.Sum()
			nFused += rs.Count()
			sumRef += f6Ref.Ratios[mode][class].Sum()
			nRef += f6Ref.Ratios[mode][class].Count()
		}
		mRef := pooledMean(sumRef, nRef)
		mFused := pooledMean(sumFused, nFused)
		if mRef > 0 {
			if d := math.Abs(mFused - mRef); d > 0.25*mRef+0.01 {
				t.Errorf("fig6 %s: fused mean tile ratio %.4f vs reference %.4f",
					mode, mFused, mRef)
			}
		}
	}
}

func pooledMean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
