package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenProfile runs the golden experiments with a parallel pool: the
// checked-in bytes were produced with Workers=4, so any nondeterminism
// introduced into the runner shows up as a golden diff. It is pinned to
// the Bench scale (not testProfile) so -short runs compare against the
// same bytes.
func goldenProfile() Profile {
	p := Bench()
	p.Name = "test"
	p.Workers = 4
	return p
}

// checkGolden compares rendered experiment text against testdata/<name>.golden,
// rewriting the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenFig1CCDF(t *testing.T) {
	checkGolden(t, "fig1", Fig1JobSizes(goldenProfile(), 1).Render())
}

func TestGoldenTable1(t *testing.T) {
	r, err := Table1Characterization(goldenProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", r.Render())
}

func TestGoldenFig6TileRatios(t *testing.T) {
	r, err := Fig6MILCTileRatios(goldenProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6", r.Render())
}
