package experiments

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/sim"
)

// BreakdownRun is one run's stacked runtime decomposition (the paper's
// Figs. 5 and 8): compute plus the three dominant MPI interfaces plus the
// rest, averaged per rank.
type BreakdownRun struct {
	Mode    routing.Mode
	Total   float64
	Compute float64
	Parts   map[string]float64 // dominant calls
	Other   float64
}

// BreakdownResult holds per-run decompositions for one app.
type BreakdownResult struct {
	App      string
	Figure   string
	Dominant []string
	Runs     []BreakdownRun
}

// breakdownFromSamples converts production samples into stacked
// decompositions using the app-wide dominant calls. It reads the compact
// Reduced digest (per-call times are integer sim.Time there, so the
// numbers are identical to what the full profile produced).
func breakdownFromSamples(app, figure string, dominant []string, samples []Sample) *BreakdownResult {
	res := &BreakdownResult{App: app, Figure: figure, Dominant: dominant}
	for _, s := range samples {
		if s.App != app {
			continue
		}
		d := s.Reduced
		ranks := float64(d.Ranks)
		run := BreakdownRun{
			Mode:    s.Mode,
			Total:   s.RuntimeSec,
			Compute: d.ComputeTime.Seconds() / ranks,
			Parts:   map[string]float64{},
		}
		var accounted sim.Time
		for _, call := range dominant {
			if st, ok := d.CallTime[call]; ok {
				run.Parts[call] = st.Seconds() / ranks
				accounted += st
			}
		}
		run.Other = (d.MPITime - accounted).Seconds() / ranks
		res.Runs = append(res.Runs, run)
	}
	return res
}

// Fig5MILCBreakdown reproduces the paper's Fig. 5: MILC runtime split into
// Compute, MPI_Allreduce, MPI_Wait(all), MPI_Isend and other MPI, one bar
// per production run, AD0 vs AD3.
func Fig5MILCBreakdown(p Profile, seed int64) (*BreakdownResult, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	samples, err := productionSamples(mp, p, milcApp(), p.NodesMedium,
		[]routing.Mode{routing.AD0, routing.AD3}, seed)
	if err != nil {
		return nil, err
	}
	return breakdownFromSamples("MILC", "Fig. 5",
		[]string{"MPI_Allreduce", "MPI_Waitall", "MPI_Isend"}, samples), nil
}

// Render prints one stacked bar per run.
func (r *BreakdownResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s runtime decomposition per run (seconds, per-rank mean)\n", r.Figure, r.App)
	header := fmt.Sprintf("%-5s %-9s %-9s", "mode", "total", "compute")
	for _, c := range r.Dominant {
		header += fmt.Sprintf(" %-13s", strings.TrimPrefix(c, "MPI_"))
	}
	fmt.Fprintf(&b, "%s %-9s\n", header, "otherMPI")
	for _, run := range r.Runs {
		row := fmt.Sprintf("%-5s %-9.4f %-9.4f", run.Mode, run.Total, run.Compute)
		for _, c := range r.Dominant {
			row += fmt.Sprintf(" %-13.4f", run.Parts[c])
		}
		fmt.Fprintf(&b, "%s %-9.4f\n", row, run.Other)
	}
	// Mode-level MPI means: the paper's claim is that the MPI share
	// shrinks under AD3.
	sums := map[routing.Mode][]float64{}
	for _, run := range r.Runs {
		mpiTotal := run.Other
		for _, v := range run.Parts {
			mpiTotal += v
		}
		sums[run.Mode] = append(sums[run.Mode], mpiTotal)
	}
	for _, mode := range []routing.Mode{routing.AD0, routing.AD3} {
		if vs := sums[mode]; len(vs) > 0 {
			mean := 0.0
			for _, v := range vs {
				mean += v
			}
			fmt.Fprintf(&b, "mean MPI time %s: %.4fs\n", mode, mean/float64(len(vs)))
		}
	}
	return b.String()
}

// Fig5FromSamples derives the Fig. 5 decomposition from existing samples
// (e.g. Table II's campaign).
func Fig5FromSamples(samples []Sample) *BreakdownResult {
	return breakdownFromSamples("MILC", "Fig. 5",
		[]string{"MPI_Allreduce", "MPI_Waitall", "MPI_Isend"}, samples)
}
