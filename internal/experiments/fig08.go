package experiments

// Fig8HACCBreakdown reproduces the paper's Fig. 8: HACC's runtime split
// into Compute, MPI_Wait, MPI_Waitall, MPI_Allreduce and other MPI per
// production run. It reuses the Table II samples when available.
func Fig8HACCBreakdown(t2 *Table2Result) *BreakdownResult {
	return breakdownFromSamples("HACC", "Fig. 8",
		[]string{"MPI_Wait", "MPI_Waitall", "MPI_Allreduce"}, t2.Samples)
}
