package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/routing"
)

// Table1Row characterizes one application's communication (the paper's
// Table I): dominant point-to-point and collective sizes, MPI share of
// runtime, and the three most time-consuming MPI interfaces.
type Table1Row struct {
	App         string
	P2PAvgBytes float64 // average point-to-point payload
	CollBytes   float64 // average collective payload
	MPIPercent  float64
	TopCalls    [3]string
}

// Table1Result is the full characterization table.
type Table1Result struct {
	Rows  []Table1Row
	Nodes int
}

// p2pCalls and collCalls classify MPI interfaces for the size columns.
var p2pCalls = []string{"MPI_Isend", "MPI_Send", "MPI_Sendrecv"}
var collCalls = []string{"MPI_Allreduce", "MPI_Alltoall", "MPI_Alltoallv", "MPI_Bcast", "MPI_Allgather", "MPI_Reduce"}

// waitLike are excluded from the "top calls" list's byte accounting but
// included in time ranking, as in AutoPerf's reporting.

// Table1Characterization runs each app isolated at the medium size on the
// default routing and extracts its communication properties. The six apps
// are independent single runs, so they fan out one per worker; each row
// is folded in app order and the full report dropped right after, so at
// most O(workers) reports are live at once. The byte/call columns need
// the full per-call profile, which is why this folds Reports rather than
// consuming compact digests.
func Table1Characterization(p Profile, seed int64) (*Table1Result, error) {
	mp, err := p.thetaPool()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Nodes: p.NodesMedium}
	all := apps.All()
	err = parallel.ReduceContext(context.Background(), mp.workers(), len(all),
		func(worker, idx int) (Sample, error) {
			return isolatedSample(mp.machine(worker), p, all[idx],
				p.NodesMedium, routing.AD0, placement.Compact, seed)
		},
		func(idx int, s Sample) {
			prof := s.Report.Profile
			row := Table1Row{App: all[idx].Name(), MPIPercent: 100 * s.Report.MPIFraction()}
			var p2pBytes, p2pCallsN, collBytes, collCallsN uint64
			for _, name := range p2pCalls {
				if st := prof.ByCall[name]; st != nil {
					p2pBytes += st.Bytes
					p2pCallsN += st.Calls
				}
			}
			for _, name := range collCalls {
				if st := prof.ByCall[name]; st != nil {
					collBytes += st.Bytes
					collCallsN += st.Calls
				}
			}
			if p2pCallsN > 0 {
				row.P2PAvgBytes = float64(p2pBytes) / float64(p2pCallsN)
			}
			if collCallsN > 0 {
				row.CollBytes = float64(collBytes) / float64(collCallsN)
			}
			top := prof.TopCalls(3)
			for i := 0; i < 3 && i < len(top); i++ {
				row.TopCalls[i] = top[i]
			}
			res.Rows = append(res.Rows, row)
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the table in the paper's column order.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Communication properties (%d-node runs, isolated, AD0)\n", r.Nodes)
	fmt.Fprintf(&b, "%-13s %-12s %-12s %-8s %-16s %-16s %-16s\n",
		"App", "p2p(avgB)", "coll(avgB)", "%MPI", "Call1", "Call2", "Call3")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %-12.0f %-12.0f %-8.1f %-16s %-16s %-16s\n",
			row.App, row.P2PAvgBytes, row.CollBytes, row.MPIPercent,
			row.TopCalls[0], row.TopCalls[1], row.TopCalls[2])
	}
	return b.String()
}
