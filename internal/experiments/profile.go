// Package experiments contains one harness per table and figure in the
// paper's evaluation. Each harness runs the required simulations and
// returns a result type whose Render method prints the same rows/series
// the paper reports, so `cmd/reproduce` (and the benchmarks in the repo
// root) regenerate the full evaluation.
//
// Absolute numbers are simulated seconds on a proportionally scaled
// machine (see topology.ThetaMiniConfig); the quantities compared against
// the paper are the shapes: who wins, by what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Profile scales an experiment campaign. Quick keeps unit tests fast;
// Standard is used by cmd/reproduce and the benchmarks.
type Profile struct {
	Name string

	// Theta / Cori machine configurations (scaled).
	Theta topology.Config
	Cori  topology.Config

	// Scaled equivalents of the paper's 128/256/512-node jobs.
	NodesSmall, NodesMedium, NodesLarge int
	// Cori job sizes (Cori-mini has more groups, same group size).
	CoriNodesMedium int

	// Runs per routing mode for production-style experiments. The paper
	// uses >30; scale this with available time.
	Runs int

	// App iteration counts and message-size scale.
	Iterations map[string]int
	Scale      map[string]float64

	// Background noise warmup before the instrumented job starts.
	Warmup sim.Time

	// Campaign length for the system-wide before/after experiments.
	CampaignWindow sim.Time
	LDMSPeriod     sim.Time

	// EnsembleJobs is the job count for controlled ensemble experiments
	// (the paper: eight 512-node or sixteen 256-node jobs).
	EnsembleLarge  int
	EnsembleMedium int

	// Workers is the fan-out for independent seeded runs: each campaign's
	// runs are distributed over this many OS-level workers, one Machine
	// per worker (the DES kernel stays single-threaded per run). Results
	// are merged in seed order, so every value — including <= 1, which
	// runs strictly sequentially — produces identical output.
	Workers int

	// SplitLinks turns OFF network.Params.FuseLinks for every machine the
	// profile builds, restoring the split reference model: separate
	// serialization-completion and propagation-arrival events per link
	// hop instead of the fused hop-done event. Fusion is the default
	// (goldens are recorded under it; ~25% fewer events per packet), so
	// this knob exists for equivalence checks and debugging — the
	// figure-level results stay within the campaign's run-to-run spread
	// either way (TestFusedProfileFigures pins this).
	SplitLinks bool
}

// workers clamps the fan-out to at least one.
func (p Profile) workers() int {
	if p.Workers < 1 {
		return 1
	}
	return p.Workers
}

// Quick returns the smallest profile that still exhibits every effect;
// used by unit tests and smoke checks.
func Quick() Profile {
	return Profile{
		Name:  "quick",
		Theta: topology.ThetaMiniConfig(),
		Cori:  topology.CoriMiniConfig(),
		// Sizes are chosen so the 4D grid has all-even dimensions —
		// otherwise MILCREORDER's blocked layout degenerates to the
		// identity and the two MILC variants coincide (the paper's
		// 128/256/512 are all powers of two for the same reason).
		NodesSmall:      16,
		NodesMedium:     32,
		NodesLarge:      64,
		CoriNodesMedium: 32,
		Runs:            4,
		Iterations: map[string]int{
			"MILC": 8, "MILCREORDER": 8, "Nek5000": 6,
			"HACC": 2, "Qbox": 6, "Rayleigh": 2,
		},
		Scale: map[string]float64{
			"MILC": 0.25, "MILCREORDER": 0.25, "Nek5000": 0.25,
			"HACC": 0.12, "Qbox": 0.25, "Rayleigh": 0.02,
		},
		Warmup:         sim.Millisecond,
		CampaignWindow: 30 * sim.Millisecond,
		LDMSPeriod:     5 * sim.Millisecond,
		EnsembleLarge:  4,
		EnsembleMedium: 8,
	}
}

// Standard returns the profile used by cmd/reproduce and the benchmarks:
// enough runs for statistics, still minutes not hours.
func Standard() Profile {
	p := Quick()
	p.Name = "standard"
	p.Runs = 12
	p.Iterations = map[string]int{
		"MILC": 12, "MILCREORDER": 12, "Nek5000": 10,
		"HACC": 3, "Qbox": 10, "Rayleigh": 3,
	}
	p.CampaignWindow = 80 * sim.Millisecond
	p.LDMSPeriod = 8 * sim.Millisecond
	p.EnsembleLarge = 6
	p.EnsembleMedium = 12
	return p
}

// thetaPool builds one Theta machine per worker for parallel campaigns.
func (p Profile) thetaPool() (*machinePool, error) {
	return p.pool(p.Theta)
}

// coriPool builds one Cori machine per worker.
func (p Profile) coriPool() (*machinePool, error) {
	return p.pool(p.Cori)
}

// pool builds the per-worker machines for cfg with the profile's network
// options applied.
func (p Profile) pool(cfg topology.Config) (*machinePool, error) {
	mp, err := newMachinePool(cfg, p.workers())
	if err != nil {
		return nil, err
	}
	if p.SplitLinks {
		mp.apply(func(m *core.Machine) { m.Net.FuseLinks = false })
	}
	return mp, nil
}

// appCfg builds the apps.Config for one app under this profile.
func (p Profile) iterationsFor(app string) int {
	if n, ok := p.Iterations[app]; ok {
		return n
	}
	return 4
}

func (p Profile) scaleFor(app string) float64 {
	if s, ok := p.Scale[app]; ok {
		return s
	}
	return 0.1
}

// Bench returns the profile used by the repo-level benchmarks: the
// smallest scale that still exercises every mechanism, so a full
// `go test -bench=.` pass stays in the minutes.
func Bench() Profile {
	p := Quick()
	p.Name = "bench"
	p.Runs = 2
	p.NodesSmall = 8 // odd-dim grid: REORDER==MILC at this size, fine for Fig. 3's small point
	p.NodesMedium = 16
	p.NodesLarge = 32
	p.CoriNodesMedium = 16
	p.Iterations = map[string]int{
		"MILC": 3, "MILCREORDER": 3, "Nek5000": 2,
		"HACC": 1, "Qbox": 2, "Rayleigh": 1,
	}
	p.Scale = map[string]float64{
		"MILC": 0.08, "MILCREORDER": 0.08, "Nek5000": 0.08,
		"HACC": 0.05, "Qbox": 0.08, "Rayleigh": 0.01,
	}
	p.Warmup = 500 * sim.Microsecond
	p.CampaignWindow = 12 * sim.Millisecond
	p.LDMSPeriod = 3 * sim.Millisecond
	p.EnsembleLarge = 2
	p.EnsembleMedium = 4
	return p
}
