package core

import (
	"math/rand"

	"repro/internal/apps"
	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// newRNG builds the run-level random stream.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
}

// bgCheckPeriod is how often the background controller tops up noise jobs.
const bgCheckPeriod = 20 * sim.Millisecond

// startBackground launches the noise controller: a proc that keeps the
// machine's free capacity filled with noise jobs sampled from the
// workload mix until cancel fires. Completed jobs release their nodes, and
// the controller backfills, emulating a production scheduler.
func startBackground(fab *network.Fabric, alloc *placement.Allocator,
	spec BackgroundSpec, cancel *sim.Signal, seed int64) {

	if spec.TargetUtilization <= 0 {
		return
	}
	if spec.TargetUtilization > 1 {
		spec.TargetUtilization = 1
	}
	if len(spec.Mix.Buckets) == 0 {
		spec.Mix = workload.ThetaMix()
	}
	if spec.Classes == nil {
		spec.Classes = workload.DefaultTrafficClasses()
	}
	zeroEnv := mpi.Env{}
	if spec.Env == zeroEnv {
		spec.Env = mpi.DefaultEnv()
	}

	k := fab.Kernel()
	rng := rand.New(rand.NewSource(seed ^ 0x6261636b)) // "back"
	capacity := alloc.FreeNodes()
	maxFree := int(float64(capacity) * (1 - spec.TargetUtilization))
	jobSeq := int64(0)

	var topUp func()
	topUp = func() {
		if cancel.Fired() {
			return
		}
		for alloc.FreeNodes() > maxFree {
			nodes, dur := spec.Mix.SampleJob(rng)
			if free := alloc.FreeNodes(); nodes > free {
				nodes = free
			}
			if nodes < 2 {
				break
			}
			policy := placement.Dispersed
			if rng.Intn(10) < 3 {
				policy = placement.Compact
			}
			alloced, err := alloc.Alloc(nodes, policy, rng)
			if err != nil {
				break
			}
			class := workload.SampleTraffic(spec.Classes, rng)
			jobSeq++
			noise := apps.Noise{
				Pattern:  class.Pattern,
				MsgBytes: class.MsgBytes,
				Gap:      class.Gap,
				Duration: dur,
				Cancel:   cancel,
			}
			w := mpi.NewWorld(fab, alloced, spec.Env)
			w.Run(noise.Main(apps.Config{Iterations: 1, Scale: 1, Seed: seed + jobSeq}))
			// Release nodes when the job drains.
			releaseOnDone(k, w, alloc, alloced)
		}
		k.After(bgCheckPeriod, topUp)
	}
	k.At(k.Now(), topUp)
}

// releaseOnDone frees a background job's nodes once its world completes.
func releaseOnDone(k *sim.Kernel, w *mpi.World, alloc *placement.Allocator, nodes []topology.NodeID) {
	k.Spawn(func(p *sim.Proc) {
		p.Wait(w.Done)
		alloc.Free(nodes)
	})
}
