package core

import (
	"reflect"
	"testing"

	"repro/internal/ldms"
	"repro/internal/routing"
	"repro/internal/sim"
)

// TestMachineResetEquivalence pins the warm-reuse contract: a Run on a
// machine whose kernel and fabric were rewound in place after previous
// (different) runs must produce a RunResult deeply equal to the same Run
// on a cold machine. This is the invariant that makes per-worker machine
// reuse safe for the ensemble runner — any state leaking across a reset
// (queue remnants, counter residue, RNG position, pool stats) shows up
// here as a diff.
func TestMachineResetEquivalence(t *testing.T) {
	target := milcSpec(8, routing.AD3)
	opts := RunOpts{Seed: 99, Background: DefaultBackground()}

	cold := testMachine(t)
	_, coldRes, err := cold.RunOne(target, opts)
	if err != nil {
		t.Fatal(err)
	}

	warm := testMachine(t)
	// Dirty the machine with runs that differ in seed, mode, background,
	// and traffic volume, so every piece of resettable state diverges
	// from its initial value before the comparison run.
	if _, _, err := warm.RunOne(milcSpec(8, routing.AD0), RunOpts{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := warm.RunOne(milcSpec(4, routing.AD2), RunOpts{Seed: 123, Background: DefaultBackground()}); err != nil {
		t.Fatal(err)
	}
	_, warmRes, err := warm.RunOne(target, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(warmRes, coldRes) {
		t.Errorf("warm (reset-then-run) RunResult differs from cold run:\nwarm: %+v\ncold: %+v",
			warmRes, coldRes)
	}
}

// TestMachineResetForcesRebuild pins Machine.Reset as the explicit cold
// path, and that editing the public configuration between runs is
// detected (the run after a change must behave like a fresh machine with
// the new parameters, not replay the old fabric).
func TestMachineResetForcesRebuild(t *testing.T) {
	m := testMachine(t)
	spec := milcSpec(8, routing.AD0)
	_, r1, err := m.RunOne(spec, RunOpts{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m.Reset() // discard the warm pair
	_, r2, err := m.RunOne(spec, RunOpts{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("run after explicit Reset differs from the original")
	}

	// A parameter edit must invalidate the warm fabric: the edited run
	// has to differ (tiny buffers force different backpressure), and
	// restoring the parameters must reproduce the original exactly.
	saved := m.Net
	m.Net.BufferFlits = 64
	_, rSmall, err := m.RunOne(spec, RunOpts{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.GlobalCounters, rSmall.GlobalCounters) {
		t.Error("shrinking BufferFlits between runs had no effect (stale warm fabric?)")
	}
	m.Net = saved
	_, r3, err := m.RunOne(spec, RunOpts{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Error("restoring parameters did not reproduce the original run")
	}
}

// TestCampaignResetEquivalence covers the second entry point: RunCampaign
// on a warm machine must match a cold one.
func TestCampaignResetEquivalence(t *testing.T) {
	runCampaign := func(m *Machine) *CampaignResult {
		t.Helper()
		res, err := m.RunCampaign(40*sim.Millisecond, *DefaultBackground(),
			ldms.Options{Period: 10 * sim.Millisecond}, 21)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := testMachine(t)
	coldRes := runCampaign(cold)

	warm := testMachine(t)
	if _, _, err := warm.RunOne(milcSpec(8, routing.AD0), RunOpts{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	warmRes := runCampaign(warm)

	if !reflect.DeepEqual(warmRes.Global, coldRes.Global) {
		t.Errorf("warm campaign counters differ from cold:\nwarm: %+v\ncold: %+v",
			warmRes.Global, coldRes.Global)
	}
	if warmRes.Duration != coldRes.Duration {
		t.Errorf("durations differ: %v vs %v", warmRes.Duration, coldRes.Duration)
	}
}
