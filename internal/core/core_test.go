package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/ldms"
	"repro/internal/mpi"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testMachine(t testing.TB) *Machine {
	t.Helper()
	m, err := NewMachine(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func milcSpec(nodes int, mode routing.Mode) JobSpec {
	return JobSpec{
		App:       apps.MILC{},
		Cfg:       apps.Config{Iterations: 2, Scale: 0.05, Seed: 3},
		Nodes:     nodes,
		Placement: placement.Compact,
		Env:       mpi.UniformEnv(mode),
	}
}

func TestRunIsolated(t *testing.T) {
	m := testMachine(t)
	job, res, err := m.RunOne(milcSpec(8, routing.AD0), RunOpts{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if job.Runtime <= 0 {
		t.Fatalf("runtime = %v", job.Runtime)
	}
	if job.Report == nil || job.Report.Profile.MPITime() <= 0 {
		t.Fatal("missing autoperf report")
	}
	if job.GroupsSpanned < 1 {
		t.Fatal("groups spanned")
	}
	if res.Global.TotalFlits() == 0 {
		t.Fatal("no global flits")
	}
	if res.PacketsDelivered < res.PacketsSent {
		t.Fatalf("delivered %d < sent %d", res.PacketsDelivered, res.PacketsSent)
	}
	// Pool telemetry plumbed up from the fabric: the run recycles packets
	// (steady state reuses the arena) and drains completely (every arena
	// slot back on the free list).
	if res.Pool.Recycled == 0 {
		t.Fatalf("pool never recycled: %+v", res.Pool)
	}
	if res.Pool.Free != res.Pool.Arena {
		t.Fatalf("pool leaked %d packets: %+v", res.Pool.Arena-res.Pool.Free, res.Pool)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := testMachine(t)
	run := func() (sim.Time, uint64) {
		job, res, err := m.RunOne(milcSpec(8, routing.AD3), RunOpts{Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return job.Runtime, res.Global.TotalFlits()
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", r1, f1, r2, f2)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	m := testMachine(t)
	j1, _, err := m.RunOne(JobSpec{
		App: apps.MILC{}, Cfg: apps.Config{Iterations: 2, Scale: 0.05, Seed: 3},
		Nodes: 8, Placement: placement.Dispersed, Env: mpi.UniformEnv(routing.AD0),
	}, RunOpts{Seed: 1, Background: DefaultBackground()})
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := m.RunOne(JobSpec{
		App: apps.MILC{}, Cfg: apps.Config{Iterations: 2, Scale: 0.05, Seed: 3},
		Nodes: 8, Placement: placement.Dispersed, Env: mpi.UniformEnv(routing.AD0),
	}, RunOpts{Seed: 2, Background: DefaultBackground()})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Runtime == j2.Runtime {
		t.Log("note: identical runtimes across seeds (possible but unlikely)")
	}
}

func TestRunWithBackground(t *testing.T) {
	m := testMachine(t)
	iso, _, err := m.RunOne(milcSpec(8, routing.AD0), RunOpts{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	noisy, res, err := m.RunOne(milcSpec(8, routing.AD0), RunOpts{
		Seed:       5,
		Background: DefaultBackground(),
		Warmup:     10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Runtime < iso.Runtime {
		t.Errorf("background noise made the job faster: %v < %v", noisy.Runtime, iso.Runtime)
	}
	// Background traffic must show up in global counters beyond the
	// job's own.
	if res.Global.TotalFlits() == 0 {
		t.Fatal("no flits with background running")
	}
}

func TestRunEnsemble(t *testing.T) {
	m := testMachine(t)
	specs := []JobSpec{
		milcSpec(8, routing.AD3),
		milcSpec(8, routing.AD3),
		milcSpec(8, routing.AD3),
	}
	res, err := m.Run(specs, RunOpts{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for i, j := range res.Jobs {
		if j.Runtime <= 0 {
			t.Fatalf("job %d runtime %v", i, j.Runtime)
		}
	}
	// Distinct node sets.
	seen := map[topology.NodeID]bool{}
	for _, j := range res.Jobs {
		for _, n := range j.Nodes {
			if seen[n] {
				t.Fatal("overlapping ensemble allocations")
			}
			seen[n] = true
		}
	}
}

func TestRunWithLDMS(t *testing.T) {
	m := testMachine(t)
	_, res, err := m.RunOne(milcSpec(8, routing.AD0), RunOpts{
		Seed: 3,
		LDMS: &ldms.Options{Period: 2 * sim.Millisecond, RecordRouterRatios: true, RecordNICLatency: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LDMS == nil || len(res.LDMS.Samples()) == 0 {
		t.Fatal("no LDMS samples")
	}
	if len(res.LDMS.AllRouterRatios()) == 0 {
		t.Fatal("no router ratios recorded")
	}
	if len(res.LDMS.AllNICLatencies()) == 0 {
		t.Fatal("no NIC latency samples recorded")
	}
	if res.LDMS.TotalsOverall().TotalFlits() == 0 {
		t.Fatal("LDMS totals empty")
	}
}

func TestRunErrors(t *testing.T) {
	m := testMachine(t)
	if _, err := m.Run(nil, RunOpts{}); err == nil {
		t.Error("empty run should fail")
	}
	if _, _, err := m.RunOne(milcSpec(0, routing.AD0), RunOpts{}); err == nil {
		t.Error("zero-node job should fail")
	}
	if _, _, err := m.RunOne(milcSpec(10_000, routing.AD0), RunOpts{}); err == nil {
		t.Error("oversized job should fail")
	}
}

func TestRunCampaign(t *testing.T) {
	m := testMachine(t)
	bg := DefaultBackground()
	res, err := m.RunCampaign(40*sim.Millisecond, *bg,
		ldms.Options{Period: 10 * sim.Millisecond, RecordRouterRatios: true}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Global.TotalFlits() == 0 {
		t.Fatal("campaign produced no traffic")
	}
	if len(res.LDMS.Samples()) < 3 {
		t.Fatalf("campaign samples = %d", len(res.LDMS.Samples()))
	}
}

func TestCampaignModeChangesCongestion(t *testing.T) {
	// The headline system-level claim (Fig. 13): an all-AD3 production
	// era has a lower stalls-to-flits ratio than an all-AD0 era.
	m := testMachine(t)
	run := func(mode routing.Mode) float64 {
		bg := DefaultBackground()
		bg.Env = mpi.UniformEnv(mode)
		res, err := m.RunCampaign(60*sim.Millisecond, *bg,
			ldms.Options{Period: 20 * sim.Millisecond}, 21)
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Global
		if tot.TotalFlits() == 0 {
			t.Fatal("no traffic")
		}
		return tot.TotalStalls() / float64(tot.TotalFlits())
	}
	ad0 := run(routing.AD0)
	ad3 := run(routing.AD3)
	t.Logf("campaign stalls/flits: AD0=%.4f AD3=%.4f", ad0, ad3)
	if ad3 > ad0*1.15 {
		t.Errorf("AD3 campaign ratio %.4f should not exceed AD0 %.4f", ad3, ad0)
	}
}

// TestLDMSSurvivesWarmReuse closes the ROADMAP audit item: RunResult.LDMS
// must keep reporting the originating run's counters after the warm
// kernel/fabric pair is rewound and reused for another run. Every Sample
// is materialized at tick time and Daemon.Stop drops the fabric
// reference, so re-reading the first result after the second run must be
// byte-identical to reading it before.
func TestLDMSSurvivesWarmReuse(t *testing.T) {
	m := testMachine(t)
	opts := RunOpts{
		Seed: 3,
		LDMS: &ldms.Options{Period: 2 * sim.Millisecond, RecordRouterRatios: true, RecordNICLatency: true},
	}
	_, res1, err := m.RunOne(milcSpec(8, routing.AD0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.LDMS == nil || len(res1.LDMS.Samples()) == 0 {
		t.Fatal("first run recorded no LDMS samples")
	}
	samples1 := deepCopySamples(res1.LDMS.Samples())
	totals1 := res1.LDMS.TotalsOverall()
	ratios1 := append([]float64(nil), res1.LDMS.AllRouterRatios()...)

	// Second run on the same machine: fabric() must take the warm path
	// (same config, drained kernel), mutating the counters res1's daemon
	// sampled from. Use a different routing mode so the traffic genuinely
	// differs.
	k1 := m.k
	_, res2, err := m.RunOne(milcSpec(8, routing.AD3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.k != k1 {
		t.Fatal("second run rebuilt instead of reusing the warm kernel")
	}
	if res2.LDMS == nil || len(res2.LDMS.Samples()) == 0 {
		t.Fatal("second run recorded no LDMS samples")
	}

	// Re-read the FIRST run's daemon after the reuse.
	if got := res1.LDMS.TotalsOverall(); got != totals1 {
		t.Fatalf("warm reuse changed first run's LDMS totals:\n before %+v\n after  %+v", totals1, got)
	}
	after := res1.LDMS.Samples()
	if len(after) != len(samples1) {
		t.Fatalf("warm reuse changed first run's sample count: %d -> %d", len(samples1), len(after))
	}
	for i := range after {
		if !sampleEqual(after[i], samples1[i]) {
			t.Fatalf("warm reuse changed first run's sample %d:\n before %+v\n after  %+v", i, samples1[i], after[i])
		}
	}
	if got := res1.LDMS.AllRouterRatios(); !floatsEqual(got, ratios1) {
		t.Fatal("warm reuse changed first run's router ratios")
	}
}

// deepCopySamples clones samples including their slice payloads, so later
// comparison detects in-place mutation rather than comparing aliases.
func deepCopySamples(in []ldms.Sample) []ldms.Sample {
	out := make([]ldms.Sample, len(in))
	for i, s := range in {
		out[i] = s
		out[i].RouterRatios = append([]float64(nil), s.RouterRatios...)
		out[i].NICLatency = append([]float64(nil), s.NICLatency...)
	}
	return out
}

func sampleEqual(a, b ldms.Sample) bool {
	return a.At == b.At && a.Totals == b.Totals &&
		floatsEqual(a.RouterRatios, b.RouterRatios) &&
		floatsEqual(a.NICLatency, b.NICLatency)
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
