// Package core is the public façade of the reproduction: it assembles the
// topology, fabric, MPI runtime, applications, placement, background
// noise, and telemetry into single-call experiment runs.
//
// A Machine describes one system (Theta, Cori, or a test instance). Runs
// are independent and fully deterministic in their seed: each Run resets
// the machine's warm kernel and fabric in place (or builds them fresh the
// first time, or after a parameter change), which is behaviourally
// identical to building new ones but skips the construction cost that
// used to dominate ensemble wall-clock.
package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/autoperf"
	"repro/internal/ldms"
	"repro/internal/mpi"
	"repro/internal/network"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Machine describes one system configuration. Construct with NewMachine,
// then adjust the public fields before the first Run if needed. A Machine
// is not safe for concurrent use: parallel ensembles give each worker its
// own Machine (see internal/experiments' machinePool).
type Machine struct {
	Topo  *topology.Topology //simlint:resetsafe public configuration; Reset discards run state, not config
	Net   network.Params     //simlint:resetsafe public configuration; Reset discards run state, not config
	Route routing.Config     //simlint:resetsafe public configuration; Reset discards run state, not config

	// Warm-reuse state: the kernel/fabric pair from the previous run,
	// reset in place for the next one while the public configuration
	// stays unchanged (the warm* copies detect edits between runs and
	// force a rebuild). Fabric construction is half the allocation
	// volume of an ensemble run, so reuse is what makes per-worker
	// machines cheap enough to replay hundreds of seeds.
	k         *sim.Kernel
	fab       *network.Fabric
	warmTopo  *topology.Topology //simlint:resetsafe unreachable once k is nil: fabric() rebuilds before reading it
	warmNet   network.Params     //simlint:resetsafe unreachable once k is nil: fabric() rebuilds before reading it
	warmRoute routing.Config     //simlint:resetsafe unreachable once k is nil: fabric() rebuilds before reading it

	// Lifetime reuse counters (see ReuseStats): how often fabric() took
	// the warm rewind path versus building fresh. Monotonic — Reset
	// forces the next build cold but does not rewind history.
	warmReuses uint64 //simlint:resetsafe observability counter, deliberately monotonic
	coldBuilds uint64 //simlint:resetsafe observability counter, deliberately monotonic
}

// fabric returns the kernel/fabric pair for one run: the machine's warm
// pair rewound in place when it exists and the configuration still
// matches, a fresh build otherwise. A previous run that failed mid-flight
// (live procs parked, events queued) also forces a rebuild — Reset's
// behavioural-identity guarantee only holds from a drained state.
func (m *Machine) fabric(seed int64) (*sim.Kernel, *network.Fabric) {
	if m.k != nil && m.warmTopo == m.Topo && m.warmNet == m.Net &&
		m.warmRoute == m.Route && m.k.LiveProcs() == 0 && m.k.Pending() == 0 {
		m.k.Reset()
		m.fab.Reset(seed)
		m.warmReuses++
		return m.k, m.fab
	}
	m.k = sim.NewKernel()
	m.fab = network.New(m.k, m.Topo, m.Net, m.Route, seed)
	m.warmTopo, m.warmNet, m.warmRoute = m.Topo, m.Net, m.Route
	m.coldBuilds++
	return m.k, m.fab
}

// ReuseStats reports how many runs rewound the warm kernel/fabric pair
// in place versus constructing fresh ones, over the machine's lifetime.
// The split is pure observability — warm and cold runs are behaviourally
// identical (the reset-equivalence tests) — but it is what lets a
// long-lived service prove its pool is actually amortizing construction.
func (m *Machine) ReuseStats() (warmReuses, coldBuilds uint64) {
	return m.warmReuses, m.coldBuilds
}

// Prewarm builds the machine's kernel/fabric pair ahead of the first Run
// so that run takes the warm rewind path instead of paying construction
// (half the allocation volume of a run) inside its latency budget. A
// no-op when a matching warm pair already exists. Results are unaffected
// either way — that is the reset-equivalence guarantee — so callers use
// this purely to move cost off the first request. The construction counts
// as a cold build in ReuseStats (it is one; it just happens early).
func (m *Machine) Prewarm() {
	if m.k != nil && m.warmTopo == m.Topo && m.warmNet == m.Net &&
		m.warmRoute == m.Route && m.k.LiveProcs() == 0 && m.k.Pending() == 0 {
		return // already warm; nothing to build, nothing to count
	}
	m.fabric(0)
}

// Reset discards the machine's warm kernel/fabric pair, forcing the next
// Run to construct fresh ones. Runs never need this — stale pairs are
// detected and rebuilt automatically — but tests comparing warm against
// cold behaviour use it as the explicit cold path.
func (m *Machine) Reset() {
	m.k = nil
	m.fab = nil
}

// NewMachine builds the topology for cfg with default fabric parameters.
func NewMachine(cfg topology.Config) (*Machine, error) {
	topo, err := topology.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{
		Topo:  topo,
		Net:   network.DefaultParams(),
		Route: routing.DefaultConfig(),
	}, nil
}

// Theta returns the ALCF Theta machine.
func Theta() (*Machine, error) { return NewMachine(topology.ThetaConfig()) }

// Cori returns the NERSC Cori machine.
func Cori() (*Machine, error) { return NewMachine(topology.CoriConfig()) }

// JobSpec describes one instrumented application job.
type JobSpec struct {
	App       apps.App
	Cfg       apps.Config
	Nodes     int
	Placement placement.Policy
	// ClusterGroups, when positive, overrides Placement with a
	// fragmented allocation drawn from about that many dragonfly groups
	// (production schedulers land jobs anywhere between 1 group and the
	// whole machine — the x-axis of the paper's Figs. 3-4).
	ClusterGroups int
	// Env carries the job's routing modes (the per-application setting
	// the paper's production experiments vary).
	Env mpi.Env
}

// BackgroundSpec describes the synthetic production noise filling the rest
// of the machine during a run.
type BackgroundSpec struct {
	// TargetUtilization is the fraction of the machine's remaining
	// nodes kept busy with noise jobs.
	TargetUtilization float64
	// Mix drives background job sizes and durations; zero value means
	// workload.ThetaMix.
	Mix workload.Mix
	// Classes drives background traffic intensity; nil means
	// workload.DefaultTrafficClasses.
	Classes []workload.TrafficClass
	// Env is the routing configuration background jobs use — AD0 in the
	// paper's "before" era, AD3 after the facilities changed defaults.
	Env mpi.Env
}

// DefaultBackground matches the production conditions of the paper's
// Section IV experiments: a busy machine running with the system-default
// routing.
func DefaultBackground() *BackgroundSpec {
	return &BackgroundSpec{
		TargetUtilization: 0.75,
		Mix:               workload.ThetaMix(),
		Classes:           workload.DefaultTrafficClasses(),
		Env:               mpi.DefaultEnv(),
	}
}

// RunOpts configures one Run.
type RunOpts struct {
	Seed int64
	// Background fills the rest of the machine with noise jobs; nil
	// runs the instrumented jobs in isolation.
	Background *BackgroundSpec
	// Warmup delays the instrumented jobs so background noise is
	// established first.
	Warmup sim.Time
	// LDMS enables global periodic counter sampling.
	LDMS *ldms.Options
}

// JobResult is the outcome of one instrumented job.
type JobResult struct {
	App           string
	Env           mpi.Env
	Nodes         []topology.NodeID
	GroupsSpanned int
	Runtime       sim.Time
	Report        *autoperf.Report
	// MinimalPkts / NonMinimalPkts count this job's own adaptive routing
	// decisions.
	MinimalPkts    uint64
	NonMinimalPkts uint64
	// MeanTransit is the mean network transit of the job's own packets.
	MeanTransit sim.Time
}

// RunResult is the outcome of one Run.
type RunResult struct {
	Jobs []JobResult
	// Global is the whole-system counter delta over the run.
	Global network.ClassTotals
	// GlobalCounters is the full per-tile counter delta.
	GlobalCounters *network.Counters
	// LDMS holds the sampler (nil unless requested).
	LDMS *ldms.Daemon
	// Fabric-level stats.
	PacketsSent, PacketsDelivered uint64
	MinimalTaken, NonMinimalTaken uint64
	EventsExecuted                uint64
	// Mean network transit by route class, diagnostics for the routing
	// mechanism (microseconds; counts in thousands).
	MinTransitUS, NonMinTransitUS float64
	MinCountK, NonMinCountK       uint64
	// Pool reports the fabric's packet-arena activity: Arena is the
	// high-water mark of simultaneously live packets, and Recycled/
	// Allocated shows how completely the zero-allocation hot path reused
	// packets instead of growing the heap.
	Pool network.PoolStats
}

// Run executes the instrumented jobs (simultaneously) with optional
// background noise, on the machine's warm fabric (rewound in place; see
// fabric). It blocks until the virtual machine fully drains and returns
// per-job results plus global telemetry.
func (m *Machine) Run(specs []JobSpec, opts RunOpts) (*RunResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no jobs to run")
	}
	k, fab := m.fabric(opts.Seed)
	alloc := placement.NewAllocator(m.Topo)
	rng := newRNG(opts.Seed)

	// Allocate instrumented jobs first so they get their requested
	// placement even on a crowded machine.
	type liveJob struct {
		spec  JobSpec
		nodes []topology.NodeID
		world *mpi.World
		coll  *autoperf.Collector
	}
	jobs := make([]*liveJob, len(specs))
	for i, spec := range specs {
		if spec.Nodes <= 0 {
			return nil, fmt.Errorf("core: job %d has %d nodes", i, spec.Nodes)
		}
		var nodes []topology.NodeID
		var err error
		if spec.ClusterGroups > 0 {
			nodes, err = alloc.AllocClustered(spec.Nodes, spec.ClusterGroups, rng)
		} else {
			nodes, err = alloc.Alloc(spec.Nodes, spec.Placement, rng)
		}
		if err != nil {
			return nil, fmt.Errorf("core: job %d: %w", i, err)
		}
		jobs[i] = &liveJob{spec: spec, nodes: nodes}
	}

	var daemon *ldms.Daemon
	if opts.LDMS != nil {
		daemon = ldms.Start(fab, *opts.LDMS)
	}

	cancelNoise := sim.NewSignal()
	if opts.Background != nil {
		startBackground(fab, alloc, *opts.Background, cancelNoise, opts.Seed)
	}

	// Start the instrumented jobs after warmup.
	k.At(opts.Warmup, func() {
		for _, j := range jobs {
			j := j
			j.coll = autoperf.Attach(fab, j.nodes)
			baseCfg := j.spec.Cfg
			if baseCfg.Seed == 0 {
				baseCfg.Seed = opts.Seed
			}
			j.world = mpi.NewWorld(fab, j.nodes, j.spec.Env)
			j.world.Run(j.spec.App.Main(baseCfg))
		}
		// Watcher: when every instrumented job completes, stop the
		// noise and the sampler so the kernel can drain.
		k.Spawn(func(p *sim.Proc) {
			for _, j := range jobs {
				p.Wait(j.world.Done)
			}
			cancelNoise.Fire(k)
			if daemon != nil {
				daemon.Stop()
			}
		})
	})

	before := fab.Counters().Snapshot()
	k.Run()

	res := &RunResult{
		GlobalCounters:   fab.Counters().Sub(before),
		LDMS:             daemon,
		PacketsSent:      fab.PacketsSent,
		PacketsDelivered: fab.PacketsDelivered,
		MinimalTaken:     fab.MinimalTaken,
		NonMinimalTaken:  fab.NonMinimalTaken,
		EventsExecuted:   k.Stats().EventsExecuted,
		Pool:             fab.PoolStats(),
	}
	if fab.MinimalCount > 0 {
		res.MinTransitUS = (fab.MinimalTransit / sim.Time(fab.MinimalCount)).Seconds() * 1e6
		res.MinCountK = fab.MinimalCount / 1000
	}
	if fab.NonMinimalCount > 0 {
		res.NonMinTransitUS = (fab.NonMinimalTransit / sim.Time(fab.NonMinimalCount)).Seconds() * 1e6
		res.NonMinCountK = fab.NonMinimalCount / 1000
	}
	res.Global = res.GlobalCounters.Aggregate(nil)
	for _, j := range jobs {
		if !j.world.Done.Fired() {
			return nil, fmt.Errorf("core: job %s did not complete", j.spec.App.Name())
		}
		res.Jobs = append(res.Jobs, JobResult{
			App:            j.spec.App.Name(),
			Env:            j.spec.Env,
			Nodes:          j.nodes,
			GroupsSpanned:  placement.GroupsSpanned(m.Topo, j.nodes),
			Runtime:        j.world.Runtime(),
			Report:         j.coll.Finish(j.spec.App.Name(), j.world),
			MinimalPkts:    j.world.MinimalPkts,
			NonMinimalPkts: j.world.NonMinimalPkts,
			MeanTransit:    meanTransit(j.world),
		})
	}
	return res, nil
}

// meanTransit averages a world's per-packet network transit.
func meanTransit(w *mpi.World) sim.Time {
	n := w.MinimalPkts + w.NonMinimalPkts
	if n == 0 {
		return 0
	}
	return w.TransitSum / sim.Time(n)
}

// RunOne is the single-job convenience wrapper.
func (m *Machine) RunOne(spec JobSpec, opts RunOpts) (*JobResult, *RunResult, error) {
	res, err := m.Run([]JobSpec{spec}, opts)
	if err != nil {
		return nil, nil, err
	}
	return &res.Jobs[0], res, nil
}

// CampaignResult is the outcome of a background-only production campaign.
type CampaignResult struct {
	LDMS     *ldms.Daemon
	Global   network.ClassTotals
	Duration sim.Time
}

// RunCampaign emulates a production window: background jobs only, sampled
// by LDMS for `duration` of virtual time. Used for the paper's
// before/after default-routing comparison (Figs. 13-14).
func (m *Machine) RunCampaign(duration sim.Time, bg BackgroundSpec, ldmsOpts ldms.Options, seed int64) (*CampaignResult, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("core: campaign duration must be positive")
	}
	k, fab := m.fabric(seed)
	alloc := placement.NewAllocator(m.Topo)

	daemon := ldms.Start(fab, ldmsOpts)
	cancel := sim.NewSignal()
	startBackground(fab, alloc, bg, cancel, seed)
	k.At(duration, func() {
		cancel.Fire(k)
		daemon.Stop()
	})
	before := fab.Counters().Snapshot()
	k.Run()
	return &CampaignResult{
		LDMS:     daemon,
		Global:   fab.Counters().Sub(before).Aggregate(nil),
		Duration: duration,
	}, nil
}
