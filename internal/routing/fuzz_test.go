package routing

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// clampFuzz maps an arbitrary fuzzed byte into [lo, hi].
func clampFuzz(v uint8, lo, hi int) int {
	return lo + int(v)%(hi-lo+1)
}

// FuzzMinimalPaths drives MinimalOnly routing over randomized small
// dragonfly shapes and random endpoint pairs. Properties: the path is
// link-contiguous from src to dst, and minimal routes take at most 5
// router-to-router hops (<=2 intra-group to the gateway, 1 rank-3
// crossing, <=2 intra-group to the destination). The f.Add corpus doubles
// as a regression suite under plain `go test`.
func FuzzMinimalPaths(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(1), uint8(1), uint16(0), uint16(1), int64(1))
	f.Add(uint8(4), uint8(2), uint8(4), uint8(4), uint16(3), uint16(29), int64(7))
	f.Add(uint8(8), uint8(3), uint8(2), uint8(1), uint16(100), uint16(5), int64(42))
	f.Add(uint8(12), uint8(2), uint8(3), uint8(2), uint16(65535), uint16(0), int64(-9))
	f.Add(uint8(3), uint8(1), uint8(2), uint8(12), uint16(17), uint16(17), int64(0))

	f.Fuzz(func(t *testing.T, groups, chassis, slots, r3links uint8,
		srcRaw, dstRaw uint16, rngSeed int64) {

		cfg := topology.TestConfig(clampFuzz(groups, 2, 12))
		cfg.ChassisPerGroup = clampFuzz(chassis, 1, 3)
		cfg.SlotsPerChassis = clampFuzz(slots, 1, 4)
		cfg.GlobalLinksPerPair = clampFuzz(r3links, 1, 12)
		cfg.ActiveNodes = cfg.Capacity()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("clamped config invalid: %v", err)
		}
		topo, err := topology.Build(cfg)
		if err != nil {
			t.Fatalf("build %+v: %v", cfg, err)
		}
		e := NewEngine(topo, nil, DefaultConfig())
		rng := rand.New(rand.NewSource(rngSeed))

		src := topology.RouterID(int(srcRaw) % topo.NumRouters())
		dst := topology.RouterID(int(dstRaw) % topo.NumRouters())
		p := e.Route(MinimalOnly, rng, src, dst, 0)
		validatePath(t, topo, src, dst, p)
		if p.Hops() > 5 {
			t.Fatalf("minimal path %d->%d has %d hops (>5): %v", src, dst, p.Hops(), p.Links)
		}
		if src == dst && p.Hops() != 0 {
			t.Fatalf("self route has %d hops", p.Hops())
		}
	})
}
