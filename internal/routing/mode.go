// Package routing implements Aries adaptive routing: minimal and Valiant
// non-minimal path construction over the dragonfly, and the four adaptive
// modes (ADAPTIVE_0..3) that bias the per-packet minimal/non-minimal choice
// using the shift+add scheme the paper describes (Section II-D).
package routing

import "fmt"

// Mode is one of the four Aries adaptive routing control modes.
//
// Software selects a mode per posted message (the Cray MPI environment
// variables MPICH_GNI_ROUTING_MODE and MPICH_GNI_A2A_ROUTING_MODE); the
// router then compares the estimated load on candidate minimal paths
// against biased load on candidate non-minimal paths.
type Mode uint8

// The four adaptive modes. AD0 is the Aries factory default; the paper's
// conclusion is that AD3 should be (and at ALCF/NERSC now is) the default.
const (
	// AD0 compares minimal and non-minimal load with equal bias.
	AD0 Mode = iota
	// AD1 is "increasingly minimal bias": the minimal preference grows as
	// a packet takes more hops. It is the Cray MPI default for
	// MPI_Alltoall[v]. At injection we model it with shift=1 (between AD0
	// and AD3); with progressive re-evaluation enabled the bias grows
	// per hop as on real hardware.
	AD1
	// AD2 is weak minimal bias: add 4, no shift.
	AD2
	// AD3 is strong minimal bias: shift 2, i.e. minimal-path load must
	// exceed 4x the non-minimal load before a non-minimal path is taken.
	AD3
	// NumModes is the adaptive mode count, for tables indexed by Mode.
	NumModes
)

// Non-adaptive baseline policies (outside the Aries preset table; used by
// ablation studies to bound the adaptive modes from both sides, as in Kim
// et al.'s original dragonfly evaluation).
const (
	// MinimalOnly always routes minimally (MIN).
	MinimalOnly Mode = 100 + iota
	// ValiantOnly always routes non-minimally when a Valiant path
	// exists (VAL).
	ValiantOnly
)

// String returns the paper's name for the mode, e.g. "AD3".
func (m Mode) String() string {
	switch {
	case m < NumModes:
		return fmt.Sprintf("AD%d", uint8(m))
	case m == MinimalOnly:
		return "MIN"
	case m == ValiantOnly:
		return "VAL"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Bias returns the (shift, add) parameters applied to the non-minimal load
// before comparison: a minimal path is chosen iff
//
//	minLoad <= (nonMinLoad << shift) + add
//
// so larger shift/add push the choice toward minimal routes.
func (m Mode) Bias() (shift, add uint) {
	switch m {
	case AD0:
		return 0, 0
	case AD1:
		return 1, 0
	case AD2:
		return 0, 4
	case AD3:
		return 2, 0
	}
	return 0, 0
}

// PrefersMinimal applies the Aries bias rule: true means take the minimal
// path given the two load estimates (in flits).
func (m Mode) PrefersMinimal(minLoad, nonMinLoad int) bool {
	shift, add := m.Bias()
	return minLoad <= nonMinLoad<<shift+int(add)
}

// ParseMode converts "AD0".."AD3" (or "0".."3") to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "AD0", "ADAPTIVE_0", "0":
		return AD0, nil
	case "AD1", "ADAPTIVE_1", "1":
		return AD1, nil
	case "AD2", "ADAPTIVE_2", "2":
		return AD2, nil
	case "AD3", "ADAPTIVE_3", "3":
		return AD3, nil
	}
	return AD0, fmt.Errorf("routing: unknown mode %q", s)
}
