package routing

import (
	"math/rand"

	"repro/internal/topology"
)

// LoadEstimator exposes live congestion state to the adaptive choice. The
// network fabric implements it with per-link queue occupancy in flits.
type LoadEstimator interface {
	// Load returns the current occupancy (queued flits) of a link.
	Load(id topology.LinkID) int
}

// zeroLoad estimates every link as idle; used when no estimator is given.
type zeroLoad struct{}

func (zeroLoad) Load(topology.LinkID) int { return 0 }

// Path is an ordered list of directed links from the source router to the
// destination router. An empty path means source == destination.
type Path struct {
	Links      []topology.LinkID
	NonMinimal bool
}

// Hops returns the number of router-to-router hops.
func (p Path) Hops() int { return len(p.Links) }

// Config tunes the adaptive engine.
type Config struct {
	// MinimalCandidates is how many distinct minimal paths (rank-3
	// gateway choices) are scored per decision.
	MinimalCandidates int
	// NonMinimalCandidates is how many Valiant paths (intermediate group
	// or intra-group intermediate router choices) are scored.
	NonMinimalCandidates int
	// Progressive enables per-hop bias growth for AD1 (the patented
	// "increasingly minimal bias"): each hop already taken adds one to
	// the effective shift. When false AD1 uses a fixed shift of 1.
	Progressive bool
}

// DefaultConfig matches the values used throughout the reproduction.
func DefaultConfig() Config {
	return Config{MinimalCandidates: 2, NonMinimalCandidates: 2}
}

// Engine constructs adaptive routes over one topology.
//
// An Engine is not safe for concurrent use: candidate paths are built in
// per-engine scratch buffers (one pair per candidate class, double-buffered
// so the running best survives while the next candidate is scored), and
// only the winning path is copied out. The buffers are preallocated at the
// maximum path length, so a routing decision allocates nothing.
type Engine struct {
	topo *topology.Topology
	est  LoadEstimator
	cfg  Config

	// Scratch state (see DESIGN.md, "Hot-path memory discipline").
	gwBuf   []topology.LinkID    // sampleGateways output
	minBufs [2][]topology.LinkID // bestMinimal candidate / incumbent
	nonBufs [2][]topology.LinkID // bestNonMinimal candidate / incumbent
}

// maxPathLinks bounds any candidate path: an inter-group Valiant route is
// at most 2 + 1 + 2 + 1 + 2 = 8 links; 12 leaves slack.
const maxPathLinks = 12

// NewEngine builds an engine. est may be nil (all links idle).
func NewEngine(topo *topology.Topology, est LoadEstimator, cfg Config) *Engine {
	if est == nil {
		est = zeroLoad{}
	}
	if cfg.MinimalCandidates < 1 {
		cfg.MinimalCandidates = 1
	}
	if cfg.NonMinimalCandidates < 1 {
		cfg.NonMinimalCandidates = 1
	}
	e := &Engine{topo: topo, est: est, cfg: cfg}
	e.gwBuf = make([]topology.LinkID, 0, 8)
	for i := range e.minBufs {
		e.minBufs[i] = make([]topology.LinkID, 0, maxPathLinks)
		e.nonBufs[i] = make([]topology.LinkID, 0, maxPathLinks)
	}
	return e
}

// Topology returns the engine's topology.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// pathLoad scores a path as the queue occupancy of its first link — the
// only congestion state the source router can actually observe (as on
// Aries, whose adaptive choice compares candidate output-port loads).
// Two properties of this estimate drive everything the paper measures:
//
//   - It is local: remote congestion reaches it only indirectly and late,
//     via backpressure filling the local output queue.
//   - It carries no hop-count weighting: under AD0 ("equal bias") a
//     non-minimal port that looks even slightly less loaded wins, even
//     though the Valiant path pays double the hops through an equally
//     congested middle. That is precisely why the paper finds the AD0
//     default sub-optimal on busy systems, and why it is ideal only when
//     network load is low (Section II-D: detours are free on an idle
//     network and exploit path diversity).
//
// Each hop also contributes one base unit — the credit round-trip floor of
// an idle channel. It is deliberately small against the load units (one
// unit is 256B of queued traffic), so under real congestion the raw load
// comparison dominates, but on an idle network it breaks ties toward
// minimal and gives the AD3 shift a meaningful threshold: with an idle
// 6-hop Valiant alternative, a minimal path must queue ~24 units (~6KB)
// before AD3 lets go of it.
//
//simlint:hotpath
func (e *Engine) pathLoad(links []topology.LinkID) int {
	if len(links) == 0 {
		return 0
	}
	return len(links) + e.est.Load(links[0])
}

// leastLoaded returns the link in ls with the smallest load, breaking ties
// by earliest index. ls must be non-empty.
//
//simlint:hotpath
func (e *Engine) leastLoaded(ls []topology.LinkID) topology.LinkID {
	best := ls[0]
	bestLoad := e.est.Load(best)
	for _, l := range ls[1:] {
		if v := e.est.Load(l); v < bestLoad {
			best, bestLoad = l, v
		}
	}
	return best
}

// intraGroup appends a minimal path between two routers of the same group
// to dst (<= 2 hops: rank-1, rank-2, or one of each in load-preferred
// order).
//
//simlint:hotpath
func (e *Engine) intraGroup(buf []topology.LinkID, a, b topology.RouterID) []topology.LinkID {
	if a == b {
		return buf
	}
	t := e.topo
	ra, rb := t.Routers[a], t.Routers[b]
	if ra.Chassis == rb.Chassis {
		return append(buf, t.R1Link(a, b))
	}
	if ra.Slot == rb.Slot {
		return append(buf, e.leastLoaded(t.R2Links(a, b)))
	}
	// Two hops; the intermediate router is either (a.chassis, b.slot)
	// reached by rank-1 first, or (b.chassis, a.slot) reached by rank-2
	// first. Pick the alternative whose first link is less loaded.
	groupBase := int(ra.Group) * t.Cfg.RoutersPerGroup()
	viaRow := topology.RouterID(groupBase + ra.Chassis*t.Cfg.SlotsPerChassis + rb.Slot)
	viaCol := topology.RouterID(groupBase + rb.Chassis*t.Cfg.SlotsPerChassis + ra.Slot)
	r1First := t.R1Link(a, viaRow)
	r2First := e.leastLoaded(t.R2Links(a, viaCol))
	if e.est.Load(r1First) <= e.est.Load(r2First) {
		buf = append(buf, r1First)
		return append(buf, e.leastLoaded(t.R2Links(viaRow, b)))
	}
	buf = append(buf, r2First)
	return append(buf, t.R1Link(viaCol, b))
}

// minimalInterGroup appends one minimal path from src to dst (different
// groups) through the given rank-3 gateway link to buf.
//
//simlint:hotpath
func (e *Engine) minimalInterGroup(buf []topology.LinkID, src, dst topology.RouterID, gw topology.LinkID) []topology.LinkID {
	g := e.topo.Link(gw)
	buf = e.intraGroup(buf, src, g.Src)
	buf = append(buf, gw)
	return e.intraGroup(buf, g.Dst, dst)
}

// sampleGateways picks up to k distinct rank-3 links from group a to group
// b, uniformly without replacement. k is tiny (<= 4), so rejection
// sampling over indices beats any allocation-heavy scheme. The result is
// backed by engine scratch (or the topology's own link table when it has
// at most k entries): it is valid only until the next sampleGateways call
// and must not be mutated.
//
//simlint:hotpath
func (e *Engine) sampleGateways(rng *rand.Rand, a, b topology.GroupID, k int) []topology.LinkID {
	all := e.topo.GlobalLinks(a, b)
	if len(all) <= k {
		return all
	}
	var idx [8]int
	if k > len(idx) {
		k = len(idx)
	}
	count := 0
	for count < k {
		j := rng.Intn(len(all))
		dup := false
		for _, v := range idx[:count] {
			if v == j {
				dup = true
				break
			}
		}
		if !dup {
			idx[count] = j
			count++
		}
	}
	out := e.gwBuf[:0]
	for _, v := range idx[:count] {
		out = append(out, all[v])
	}
	e.gwBuf = out
	return out
}

// bestMinimal returns the least-loaded minimal path among k sampled
// gateway choices (or the <=2-hop intra-group path when src and dst share
// a group). The result is scratch-backed: valid until the next bestMinimal
// call on this engine.
//
//simlint:hotpath
func (e *Engine) bestMinimal(rng *rand.Rand, src, dst topology.RouterID) []topology.LinkID {
	t := e.topo
	ga, gb := t.GroupOfRouter(src), t.GroupOfRouter(dst)
	if ga == gb {
		e.minBufs[0] = e.intraGroup(e.minBufs[0][:0], src, dst)
		return e.minBufs[0]
	}
	var best []topology.LinkID
	bestLoad := 0
	cur := 0
	for _, gw := range e.sampleGateways(rng, ga, gb, e.cfg.MinimalCandidates) {
		p := e.minimalInterGroup(e.minBufs[cur][:0], src, dst, gw)
		e.minBufs[cur] = p
		l := e.pathLoad(p)
		if best == nil || l < bestLoad {
			// The candidate becomes the incumbent; build the next one in
			// the other buffer so the incumbent survives.
			best, bestLoad = p, l
			cur = 1 - cur
		}
	}
	return best
}

// bestNonMinimal returns the least-loaded Valiant path: via a random
// intermediate group (inter-group traffic) or a random intermediate router
// (intra-group traffic). The result is scratch-backed: valid until the
// next bestNonMinimal call on this engine.
//
//simlint:hotpath
func (e *Engine) bestNonMinimal(rng *rand.Rand, src, dst topology.RouterID) []topology.LinkID {
	t := e.topo
	ga, gb := t.GroupOfRouter(src), t.GroupOfRouter(dst)
	var best []topology.LinkID
	bestLoad := 0
	cur := 0
	// consider scores the candidate just built in nonBufs[cur] and, if it
	// beats the incumbent, claims its buffer (same double-buffer scheme
	// as bestMinimal).
	consider := func(p []topology.LinkID) {
		e.nonBufs[cur] = p
		l := e.pathLoad(p)
		if best == nil || l < bestLoad {
			best, bestLoad = p, l
			cur = 1 - cur
		}
	}
	if ga == gb {
		// Intra-group Valiant: detour through a random intermediate
		// router of the same group.
		rpg := t.Cfg.RoutersPerGroup()
		if rpg <= 2 {
			return nil // no intermediate router exists
		}
		for i := 0; i < e.cfg.NonMinimalCandidates; i++ {
			mid := topology.RouterID(int(ga)*rpg + rng.Intn(rpg))
			if mid == src || mid == dst {
				continue
			}
			buf := e.intraGroup(e.nonBufs[cur][:0], src, mid)
			consider(e.intraGroup(buf, mid, dst))
		}
		return best
	}
	// Inter-group Valiant: detour through a random third group.
	ng := t.Cfg.Groups
	if ng <= 2 {
		return nil
	}
	for i := 0; i < e.cfg.NonMinimalCandidates; i++ {
		mid := topology.GroupID(rng.Intn(ng))
		if mid == ga || mid == gb {
			continue
		}
		// Both gateway samples share the engine's scratch, so lift the
		// first one's link id out before the second sample overwrites it.
		// The draw order (gw1 sampled, then gw2, then the emptiness
		// check) is part of the frozen RNG sequence.
		gw1 := e.sampleGateways(rng, ga, mid, 1)
		var id1 topology.LinkID
		ok1 := len(gw1) > 0
		if ok1 {
			id1 = gw1[0]
		}
		gw2 := e.sampleGateways(rng, mid, gb, 1)
		if !ok1 || len(gw2) == 0 {
			continue
		}
		id2 := gw2[0]
		l1, l2 := t.Link(id1), t.Link(id2)
		buf := e.intraGroup(e.nonBufs[cur][:0], src, l1.Src)
		buf = append(buf, id1)
		buf = e.intraGroup(buf, l1.Dst, l2.Src)
		buf = append(buf, id2)
		consider(e.intraGroup(buf, l2.Dst, dst))
	}
	return best
}

// route makes one adaptive routing decision. The returned slice aliases
// engine scratch: valid until the next routing call, never to be retained.
// The sequence of RNG draws this function makes (candidate sampling and
// every LoadEstimator query, in order) is a frozen interface: golden
// artifacts depend on it byte-for-byte, so restructuring must not add,
// drop, or reorder a single draw (see DESIGN.md).
//
//simlint:hotpath
func (e *Engine) route(mode Mode, rng *rand.Rand, src, dst topology.RouterID, hopsTaken int) ([]topology.LinkID, bool) {
	if src == dst {
		return nil, false
	}
	min := e.bestMinimal(rng, src, dst)
	if mode == MinimalOnly {
		return min, false
	}
	nonMin := e.bestNonMinimal(rng, src, dst)
	if nonMin == nil {
		return min, false
	}
	if mode == ValiantOnly {
		return nonMin, true
	}
	minLoad, nonMinLoad := e.pathLoad(min), e.pathLoad(nonMin)
	if e.cfg.Progressive && mode == AD1 {
		// Increasingly minimal: every hop already taken deepens the
		// shift, so late detours become progressively unattractive.
		shift := uint(1 + hopsTaken)
		if shift > 4 {
			shift = 4
		}
		if minLoad <= nonMinLoad<<shift {
			return min, false
		}
		return nonMin, true
	}
	if mode.PrefersMinimal(minLoad, nonMinLoad) {
		return min, false
	}
	return nonMin, true
}

// RouteInto makes one adaptive routing decision for a packet from src to
// dst under the given mode, appending the winning path to dst0 (typically
// a pooled route slice with spare capacity) and reporting whether it is
// non-minimal. This is the allocation-free entry the fabric uses: losing
// candidates live and die in engine scratch. hopsTaken is nonzero only for
// progressive re-evaluation (AD1).
//
//simlint:hotpath
func (e *Engine) RouteInto(dst0 []topology.LinkID, mode Mode, rng *rand.Rand, src, dst topology.RouterID, hopsTaken int) ([]topology.LinkID, bool) {
	links, nonMin := e.route(mode, rng, src, dst, hopsTaken)
	return append(dst0, links...), nonMin
}

// Route is the convenience form of RouteInto: it returns the decision as
// a freshly allocated Path the caller may keep.
func (e *Engine) Route(mode Mode, rng *rand.Rand, src, dst topology.RouterID, hopsTaken int) Path {
	links, nonMin := e.route(mode, rng, src, dst, hopsTaken)
	if links == nil {
		return Path{NonMinimal: nonMin}
	}
	return Path{Links: append([]topology.LinkID(nil), links...), NonMinimal: nonMin}
}
