package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{AD0: "AD0", AD1: "AD1", AD2: "AD2", AD3: "AD3"} {
		if m.String() != want {
			t.Errorf("%v.String() = %q", uint8(m), m.String())
		}
	}
}

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Mode
	}{
		{"AD0", AD0}, {"AD1", AD1}, {"AD2", AD2}, {"AD3", AD3},
		{"ADAPTIVE_3", AD3}, {"2", AD2},
	} {
		got, err := ParseMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseMode("AD9"); err == nil {
		t.Error("ParseMode(AD9) should fail")
	}
}

func TestBiasValues(t *testing.T) {
	cases := []struct {
		m          Mode
		shift, add uint
	}{
		{AD0, 0, 0}, {AD1, 1, 0}, {AD2, 0, 4}, {AD3, 2, 0},
	}
	for _, c := range cases {
		s, a := c.m.Bias()
		if s != c.shift || a != c.add {
			t.Errorf("%v.Bias() = (%d,%d), want (%d,%d)", c.m, s, a, c.shift, c.add)
		}
	}
}

func TestPrefersMinimalRule(t *testing.T) {
	// AD0: equal comparison.
	if !AD0.PrefersMinimal(5, 5) || AD0.PrefersMinimal(6, 5) {
		t.Error("AD0 rule broken")
	}
	// AD3: minimal load must exceed 4x non-minimal before going non-minimal
	// (the paper's statement verbatim).
	if !AD3.PrefersMinimal(20, 5) || AD3.PrefersMinimal(21, 5) {
		t.Error("AD3 4x rule broken")
	}
	// AD2: +4 additive bias.
	if !AD2.PrefersMinimal(9, 5) || AD2.PrefersMinimal(10, 5) {
		t.Error("AD2 +4 rule broken")
	}
	// AD1 at injection: 2x rule.
	if !AD1.PrefersMinimal(10, 5) || AD1.PrefersMinimal(11, 5) {
		t.Error("AD1 2x rule broken")
	}
}

// Monotonicity property: if a mode with stronger minimal bias goes
// non-minimal, every weaker mode must too.
func TestBiasMonotonicityProperty(t *testing.T) {
	order := []Mode{AD0, AD2, AD1, AD3} // increasing strength at small loads? verify numerically instead
	_ = order
	f := func(minLoad, nonMinLoad uint8) bool {
		m, n := int(minLoad), int(nonMinLoad)
		// AD3 (4x) is at least as minimal-preferring as AD1 (2x), which is
		// at least as minimal-preferring as AD0 (1x).
		if AD0.PrefersMinimal(m, n) && !AD1.PrefersMinimal(m, n) {
			return false
		}
		if AD1.PrefersMinimal(m, n) && !AD3.PrefersMinimal(m, n) {
			return false
		}
		if AD0.PrefersMinimal(m, n) && !AD2.PrefersMinimal(m, n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildEngine(t testing.TB, groups int, est LoadEstimator) *Engine {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(groups))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return NewEngine(topo, est, DefaultConfig())
}

// validatePath checks link-level connectivity from src to dst.
func validatePath(t testing.TB, topo *topology.Topology, src, dst topology.RouterID, p Path) {
	t.Helper()
	cur := src
	for i, id := range p.Links {
		if id < 0 || int(id) >= len(topo.Links) {
			t.Fatalf("hop %d: link id %d out of range", i, id)
		}
		l := topo.Link(id)
		if l.Src != cur {
			t.Fatalf("hop %d: link starts at %d, expected %d (path %v)", i, l.Src, cur, p.Links)
		}
		cur = l.Dst
	}
	if cur != dst {
		t.Fatalf("path ends at %d, want %d", cur, dst)
	}
}

func TestRouteSameRouter(t *testing.T) {
	e := buildEngine(t, 3, nil)
	p := e.Route(AD0, rand.New(rand.NewSource(1)), 5, 5, 0)
	if p.Hops() != 0 {
		t.Fatalf("self route has %d hops", p.Hops())
	}
}

func TestMinimalPathLengths(t *testing.T) {
	e := buildEngine(t, 4, nil)
	topo := e.Topology()
	rng := rand.New(rand.NewSource(7))
	for src := 0; src < topo.NumRouters(); src += 3 {
		for dst := 0; dst < topo.NumRouters(); dst += 5 {
			p := e.Route(AD3, rng, topology.RouterID(src), topology.RouterID(dst), 0)
			validatePath(t, topo, topology.RouterID(src), topology.RouterID(dst), p)
			sameGroup := topo.GroupOfRouter(topology.RouterID(src)) == topo.GroupOfRouter(topology.RouterID(dst))
			// Under zero load every choice is minimal: <=2 hops in-group,
			// <=5 hops across groups.
			limit := 5
			if sameGroup {
				limit = 2
			}
			if p.Hops() > limit {
				t.Fatalf("minimal %d->%d took %d hops (limit %d)", src, dst, p.Hops(), limit)
			}
			if p.NonMinimal {
				t.Fatalf("zero-load route %d->%d marked non-minimal", src, dst)
			}
		}
	}
}

// loadedEstimator reports a fixed load for a set of links.
type loadedEstimator map[topology.LinkID]int

func (m loadedEstimator) Load(id topology.LinkID) int { return m[id] }

// loadMinimalFirstHops puts `load` on every link the minimal routes from
// src toward dstGroup can take as their FIRST hop — the only state the
// UGAL-L estimator at src can see. In TestConfig(4), router 4 (chassis 1
// slot 0 of group 0) hosts a gateway to group 1 itself, and the other
// gateways (routers 5-7) are its rank-1 peers; its rank-2 links toward
// chassis 0 stay idle, leaving clean Valiant first hops via groups whose
// gateways sit in chassis 0.
func loadMinimalFirstHops(t *testing.T, topo *topology.Topology, est loadedEstimator, load int) (src, dst topology.RouterID) {
	t.Helper()
	gws := topo.GlobalLinks(0, 1)
	if len(gws) == 0 {
		t.Fatal("no gateways between groups 0 and 1")
	}
	// Source at the first gateway router, so at least one minimal first
	// hop is the rank-3 link itself.
	src = topo.Link(gws[0]).Src
	dst = topology.RouterID(topo.Cfg.RoutersPerGroup()) // first router of group 1
	srcR := topo.Routers[src]
	cfg := topo.Cfg
	groupBase := int(srcR.Group) * cfg.RoutersPerGroup()
	for _, gw := range gws {
		l := topo.Link(gw)
		if l.Src == src {
			est[gw] = load // local rank-3 gateway
			continue
		}
		// Load every first hop the engine's intraGroup could take from
		// src toward this gateway router.
		gwR := topo.Routers[l.Src]
		switch {
		case gwR.Chassis == srcR.Chassis:
			est[topo.R1Link(src, l.Src)] = load
		case gwR.Slot == srcR.Slot:
			for _, r2 := range topo.R2Links(src, l.Src) {
				est[r2] = load
			}
		default:
			viaRow := topology.RouterID(groupBase + srcR.Chassis*cfg.SlotsPerChassis + gwR.Slot)
			est[topo.R1Link(src, viaRow)] = load
			viaCol := topology.RouterID(groupBase + gwR.Chassis*cfg.SlotsPerChassis + srcR.Slot)
			for _, r2 := range topo.R2Links(src, viaCol) {
				est[r2] = load
			}
		}
	}
	return src, dst
}

func TestAdaptiveAvoidsLoadedGateway(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	est := loadedEstimator{}
	src, dst := loadMinimalFirstHops(t, topo, est, 1000)
	cfg := DefaultConfig()
	cfg.MinimalCandidates = 4
	cfg.NonMinimalCandidates = 6
	e := NewEngine(topo, est, cfg)
	rng := rand.New(rand.NewSource(3))
	// AD0 should detour: every minimal first hop is saturated.
	nonMin := 0
	for i := 0; i < 50; i++ {
		p := e.Route(AD0, rng, src, dst, 0)
		validatePath(t, topo, src, dst, p)
		if p.NonMinimal {
			nonMin++
			// The detour's first hop must avoid the saturated ports.
			if est[p.Links[0]] >= 1000 {
				t.Fatal("non-minimal path starts on a saturated port")
			}
		}
	}
	if nonMin < 40 {
		t.Fatalf("AD0 detoured only %d/50 times under saturated minimal first hops", nonMin)
	}
}

func TestAD3SticksToMinimalUnderModerateLoad(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Moderate load on the minimal first hops: enough that AD0 sometimes
	// detours but AD3 (4x rule) never should, given Valiant paths here
	// cost at least 3 hop-units.
	est := loadedEstimator{}
	src, dst := loadMinimalFirstHops(t, topo, est, 8)
	cfg := DefaultConfig()
	cfg.MinimalCandidates = 2
	cfg.NonMinimalCandidates = 2
	e := NewEngine(topo, est, cfg)
	rng := rand.New(rand.NewSource(11))
	ad0NonMin, ad3NonMin := 0, 0
	for i := 0; i < 100; i++ {
		if e.Route(AD0, rng, src, dst, 0).NonMinimal {
			ad0NonMin++
		}
		if e.Route(AD3, rng, src, dst, 0).NonMinimal {
			ad3NonMin++
		}
	}
	if ad0NonMin == 0 {
		t.Error("AD0 never detoured under 12-flit gateway load")
	}
	if ad3NonMin != 0 {
		t.Errorf("AD3 detoured %d/100 times under moderate load", ad3NonMin)
	}
}

func TestIntraGroupRouting(t *testing.T) {
	e := buildEngine(t, 3, nil)
	topo := e.Topology()
	rng := rand.New(rand.NewSource(5))
	rpg := topo.Cfg.RoutersPerGroup()
	for a := 0; a < rpg; a++ {
		for b := 0; b < rpg; b++ {
			if a == b {
				continue
			}
			p := e.Route(AD3, rng, topology.RouterID(a), topology.RouterID(b), 0)
			validatePath(t, topo, topology.RouterID(a), topology.RouterID(b), p)
			ra, rb := topo.Routers[a], topo.Routers[b]
			wantHops := 2
			if ra.Chassis == rb.Chassis || ra.Slot == rb.Slot {
				wantHops = 1
			}
			if p.Hops() != wantHops {
				t.Fatalf("intra-group %d->%d: %d hops, want %d", a, b, p.Hops(), wantHops)
			}
		}
	}
}

func TestIntraGroupValiant(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Saturate both direct paths between two same-chassis routers: their
	// rank-1 link. The detour should go via an intermediate router.
	est := loadedEstimator{}
	a, b := topology.RouterID(0), topology.RouterID(1)
	est[topo.R1Link(a, b)] = 1000
	cfg := DefaultConfig()
	cfg.NonMinimalCandidates = 6
	e := NewEngine(topo, est, cfg)
	rng := rand.New(rand.NewSource(9))
	sawDetour := false
	for i := 0; i < 60; i++ {
		p := e.Route(AD0, rng, a, b, 0)
		validatePath(t, topo, a, b, p)
		if p.NonMinimal {
			sawDetour = true
			if p.Hops() < 2 {
				t.Fatalf("intra-group detour with %d hops", p.Hops())
			}
		}
	}
	if !sawDetour {
		t.Error("AD0 never took the intra-group Valiant detour around a saturated rank-1 link")
	}
}

// Property: on random topologies, every routed path (any mode, any load) is
// valid and bounded: <=4 hops intra-group Valiant, <=10 hops inter-group.
func TestRoutePropertyValidBounded(t *testing.T) {
	f := func(seed int64, groupsRaw, mRaw uint8) bool {
		groups := 2 + int(groupsRaw)%4
		mode := Mode(mRaw % uint8(NumModes))
		topo, err := topology.Build(topology.TestConfig(groups))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// random loads
		est := loadedEstimator{}
		for i := range topo.Links {
			est[topology.LinkID(i)] = rng.Intn(40)
		}
		e := NewEngine(topo, est, DefaultConfig())
		for trial := 0; trial < 20; trial++ {
			src := topology.RouterID(rng.Intn(topo.NumRouters()))
			dst := topology.RouterID(rng.Intn(topo.NumRouters()))
			p := e.Route(mode, rng, src, dst, 0)
			cur := src
			for _, id := range p.Links {
				l := topo.Link(id)
				if l.Src != cur {
					return false
				}
				cur = l.Dst
			}
			if cur != dst {
				return false
			}
			if p.Hops() > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestProgressiveAD1(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	est := loadedEstimator{}
	src, dst := loadMinimalFirstHops(t, topo, est, 30)
	cfg := DefaultConfig()
	cfg.Progressive = true
	e := NewEngine(topo, est, cfg)
	rng := rand.New(rand.NewSource(17))
	// With many hops already taken the effective bias is strong: expect
	// fewer detours than at injection.
	detours := func(hops int) int {
		n := 0
		for i := 0; i < 100; i++ {
			if e.Route(AD1, rng, src, dst, hops).NonMinimal {
				n++
			}
		}
		return n
	}
	early, late := detours(0), detours(4)
	if late > early {
		t.Errorf("progressive AD1: detours grew with hops (%d -> %d)", early, late)
	}
}

func TestSampleGatewaysDistinct(t *testing.T) {
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(topo, nil, DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		got := e.sampleGateways(rng, 0, 1, k)
		if len(got) > k {
			t.Fatalf("sampled %d > k=%d", len(got), k)
		}
		seen := map[topology.LinkID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate gateway %d in sample", id)
			}
			seen[id] = true
			l := topo.Link(id)
			if topo.GroupOfRouter(l.Src) != 0 || topo.GroupOfRouter(l.Dst) != 1 {
				t.Fatalf("gateway %d connects wrong groups", id)
			}
		}
	}
}

// countingEstimator counts load queries and reports every link idle.
type countingEstimator struct{ calls int }

func (c *countingEstimator) Load(topology.LinkID) int { c.calls++; return 0 }

// TestRouteLoadQueryBudget is the deterministic regression gate on
// routing-decision cost. Wall-clock gates are meaningless on shared CI
// hosts (BENCH_3.json's recorded adaptive_route_ns_op jump 748->963
// turned out to be exactly that: re-measuring the same commits gives
// overlapping ~700-900ns bands — see BENCH_7.json), but the decision's
// dominant cost IS deterministic: the number of load-estimator queries
// per decision (~78 on Theta-mini, each a Fabric.Load with its windowed
// occupancy math and jitter draw). Any restructuring that inflates
// candidate enumeration shows up here exactly, on any host.
func TestRouteLoadQueryBudget(t *testing.T) {
	topo, err := topology.Build(topology.ThetaMiniConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := &countingEstimator{}
	eng := NewEngine(topo, est, DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	nr := topo.NumRouters()
	const decisions = 20000
	buf := make([]topology.LinkID, 0, 16)
	for _, mode := range []Mode{AD0, AD1, AD2, AD3} {
		est.calls = 0
		for i := 0; i < decisions; i++ {
			src := topology.RouterID(rng.Intn(nr))
			dst := topology.RouterID(rng.Intn(nr))
			buf, _ = eng.RouteInto(buf[:0], mode, rng, src, dst, 0)
		}
		if perDecision := float64(est.calls) / decisions; perDecision > 80 {
			t.Errorf("%s: %.2f load queries/decision, budget 80", mode, perDecision)
		}
	}
}
