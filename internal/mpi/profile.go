// Package mpi is a message-passing runtime for simulated applications: one
// coroutine per rank, nonblocking point-to-point with tag matching, the
// collectives the paper's applications use (Allreduce, Alltoall[v], Bcast,
// Barrier, Allgather, Reduce), and per-posted-message routing-mode
// selection mirroring Cray MPI's MPICH_GNI_ROUTING_MODE /
// MPICH_GNI_A2A_ROUTING_MODE environment variables.
package mpi

import (
	"sort"

	"repro/internal/sim"
)

// CallStats accumulates AutoPerf-style statistics for one MPI interface:
// call count, total payload bytes, and total wallclock spent in the call.
type CallStats struct {
	Calls uint64
	Bytes uint64
	Time  sim.Time
}

// AvgBytes returns mean payload per call.
func (s CallStats) AvgBytes() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Calls)
}

// Profile is one rank's MPI usage profile, the per-rank unit AutoPerf
// aggregates. ComputeTime covers all non-MPI wallclock.
type Profile struct {
	ByCall      map[string]*CallStats
	ComputeTime sim.Time
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{ByCall: make(map[string]*CallStats)}
}

// add records one completed MPI call.
func (p *Profile) add(call string, bytes int, elapsed sim.Time) {
	s := p.ByCall[call]
	if s == nil {
		s = &CallStats{}
		p.ByCall[call] = s
	}
	s.Calls++
	s.Bytes += uint64(bytes)
	s.Time += elapsed
}

// MPITime returns total time across all MPI calls.
func (p *Profile) MPITime() sim.Time {
	var t sim.Time
	//simlint:allow detrand commutative sum; iteration order cannot reach the result
	for _, s := range p.ByCall {
		t += s.Time
	}
	return t
}

// TotalTime returns MPI + compute time.
func (p *Profile) TotalTime() sim.Time { return p.MPITime() + p.ComputeTime }

// Merge adds other's counts into p (used to aggregate across ranks).
func (p *Profile) Merge(other *Profile) {
	//simlint:allow detrand per-key commutative accumulation; visit order cannot reach the result
	for call, s := range other.ByCall {
		d := p.ByCall[call]
		if d == nil {
			d = &CallStats{}
			p.ByCall[call] = d
		}
		d.Calls += s.Calls
		d.Bytes += s.Bytes
		d.Time += s.Time
	}
	p.ComputeTime += other.ComputeTime
}

// TopCalls returns call names sorted by descending time (the paper's
// "MPI Call 1/2/3" columns in Table I).
func (p *Profile) TopCalls(n int) []string {
	names := make([]string, 0, len(p.ByCall))
	//simlint:allow detrand collection order erased by the total sort.Slice order below (time, then name)
	for name := range p.ByCall {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		si, sj := p.ByCall[names[i]], p.ByCall[names[j]]
		if si.Time != sj.Time {
			return si.Time > sj.Time
		}
		return names[i] < names[j]
	})
	if n > 0 && len(names) > n {
		names = names[:n]
	}
	return names
}
