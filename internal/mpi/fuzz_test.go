package mpi

import (
	"testing"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// FuzzAlltoallv drives Alltoallv with randomized count matrices and checks
// byte/packet conservation end to end: every packet injected into the
// fabric is delivered, nothing stays buffered, all ranks complete, and
// each rank's profiled Alltoallv byte count equals its row sum. Responses
// are disabled (ResponseEvery huge) so sent==delivered is exact. The
// f.Add corpus doubles as a regression suite under plain `go test`.
func FuzzAlltoallv(f *testing.F) {
	f.Add(uint8(2), int64(1), []byte{0})
	f.Add(uint8(4), int64(7), []byte{1, 0, 255, 16, 3, 200})
	f.Add(uint8(6), int64(42), []byte{128, 128, 128, 128})
	f.Add(uint8(5), int64(-3), []byte{255, 255, 255, 255, 255, 255, 255})
	f.Add(uint8(3), int64(0), []byte{})

	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64, data []byte) {
		n := 2 + int(nRaw)%5 // 2..6 ranks
		topo, err := topology.Build(topology.TestConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel()
		params := network.DefaultParams()
		params.ResponseEvery = 1 << 30 // no response packets: sent == delivered
		fab := network.New(k, topo, params, routing.DefaultConfig(), seed)

		nodes := make([]topology.NodeID, n)
		for i := range nodes {
			nodes[i] = topology.NodeID(i)
		}
		w := NewWorld(fab, nodes, DefaultEnv())

		// Count matrix from the fuzz data: counts[r][d] bytes from rank r
		// to rank d, up to ~64KB per pair (multiple packets at the 4KB MTU).
		counts := make([][]int, n)
		at := func(i int) int {
			if len(data) == 0 {
				return 0
			}
			return int(data[i%len(data)])
		}
		for r := 0; r < n; r++ {
			counts[r] = make([]int, n)
			for d := 0; d < n; d++ {
				counts[r][d] = at(r*n+d) * 257
			}
		}

		w.Run(func(r *Rank) {
			r.Alltoallv(counts[r.ID()])
		})
		k.Run()

		if !w.Done.Fired() {
			t.Fatal("world did not complete (deadlock or lost packet)")
		}
		// Packet conservation: every injected packet delivered, exactly
		// the number the count matrix implies, and no flits left queued.
		var want uint64
		for r := 0; r < n; r++ {
			for d := 0; d < n; d++ {
				if d == r {
					continue
				}
				nPkts := (counts[r][d] + params.PacketBytes - 1) / params.PacketBytes
				if nPkts < 1 {
					nPkts = 1 // zero-byte exchanges still send one packet
				}
				want += uint64(nPkts)
			}
		}
		if fab.PacketsSent != want {
			t.Fatalf("packets sent %d, count matrix implies %d", fab.PacketsSent, want)
		}
		if fab.PacketsDelivered != fab.PacketsSent {
			t.Fatalf("sent %d packets but delivered %d", fab.PacketsSent, fab.PacketsDelivered)
		}
		if q := fab.QueuedFlits(); q != 0 {
			t.Fatalf("%d flits still queued after drain", q)
		}
		// Byte conservation per rank: the profiled Alltoallv payload is
		// exactly this rank's row sum excluding self.
		for r := 0; r < n; r++ {
			var row uint64
			for d := 0; d < n; d++ {
				if d != r {
					row += uint64(counts[r][d])
				}
			}
			st := w.Rank(r).Profile().ByCall["MPI_Alltoallv"]
			if st == nil || st.Calls != 1 {
				t.Fatalf("rank %d: missing MPI_Alltoallv profile entry", r)
			}
			if st.Bytes != row {
				t.Fatalf("rank %d: profiled %d bytes, row sum %d", r, st.Bytes, row)
			}
		}
	})
}
