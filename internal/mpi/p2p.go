package mpi

import (
	"repro/internal/network"
	"repro/internal/sim"
)

// AnySource matches a receive against any sender.
const AnySource = -1

// AnyTag matches a receive against any tag.
const AnyTag = -1

// Request is a nonblocking operation handle.
type Request struct {
	done  *sim.Signal
	bytes int

	// recv matching state
	isRecv   bool
	src, tag int
	// filled in on match:
	MatchedSrc, MatchedTag int
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done.Fired() }

// isend posts a send without timing attribution (used by collectives).
func (r *Rank) isend(dst, tag, bytes int, a2a bool) *Request {
	r.checkPeer(dst)
	req := &Request{done: sim.NewSignal(), bytes: bytes}
	peer := r.world.ranks[dst]
	src := r.id
	k := r.world.fab.Kernel()
	m := r.world.fab.Send(r.node, peer.node, bytes, r.modeFor(a2a))
	// On delivery (kernel context): match at the receiver, then complete
	// the sender's request.
	w := r.world
	m.OnDelivered = func(msg *network.Message) {
		mn, nm := msg.RouteCounts()
		w.MinimalPkts += uint64(mn)
		w.NonMinimalPkts += uint64(nm)
		w.TransitSum += msg.TransitSum
		peer.arrived(&envelope{src: src, tag: tag, bytes: bytes})
		req.done.Fire(k)
	}
	return req
}

// Isend posts a nonblocking send of `bytes` to dst with tag. The request
// completes when the payload has been delivered (rendezvous semantics:
// congestion lengthens the matching Wait, which is how the paper's
// latency-bound operations feel routing changes).
func (r *Rank) Isend(dst, tag, bytes int) *Request {
	var req *Request
	r.timed("MPI_Isend", bytes, func() { req = r.isend(dst, tag, bytes, false) })
	return req
}

// irecv posts a receive without timing attribution.
func (r *Rank) irecv(src, tag, bytes int) *Request {
	req := &Request{done: sim.NewSignal(), bytes: bytes, isRecv: true, src: src, tag: tag}
	// Check the unexpected queue first (FIFO matching).
	for i, env := range r.unexpected {
		if matches(req, env) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			req.MatchedSrc, req.MatchedTag = env.src, env.tag
			req.done.Fire(r.world.fab.Kernel())
			return req
		}
	}
	r.posted = append(r.posted, req)
	return req
}

// Irecv posts a nonblocking receive matching (src, tag); use AnySource /
// AnyTag as wildcards.
func (r *Rank) Irecv(src, tag, bytes int) *Request {
	var req *Request
	r.timed("MPI_Irecv", bytes, func() { req = r.irecv(src, tag, bytes) })
	return req
}

// arrived delivers an envelope to this rank's matching engine. Runs in
// kernel context.
func (r *Rank) arrived(env *envelope) {
	for i, req := range r.posted {
		if matches(req, env) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			req.MatchedSrc, req.MatchedTag = env.src, env.tag
			req.done.Fire(r.world.fab.Kernel())
			return
		}
	}
	r.unexpected = append(r.unexpected, env)
}

func matches(req *Request, env *envelope) bool {
	if req.src != AnySource && req.src != env.src {
		return false
	}
	if req.tag != AnyTag && req.tag != env.tag {
		return false
	}
	return true
}

// wait blocks until req completes, without timing attribution.
func (r *Rank) wait(req *Request) { r.proc.Wait(req.done) }

// Wait blocks until req completes (MPI_Wait).
func (r *Rank) Wait(req *Request) {
	r.timed("MPI_Wait", 0, func() { r.wait(req) })
}

// Waitall blocks until every request completes (MPI_Waitall).
func (r *Rank) Waitall(reqs ...*Request) {
	r.timed("MPI_Waitall", 0, func() {
		for _, q := range reqs {
			r.wait(q)
		}
	})
}

// Send is a blocking send (MPI_Send): returns when delivered.
func (r *Rank) Send(dst, tag, bytes int) {
	r.timed("MPI_Send", bytes, func() {
		req := r.isend(dst, tag, bytes, false)
		r.wait(req)
	})
}

// Recv is a blocking receive (MPI_Recv).
func (r *Rank) Recv(src, tag, bytes int) {
	r.timed("MPI_Recv", bytes, func() {
		req := r.irecv(src, tag, bytes)
		r.wait(req)
	})
}

// Sendrecv exchanges messages with two peers simultaneously
// (MPI_Sendrecv): sends to dst and receives from src.
func (r *Rank) Sendrecv(dst, sendTag, sendBytes, src, recvTag, recvBytes int) {
	r.timed("MPI_Sendrecv", sendBytes+recvBytes, func() {
		sq := r.isend(dst, sendTag, sendBytes, false)
		rq := r.irecv(src, recvTag, recvBytes)
		r.wait(sq)
		r.wait(rq)
	})
}
