package mpi

// Collective algorithms over the point-to-point layer, mirroring the
// classic MPICH implementations: dissemination barrier, recursive-doubling
// allreduce, binomial reduce/bcast, pairwise-exchange alltoall[v], ring
// allgather. Alltoall[v] traffic is posted with the A2A routing mode, as
// Cray MPI does.

// collTagBase keeps collective tags out of the application tag space.
const collTagBase = 1 << 48

// collTag builds a tag unique per (collective invocation, round) so
// back-to-back collectives cannot mismatch. The round space is 2^20, far
// above any round index used (pairwise exchange uses the partner offset).
func (r *Rank) collTag(round int) int {
	return collTagBase + r.seq<<20 + round
}

// startColl begins a collective: bumps the per-rank op sequence (all ranks
// call collectives in the same program order, so sequences agree).
func (r *Rank) startColl() {
	r.seq++
}

// Barrier blocks until all ranks arrive (dissemination algorithm).
func (r *Rank) Barrier() {
	r.timed("MPI_Barrier", 0, func() {
		r.startColl()
		n := r.Size()
		for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
			dst := (r.id + k) % n
			src := (r.id - k + n) % n
			sq := r.isend(dst, r.collTag(round), 1, false)
			rq := r.irecv(src, r.collTag(round), 1)
			r.wait(sq)
			r.wait(rq)
		}
	})
}

// Allreduce combines a bytes-sized vector across all ranks and leaves the
// result everywhere (recursive doubling, with pre/post folding for
// non-power-of-two sizes).
func (r *Rank) Allreduce(bytes int) {
	r.timed("MPI_Allreduce", bytes, func() {
		r.startColl()
		r.allreduceBody(bytes)
	})
}

func (r *Rank) allreduceBody(bytes int) {
	n := r.Size()
	if n == 1 {
		return
	}
	// Largest power of two <= n.
	pow2 := 1
	for pow2<<1 <= n {
		pow2 <<= 1
	}
	extra := n - pow2
	id := r.id

	// Pre-fold: the top `extra` ranks send their data into the low group.
	if id >= pow2 {
		r.wait(r.isend(id-pow2, r.collTag(62), bytes, false))
	} else if id < extra {
		r.wait(r.irecv(id+pow2, r.collTag(62), bytes))
	}

	// Recursive doubling within the power-of-two group.
	if id < pow2 {
		for mask, round := 1, 0; mask < pow2; mask, round = mask<<1, round+1 {
			partner := id ^ mask
			sq := r.isend(partner, r.collTag(round), bytes, false)
			rq := r.irecv(partner, r.collTag(round), bytes)
			r.wait(sq)
			r.wait(rq)
		}
	}

	// Post-fold: results flow back to the top ranks.
	if id >= pow2 {
		r.wait(r.irecv(id-pow2, r.collTag(63), bytes))
	} else if id < extra {
		r.wait(r.isend(id+pow2, r.collTag(63), bytes, false))
	}
}

// Reduce combines a vector onto root (binomial tree).
func (r *Rank) Reduce(root, bytes int) {
	r.timed("MPI_Reduce", bytes, func() {
		r.startColl()
		n := r.Size()
		rel := (r.id - root + n) % n
		for mask, round := 1, 0; mask < n; mask, round = mask<<1, round+1 {
			if rel&mask != 0 {
				dst := ((rel - mask) + root) % n
				r.wait(r.isend(dst, r.collTag(round), bytes, false))
				return
			}
			if rel|mask < n {
				src := ((rel | mask) + root) % n
				r.wait(r.irecv(src, r.collTag(round), bytes))
			}
		}
	})
}

// Bcast distributes a vector from root (binomial tree).
func (r *Rank) Bcast(root, bytes int) {
	r.timed("MPI_Bcast", bytes, func() {
		r.startColl()
		n := r.Size()
		rel := (r.id - root + n) % n
		// Find the mask at which we receive (highest set bit of rel).
		recvMask := 0
		for mask := 1; mask < n; mask <<= 1 {
			if rel&mask != 0 {
				recvMask = mask
			}
		}
		if rel != 0 {
			src := ((rel ^ recvMask) + root) % n
			r.wait(r.irecv(src, r.collTag(60), bytes))
		}
		// Forward to subtree: masks above our receive mask.
		start := recvMask << 1
		if rel == 0 {
			start = 1
		}
		var reqs []*Request
		for mask := start; mask < n; mask <<= 1 {
			if rel+mask < n {
				dst := ((rel | mask) + root) % n
				reqs = append(reqs, r.isend(dst, r.collTag(60), bytes, false))
			}
		}
		for _, q := range reqs {
			r.wait(q)
		}
	})
}

// Alltoall exchanges bytesPerRank with every other rank (pairwise
// exchange, n-1 rounds). Posted with the A2A routing mode.
func (r *Rank) Alltoall(bytesPerRank int) {
	r.timed("MPI_Alltoall", bytesPerRank*(r.Size()-1), func() {
		r.startColl()
		r.pairwise(func(partner int) (send, recv int) {
			return bytesPerRank, bytesPerRank
		})
	})
}

// Alltoallv exchanges sendCounts[d] bytes with each rank d. All ranks must
// pass structurally consistent counts (as MPI requires). Posted with the
// A2A routing mode.
func (r *Rank) Alltoallv(sendCounts []int) {
	total := 0
	for d, c := range sendCounts {
		if d != r.id {
			total += c
		}
	}
	r.timed("MPI_Alltoallv", total, func() {
		r.startColl()
		r.pairwise(func(partner int) (send, recv int) {
			return sendCounts[partner], 0 // recv size known on arrival
		})
	})
}

// pairwise runs the n-1 round pairwise exchange; sizes(partner) returns
// the bytes to send to (and expect from) that round's partner.
func (r *Rank) pairwise(sizes func(partner int) (send, recv int)) {
	n := r.Size()
	pow2 := n&(n-1) == 0
	for i := 1; i < n; i++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = r.id ^ i
			recvFrom = sendTo
		} else {
			sendTo = (r.id + i) % n
			recvFrom = (r.id - i + n) % n
		}
		sendBytes, recvBytes := sizes(sendTo)
		sq := r.isend(sendTo, r.collTag(i), sendBytes, true)
		rq := r.irecv(recvFrom, r.collTag(i), recvBytes)
		r.wait(sq)
		r.wait(rq)
	}
}

// Allgather gathers bytesPerRank from every rank to every rank (ring:
// n-1 rounds, each forwarding one block).
func (r *Rank) Allgather(bytesPerRank int) {
	r.timed("MPI_Allgather", bytesPerRank*(r.Size()-1), func() {
		r.startColl()
		n := r.Size()
		right := (r.id + 1) % n
		left := (r.id - 1 + n) % n
		for round := 0; round < n-1; round++ {
			tag := r.collTag(round)
			sq := r.isend(right, tag, bytesPerRank, false)
			rq := r.irecv(left, tag, bytesPerRank)
			r.wait(sq)
			r.wait(rq)
		}
	})
}
