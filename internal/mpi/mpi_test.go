package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// testWorld builds a world of n ranks on consecutive nodes of a small
// 3-group test dragonfly.
func testWorld(t testing.TB, n int, env Env) (*World, *sim.Kernel) {
	t.Helper()
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if n > topo.NumNodes() {
		t.Fatalf("n=%d exceeds %d nodes", n, topo.NumNodes())
	}
	k := sim.NewKernel()
	fab := network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), 1)
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i)
	}
	return NewWorld(fab, nodes, env), k
}

func runWorld(t testing.TB, w *World, k *sim.Kernel, main func(r *Rank)) {
	t.Helper()
	w.Run(main)
	k.Run()
	if !w.Done.Fired() {
		t.Fatal("world did not complete — deadlock or lost message")
	}
}

func TestSendRecvBlocking(t *testing.T) {
	w, k := testWorld(t, 2, DefaultEnv())
	var recvAt sim.Time
	runWorld(t, w, k, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 1024)
		} else {
			r.Recv(0, 7, 1024)
			recvAt = r.Now()
		}
	})
	if recvAt <= 0 {
		t.Fatal("receive completed at time zero")
	}
}

func TestIsendIrecvWait(t *testing.T) {
	w, k := testWorld(t, 2, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		if r.ID() == 0 {
			q := r.Isend(1, 3, 4096)
			r.Wait(q)
			if !q.Done() {
				t.Error("send request not done after Wait")
			}
		} else {
			q := r.Irecv(0, 3, 4096)
			r.Wait(q)
			if q.MatchedSrc != 0 || q.MatchedTag != 3 {
				t.Errorf("matched (%d,%d), want (0,3)", q.MatchedSrc, q.MatchedTag)
			}
		}
	})
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// Receiver posts long after arrival: the message must wait in the
	// unexpected queue and still match.
	w, k := testWorld(t, 2, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 5, 256)
		} else {
			r.Compute(50 * sim.Microsecond)
			r.Recv(0, 5, 256)
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w, k := testWorld(t, 3, DefaultEnv())
	got := make([]int, 0, 2)
	runWorld(t, w, k, func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < 2; i++ {
				q := r.Irecv(AnySource, AnyTag, 64)
				r.Wait(q)
				got = append(got, q.MatchedSrc)
			}
		default:
			r.Send(0, 40+r.ID(), 64)
		}
	})
	if len(got) != 2 {
		t.Fatalf("received %d messages", len(got))
	}
	if !((got[0] == 1 && got[1] == 2) || (got[0] == 2 && got[1] == 1)) {
		t.Fatalf("sources = %v", got)
	}
}

func TestTagSelectivity(t *testing.T) {
	// Two messages with different tags from the same source must match
	// the right recvs regardless of posting order.
	w, k := testWorld(t, 2, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 100, 64)
			r.Send(1, 200, 128)
		} else {
			q200 := r.Irecv(0, 200, 128)
			q100 := r.Irecv(0, 100, 64)
			r.Waitall(q200, q100)
			if q200.MatchedTag != 200 || q100.MatchedTag != 100 {
				t.Errorf("tags matched %d,%d", q200.MatchedTag, q100.MatchedTag)
			}
		}
	})
}

func TestSendrecv(t *testing.T) {
	w, k := testWorld(t, 2, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		peer := 1 - r.ID()
		r.Sendrecv(peer, 9, 2048, peer, 9, 2048)
	})
}

func TestSelfSend(t *testing.T) {
	w, k := testWorld(t, 1, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		q := r.Isend(0, 1, 512)
		p := r.Irecv(0, 1, 512)
		r.Waitall(q, p)
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		w, k := testWorld(t, n, DefaultEnv())
		after := make([]sim.Time, n)
		slowest := sim.Time(0)
		runWorld(t, w, k, func(r *Rank) {
			d := sim.Time(r.ID()) * 10 * sim.Microsecond
			if d > slowest {
				slowest = d
			}
			r.Compute(d)
			r.Barrier()
			after[r.ID()] = r.Now()
		})
		for i, ti := range after {
			if ti < slowest {
				t.Fatalf("n=%d: rank %d left barrier at %v before slowest arrival %v",
					n, i, ti, slowest)
			}
		}
	}
}

func TestAllreduceCompletes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		w, k := testWorld(t, n, DefaultEnv())
		runWorld(t, w, k, func(r *Rank) {
			r.Allreduce(8)
			r.Allreduce(1024)
		})
		prof := w.AggregateProfile()
		s := prof.ByCall["MPI_Allreduce"]
		if n > 1 && (s == nil || s.Calls != uint64(2*n)) {
			t.Fatalf("n=%d: allreduce calls = %+v", n, s)
		}
	}
}

func TestReduceBcast(t *testing.T) {
	for _, n := range []int{2, 4, 6, 9} {
		for root := 0; root < n; root += 3 {
			w, k := testWorld(t, n, DefaultEnv())
			runWorld(t, w, k, func(r *Rank) {
				r.Reduce(root, 4096)
				r.Bcast(root, 4096)
			})
		}
	}
}

func TestAlltoallCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		w, k := testWorld(t, n, DefaultEnv())
		runWorld(t, w, k, func(r *Rank) {
			r.Alltoall(2048)
		})
		prof := w.AggregateProfile()
		if prof.ByCall["MPI_Alltoall"] == nil {
			t.Fatalf("n=%d: no alltoall recorded", n)
		}
	}
}

func TestAlltoallvAsymmetric(t *testing.T) {
	const n = 4
	w, k := testWorld(t, n, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		counts := make([]int, n)
		for d := range counts {
			counts[d] = 512 * (1 + (r.ID()+d)%3)
		}
		r.Alltoallv(counts)
	})
}

func TestAllgatherCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		w, k := testWorld(t, n, DefaultEnv())
		runWorld(t, w, k, func(r *Rank) {
			r.Allgather(1024)
		})
	}
}

func TestBackToBackCollectives(t *testing.T) {
	// Rapid-fire mixed collectives: exercises tag-space separation.
	w, k := testWorld(t, 6, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Allreduce(8)
			r.Barrier()
			r.Alltoall(256)
			r.Bcast(i%6, 512)
		}
	})
}

func TestProfileAccounting(t *testing.T) {
	w, k := testWorld(t, 2, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		r.Compute(100 * sim.Microsecond)
		if r.ID() == 0 {
			r.Send(1, 1, 1<<20)
		} else {
			r.Recv(0, 1, 1<<20)
		}
		r.Allreduce(8)
	})
	p0 := w.Rank(0).Profile()
	if p0.ComputeTime != 100*sim.Microsecond {
		t.Errorf("compute time = %v", p0.ComputeTime)
	}
	if p0.ByCall["MPI_Send"] == nil || p0.ByCall["MPI_Send"].Bytes != 1<<20 {
		t.Errorf("send stats = %+v", p0.ByCall["MPI_Send"])
	}
	if p0.ByCall["MPI_Allreduce"] == nil {
		t.Error("no allreduce in profile")
	}
	agg := w.AggregateProfile()
	if agg.MPITime() <= 0 || agg.TotalTime() <= agg.MPITime() {
		t.Errorf("aggregate times: mpi=%v total=%v", agg.MPITime(), agg.TotalTime())
	}
	top := agg.TopCalls(3)
	if len(top) == 0 {
		t.Fatal("no top calls")
	}
}

func TestWorldRuntime(t *testing.T) {
	w, k := testWorld(t, 4, DefaultEnv())
	runWorld(t, w, k, func(r *Rank) {
		r.Compute(sim.Millisecond)
		r.Barrier()
	})
	if w.Runtime() < sim.Millisecond {
		t.Fatalf("runtime %v < compute time", w.Runtime())
	}
}

func TestA2AModeUsed(t *testing.T) {
	// With default routing AD3 but A2A mode AD0 under contention, the
	// alltoall should still take non-minimal routes sometimes: proves the
	// A2A mode is applied to alltoall traffic.
	topo, err := topology.Build(topology.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	fab := network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), 3)
	n := 12
	nodes := make([]topology.NodeID, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(i * 2) // spread across routers
	}
	env := Env{RoutingMode: routing.AD3, A2ARoutingMode: routing.AD0}
	w := NewWorld(fab, nodes, env)
	w.Run(func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Alltoall(64 * 1024)
		}
	})
	k.Run()
	if !w.Done.Fired() {
		t.Fatal("alltoall deadlocked")
	}
	if fab.NonMinimalTaken == 0 {
		t.Log("note: no non-minimal routes under A2A AD0 (acceptable but unusual)")
	}
}

func TestPeerRangePanics(t *testing.T) {
	w, k := testWorld(t, 2, DefaultEnv())
	panicked := false
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			r.Send(5, 0, 10) // out of range
		}
	})
	k.Run()
	if !panicked {
		t.Fatal("out-of-range peer did not panic")
	}
}

// Property: random mixes of p2p exchanges always complete (no deadlock, no
// mismatches) with matched sends and recvs.
func TestP2PPairProperty(t *testing.T) {
	f := func(seed int64, nMsgRaw uint8) bool {
		topo, err := topology.Build(topology.TestConfig(3))
		if err != nil {
			return false
		}
		k := sim.NewKernel()
		fab := network.New(k, topo, network.DefaultParams(), routing.DefaultConfig(), seed)
		const n = 6
		nodes := make([]topology.NodeID, n)
		for i := range nodes {
			nodes[i] = topology.NodeID(i)
		}
		w := NewWorld(fab, nodes, DefaultEnv())
		nMsg := 1 + int(nMsgRaw)%8
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, nMsg)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(16*1024)
		}
		w.Run(func(r *Rank) {
			peer := r.ID() ^ 1
			for i, sz := range sizes {
				sq := r.isend(peer, 1000+i, sz, false)
				rq := r.irecv(peer, 1000+i, sz)
				r.wait(sq)
				r.wait(rq)
			}
		})
		k.Run()
		return w.Done.Fired()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
