package mpi

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Env mirrors the Cray MPI routing-mode environment variables: the default
// mode used for most operations and the separate mode used by
// MPI_Alltoall[v] implementations.
type Env struct {
	RoutingMode    routing.Mode // MPICH_GNI_ROUTING_MODE (Cray default AD0)
	A2ARoutingMode routing.Mode // MPICH_GNI_A2A_ROUTING_MODE (Cray default AD1)
}

// DefaultEnv returns Cray MPI's factory defaults: AD0 for most traffic,
// AD1 for alltoall.
func DefaultEnv() Env {
	return Env{RoutingMode: routing.AD0, A2ARoutingMode: routing.AD1}
}

// UniformEnv routes all traffic (including alltoall) with one mode — the
// configuration the paper's experiments set via both variables.
func UniformEnv(m routing.Mode) Env {
	return Env{RoutingMode: m, A2ARoutingMode: m}
}

// World is one application's MPI universe: a set of ranks pinned to nodes
// of a shared fabric.
type World struct {
	fab   *network.Fabric
	nodes []topology.NodeID
	env   Env
	ranks []*Rank

	Done     *sim.Signal // fires when every rank's main function returns
	running  int
	startAt  sim.Time
	finishAt sim.Time

	// MinimalPkts / NonMinimalPkts count the routing decisions taken by
	// this world's own traffic (diagnostic for routing studies).
	MinimalPkts    uint64
	NonMinimalPkts uint64
	// TransitSum accumulates the network transit of this world's own
	// packets (both route classes).
	TransitSum sim.Time
}

// NewWorld creates a world with one rank per node in nodes.
func NewWorld(fab *network.Fabric, nodes []topology.NodeID, env Env) *World {
	w := &World{
		fab:   fab,
		nodes: nodes,
		env:   env,
		Done:  sim.NewSignal(),
	}
	w.ranks = make([]*Rank, len(nodes))
	for i := range nodes {
		w.ranks[i] = &Rank{
			world: w,
			id:    i,
			node:  nodes[i],
			prof:  NewProfile(),
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i (for post-run inspection of its profile).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Nodes returns the node of each rank.
func (w *World) Nodes() []topology.NodeID { return w.nodes }

// Runtime returns the wallclock from Run to the last rank finishing.
// Valid once Done has fired.
func (w *World) Runtime() sim.Time { return w.finishAt - w.startAt }

// AggregateProfile merges all rank profiles.
func (w *World) AggregateProfile() *Profile {
	p := NewProfile()
	for _, r := range w.ranks {
		p.Merge(r.prof)
	}
	return p
}

// Run spawns every rank executing main. The world's Done signal fires when
// the last rank returns. The caller drives the kernel.
func (w *World) Run(main func(r *Rank)) {
	if w.running != 0 {
		panic("mpi: World.Run called twice")
	}
	w.startAt = w.fab.Kernel().Now()
	w.running = len(w.ranks)
	for _, r := range w.ranks {
		r := r
		w.fab.Kernel().Spawn(func(p *sim.Proc) {
			r.proc = p
			main(r)
			w.running--
			if w.running == 0 {
				w.finishAt = p.Now()
				w.Done.Fire(w.fab.Kernel())
			}
		})
	}
}

// Rank is one MPI process. All methods must be called from the rank's own
// coroutine (inside the main function passed to Run).
type Rank struct {
	world *World
	id    int
	node  topology.NodeID
	proc  *sim.Proc
	prof  *Profile

	posted     []*Request  // posted receives awaiting a matching arrival
	unexpected []*envelope // arrivals awaiting a matching receive
	seq        int         // per-rank request sequence for determinism
}

// envelope describes one arrived message awaiting a matching recv.
type envelope struct {
	src, tag int
	bytes    int
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.Size() }

// Node returns the node this rank runs on.
func (r *Rank) Node() topology.NodeID { return r.node }

// Profile returns this rank's MPI usage profile.
func (r *Rank) Profile() *Profile { return r.prof }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Compute advances virtual time by d, accounted as non-MPI time.
func (r *Rank) Compute(d sim.Time) {
	r.proc.Sleep(d)
	r.prof.ComputeTime += d
}

// modeFor selects the routing mode for an operation: alltoall variants use
// the A2A mode, everything else the default mode.
func (r *Rank) modeFor(a2a bool) routing.Mode {
	if a2a {
		return r.world.env.A2ARoutingMode
	}
	return r.world.env.RoutingMode
}

// timed runs fn and accounts its elapsed time to the named MPI call.
func (r *Rank) timed(call string, bytes int, fn func()) {
	start := r.proc.Now()
	fn()
	r.prof.add(call, bytes, r.proc.Now()-start)
}

func (r *Rank) checkPeer(peer int) {
	if peer < 0 || peer >= r.world.Size() {
		panic(fmt.Sprintf("mpi: rank %d out of range 0..%d", peer, r.world.Size()-1))
	}
}
