// Package parallel fans independent, seeded simulation runs out across a
// fixed-size worker pool. The discrete-event kernel stays strictly
// single-threaded within one run; parallelism exists only BETWEEN runs,
// which share no mutable state (each worker owns its own core.Machine).
// Results are merged in task-index order, so parallel output is identical
// — byte for byte — to what the equivalent sequential loop produces.
package parallel

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Workers normalizes a -j style request: values below 1 mean "one worker
// per available CPU" (GOMAXPROCS, which tracks runtime.NumCPU unless
// overridden).
func Workers(j int) int {
	if j < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs fn(worker, index) for every index in [0, n) using at most
// `workers` concurrent goroutines and returns the results ordered by
// index. `worker` identifies which pool slot (0..workers-1) is executing
// the call — use it to select per-worker state such as a Machine, so
// concurrent tasks never share one. fn must depend only on its arguments
// (plus per-worker state) for the sequential/parallel equivalence to
// hold.
//
// All n tasks are attempted even if some fail; the error of the lowest
// failing index is returned, matching what a sequential loop would have
// reported first. On error the returned slice is still the full n-length
// result set — every index that succeeded holds its computed value, and
// failed indices hold T's zero value. Callers that paid for n expensive
// tasks can salvage the survivors (ensemble sweeps drop the failed seeds
// rather than rerun the campaign); callers that need all-or-nothing
// semantics simply discard the slice when err != nil. With workers <= 1
// the tasks run inline on the calling goroutine in index order, with the
// same contract.
//
// Worker goroutines are labeled with pprof tag worker=<slot>, so CPU
// profiles taken during a parallel map attribute samples per pool slot.
func Map[T any](workers, n int, fn func(worker, index int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), workers, n, fn)
}

// MapContext is Map with cooperative cancellation. A discrete-event run
// cannot be preempted mid-flight, so cancellation is between tasks: once
// ctx is done, no new task starts — every index not yet claimed fails
// immediately with ctx's error — while tasks already executing run to
// completion and keep their results. The partial-results contract is
// otherwise identical to Map's: the returned slice always has length n,
// successful indices hold their computed values, failed or skipped
// indices hold T's zero value, and the error of the lowest failing index
// is returned. Callers that need to know whether a timeout (rather than
// a task failure) cut the map short check errors.Is(err, ctx.Err()).
func MapContext[T any](ctx context.Context, workers, n int, fn func(worker, index int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			out[i] = runTask(fn, 0, i, errs)
		}
		return out, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pprof.Do(context.Background(),
				pprof.Labels("worker", strconv.Itoa(worker)),
				func(context.Context) {
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						// After cancellation, keep claiming indices so
						// every skipped task records the cancellation
						// error (the salvage contract requires all n
						// indices accounted for).
						if err := ctx.Err(); err != nil {
							errs[i] = err
							continue
						}
						// Distinct goroutines write disjoint indices, so
						// the result and error slices need no locking.
						out[i] = runTask(fn, worker, i, errs)
					}
				})
		}(w)
	}
	wg.Wait()
	return out, firstError(errs)
}

// runTask executes one task, recording its error and mapping a failed
// task's value to T's zero value so callers never consume the partial
// value of a failed computation.
func runTask[T any](fn func(worker, index int) (T, error), worker, i int, errs []error) T {
	v, err := fn(worker, i)
	if err != nil {
		errs[i] = err
		var zero T
		return zero
	}
	return v
}

// firstError returns the error at the lowest index, or nil.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Reduce is ReduceContext with a background context.
func Reduce[T any](workers, n int, fn func(worker, index int) (T, error), fold func(index int, v T)) error {
	return ReduceContext(context.Background(), workers, n, fn, fold)
}

// ReduceContext runs fn(worker, index) for every index in [0, n) like
// MapContext, but instead of materializing an n-length result slice it
// folds each successful result — in strictly increasing index order —
// into caller state via fold, then drops it. This is the streaming
// complement to MapContext: retained memory is O(workers), not O(n). A
// worker that completes index i parks its result until every lower index
// has been folded or recorded as failed, and a bounded reordering window
// keeps the parking lot small: no task runs more than `workers` indices
// ahead of the fold frontier (a worker that pulls too far ahead blocks
// until the frontier catches up), so at most `workers` results exist
// outside the fold at any moment.
//
// fold is called under an internal lock — never concurrently with itself
// — on whichever worker goroutine deposits the result that unblocks the
// index order; it must not call back into the reducer. The error
// contract matches MapContext: all n indices are attempted (after
// cancellation the unclaimed remainder fail with ctx's error), fold is
// skipped for failed indices, and the error of the lowest failing index
// is returned. With workers <= 1 the tasks run and fold inline on the
// calling goroutine in index order.
func ReduceContext[T any](ctx context.Context, workers, n int, fn func(worker, index int) (T, error), fold func(index int, v T)) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			v, err := fn(0, i)
			if err != nil {
				errs[i] = err
				continue
			}
			fold(i, v)
		}
		return firstError(errs)
	}
	var (
		mu       sync.Mutex
		frontier = sync.NewCond(&mu)
		pending  = make(map[int]T, workers)
		failed   = make([]bool, n)
		nextOut  int // lowest index not yet folded or skipped
	)
	window := workers
	// deposit parks index i's outcome and drains the in-order prefix.
	// Failed indices contribute no value and are skipped by the drain.
	deposit := func(i int, v T, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if ok {
			pending[i] = v
		} else {
			failed[i] = true
		}
		advanced := false
		for nextOut < n {
			if failed[nextOut] {
				nextOut++
				advanced = true
				continue
			}
			v, ready := pending[nextOut]
			if !ready {
				break
			}
			delete(pending, nextOut)
			fold(nextOut, v)
			nextOut++
			advanced = true
		}
		if advanced {
			frontier.Broadcast()
		}
	}
	// await blocks until index i is inside the reordering window. Safe
	// from deadlock: the holder of the lowest undeposited index is never
	// blocked here (i >= nextOut+window implies at least `window` lower
	// indices are still undeposited), so the frontier always advances.
	await := func(i int) {
		mu.Lock()
		for i >= nextOut+window {
			frontier.Wait()
		}
		mu.Unlock()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pprof.Do(context.Background(),
				pprof.Labels("worker", strconv.Itoa(worker)),
				func(context.Context) {
					for {
						i := int(next.Add(1)) - 1
						if i >= n {
							return
						}
						await(i)
						var zero T
						if err := ctx.Err(); err != nil {
							errs[i] = err
							deposit(i, zero, false)
							continue
						}
						v, err := fn(worker, i)
						if err != nil {
							errs[i] = err
							deposit(i, zero, false)
							continue
						}
						deposit(i, v, true)
					}
				})
		}(w)
	}
	wg.Wait()
	return firstError(errs)
}

// ForEach is Map for tasks with no result value.
func ForEach(workers, n int, fn func(worker, index int) error) error {
	_, err := Map(workers, n, func(worker, index int) (struct{}, error) {
		return struct{}{}, fn(worker, index)
	})
	return err
}
