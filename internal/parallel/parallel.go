// Package parallel fans independent, seeded simulation runs out across a
// fixed-size worker pool. The discrete-event kernel stays strictly
// single-threaded within one run; parallelism exists only BETWEEN runs,
// which share no mutable state (each worker owns its own core.Machine).
// Results are merged in task-index order, so parallel output is identical
// — byte for byte — to what the equivalent sequential loop produces.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a -j style request: values below 1 mean "one worker
// per available CPU" (GOMAXPROCS, which tracks runtime.NumCPU unless
// overridden).
func Workers(j int) int {
	if j < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs fn(worker, index) for every index in [0, n) using at most
// `workers` concurrent goroutines and returns the results ordered by
// index. `worker` identifies which pool slot (0..workers-1) is executing
// the call — use it to select per-worker state such as a Machine, so
// concurrent tasks never share one. fn must depend only on its arguments
// (plus per-worker state) for the sequential/parallel equivalence to
// hold.
//
// All n tasks are attempted even if some fail; the error of the lowest
// failing index is returned, matching what a sequential loop would have
// reported first. With workers <= 1 the tasks run inline on the calling
// goroutine in index order.
func Map[T any](workers, n int, fn func(worker, index int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(0, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Distinct goroutines write disjoint indices, so the
				// result and error slices need no locking.
				out[i], errs[i] = fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map for tasks with no result value.
func ForEach(workers, n int, fn func(worker, index int) error) error {
	_, err := Map(workers, n, func(worker, index int) (struct{}, error) {
		return struct{}{}, fn(worker, index)
	})
	return err
}
