package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		got, err := Map(workers, 50, func(worker, index int) (int, error) {
			return index * index, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(workers, 37, func(worker, index int) (string, error) {
			return fmt.Sprintf("task-%03d", index), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 20, func(worker, index int) (int, error) {
			switch index {
			case 3:
				return 0, errLow
			case 17:
				return 0, errHigh
			}
			return index, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err=%v, want %v", workers, err, errLow)
		}
	}
}

// TestMapReturnsPartialResultsOnError pins the salvage contract: when
// some tasks fail, the returned slice still carries every successful
// index's value (failed indices hold the zero value), alongside the
// lowest-index error. All n tasks must have been attempted, on both the
// inline and the pooled path.
func TestMapReturnsPartialResultsOnError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var attempted atomic.Int64
		out, err := Map(workers, 20, func(worker, index int) (int, error) {
			attempted.Add(1)
			if index%5 == 2 { // fails 2, 7, 12, 17
				return -1, boom
			}
			return index * 10, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want %v", workers, err, boom)
		}
		if got := attempted.Load(); got != 20 {
			t.Fatalf("workers=%d: attempted %d tasks, want all 20", workers, got)
		}
		if len(out) != 20 {
			t.Fatalf("workers=%d: len(out)=%d, want 20 despite error", workers, len(out))
		}
		for i, v := range out {
			want := i * 10
			if i%5 == 2 {
				want = 0 // failed index: zero value, not fn's return
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestMapWorkerIndexStaysInPool(t *testing.T) {
	const workers = 4
	var used [workers]atomic.Int64
	_, err := Map(workers, 200, func(worker, index int) (int, error) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker %d out of range", worker)
		}
		used[worker].Add(1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := range used {
		total += used[i].Load()
	}
	if total != 200 {
		t.Fatalf("tasks executed = %d, want 200", total)
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(8, 0, func(worker, index int) (int, error) {
		t.Error("fn called with no tasks")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	var count atomic.Int64
	if err := ForEach(4, 25, func(worker, index int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 25 {
		t.Fatalf("count = %d", count.Load())
	}
	boom := errors.New("boom")
	if err := ForEach(4, 5, func(worker, index int) error {
		if index == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestMapContextAlreadyCancelled pins the caller-cancels contract at its
// boundary: with a context that is done before the map starts, no task
// runs at all, yet the returned slice still has length n with every index
// holding the zero value and the context's error reported.
func TestMapContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		out, err := MapContext(ctx, workers, 10, func(worker, index int) (int, error) {
			t.Errorf("workers=%d: task %d ran after cancellation", workers, index)
			return -1, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if len(out) != 10 {
			t.Fatalf("workers=%d: len(out)=%d, want 10", workers, len(out))
		}
		for i, v := range out {
			if v != 0 {
				t.Fatalf("workers=%d: out[%d]=%d, want zero value", workers, i, v)
			}
		}
	}
}

// TestMapContextCancelMidMapSequential cancels from inside a task on the
// inline path: tasks before the cancellation point keep their results,
// tasks after it are skipped with the context's error, and the lowest
// failing index's error (the cancellation) is what Map returns.
func TestMapContextCancelMidMapSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapContext(ctx, 1, 10, func(worker, index int) (int, error) {
		if index == 3 {
			cancel()
		}
		return index * 10, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	for i := 0; i <= 3; i++ {
		if out[i] != i*10 {
			t.Fatalf("out[%d]=%d, want %d (completed before cancel)", i, out[i], i*10)
		}
	}
	for i := 4; i < 10; i++ {
		if out[i] != 0 {
			t.Fatalf("out[%d]=%d, want zero value (skipped)", i, out[i])
		}
	}
}

// TestMapContextCancelMidMapParallel is the pooled-path version: park one
// task per worker on a gate, cancel, then release the gate. The parked
// tasks must run to completion and keep their results (a DES run cannot
// be preempted), while every unclaimed index fails with the context's
// error and the zero value.
func TestMapContextCancelMidMapParallel(t *testing.T) {
	const workers, n = 4, 20
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, workers)
	release := make(chan struct{})
	// MapContext is synchronous, so the coordinator runs alongside it:
	// once every worker has claimed its first task, cancel, then let the
	// parked tasks finish.
	go func() {
		for i := 0; i < workers; i++ {
			<-started
		}
		cancel()
		close(release)
	}()
	out, err := MapContext(ctx, workers, n, func(worker, index int) (int, error) {
		started <- struct{}{}
		<-release
		return index + 100, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if len(out) != n {
		t.Fatalf("len(out)=%d, want %d", len(out), n)
	}
	// The first `workers` indices were claimed before cancellation (the
	// atomic counter hands out 0..workers-1 first) and must have
	// completed; everything after was skipped with the zero value.
	completed := 0
	for i, v := range out {
		switch v {
		case i + 100:
			completed++
		case 0:
			// skipped by cancellation
		default:
			t.Fatalf("out[%d]=%d, want %d or zero", i, v, i+100)
		}
	}
	if completed != workers {
		t.Fatalf("completed tasks = %d, want exactly %d (one in flight per worker)", completed, workers)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("defaulted worker count must be positive")
	}
}

func TestReduceFoldsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		var got []int
		err := Reduce(workers, 50, func(worker, index int) (int, error) {
			return index * 3, nil
		}, func(index int, v int) {
			if v != index*3 {
				t.Fatalf("workers=%d: fold(%d) got %d", workers, index, v)
			}
			got = append(got, index)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: folded %d of 50", workers, len(got))
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: fold order %v not strictly increasing", workers, got)
			}
		}
	}
}

func TestReduceBoundedPending(t *testing.T) {
	// The streaming contract: at most `workers` results exist outside the
	// fold at any moment. Track live (created, not yet folded) results
	// and assert the high-water mark.
	const workers, n = 4, 200
	var live, peak atomic.Int64
	err := Reduce(workers, n, func(worker, index int) (int, error) {
		if index == 0 {
			// An adversarially slow first task: without the reordering
			// window the other workers would park O(n) results behind it.
			time.Sleep(30 * time.Millisecond)
		}
		now := live.Add(1)
		for {
			old := peak.Load()
			if now <= old || peak.CompareAndSwap(old, now) {
				break
			}
		}
		return index, nil
	}, func(index int, v int) {
		live.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak live results %d exceeds worker count %d", p, workers)
	}
}

func TestReduceSkipsFailedAndReportsLowest(t *testing.T) {
	boom7, boom31 := errors.New("boom7"), errors.New("boom31")
	for _, workers := range []int{1, 8} {
		var folded []int
		err := Reduce(workers, 40, func(worker, index int) (int, error) {
			switch index {
			case 7:
				return 0, boom7
			case 31:
				return 0, boom31
			}
			return index, nil
		}, func(index int, v int) {
			folded = append(folded, index)
		})
		if !errors.Is(err, boom7) {
			t.Fatalf("workers=%d: err=%v, want lowest-index boom7", workers, err)
		}
		if len(folded) != 38 {
			t.Fatalf("workers=%d: folded %d, want 38 survivors", workers, len(folded))
		}
		prev := -1
		for _, idx := range folded {
			if idx == 7 || idx == 31 {
				t.Fatalf("workers=%d: folded failed index %d", workers, idx)
			}
			if idx <= prev {
				t.Fatalf("workers=%d: fold order violated at %d", workers, idx)
			}
			prev = idx
		}
	}
}

func TestReduceContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var folded atomic.Int64
	err := ReduceContext(ctx, 4, 100, func(worker, index int) (int, error) {
		if index == 10 {
			cancel()
		}
		return index, nil
	}, func(index int, v int) {
		folded.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if f := folded.Load(); f >= 100 {
		t.Fatalf("cancellation did not skip any tasks (folded %d)", f)
	}
}

func TestReduceZeroTasks(t *testing.T) {
	err := Reduce(8, 0, func(worker, index int) (int, error) {
		t.Fatal("task ran for n=0")
		return 0, nil
	}, func(index int, v int) {
		t.Fatal("fold ran for n=0")
	})
	if err != nil {
		t.Fatal(err)
	}
}
