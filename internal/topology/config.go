// Package topology models the Cray Aries dragonfly interconnect graph:
// three link ranks (rank-1 intra-chassis, rank-2 intra-group columns,
// rank-3 optical inter-group), routers with 4 NIC-attached nodes, and the
// 48-tile layout per router that the paper's hardware counters are read
// from. The package is purely structural — link state and counters live in
// internal/network.
package topology

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes one dragonfly machine. All structural parameters are
// free so tests can build tiny instances, while ThetaConfig and CoriConfig
// match the two production systems in the paper.
type Config struct {
	Name string

	// Structure.
	Groups             int // number of electrical groups
	ChassisPerGroup    int // Aries: 6 (a group is 2 cabinets x 3 chassis)
	SlotsPerChassis    int // routers per chassis row; Aries: 16
	NodesPerRouter     int // Aries: 4
	ActiveNodes        int // usable compute nodes (may be < capacity)
	Rank2LinksPerPair  int // parallel links between column peers; Aries: 3
	GlobalLinksPerPair int // optical cables between each pair of groups

	// Per-direction link bandwidths, bytes/second. The paper quotes
	// 10.5 GB/s bidirectional for copper and 9.38 GB/s for optical; we
	// model each direction as an independent simplex channel.
	Rank1Bandwidth     float64
	Rank2Bandwidth     float64
	Rank3Bandwidth     float64
	InjectionBandwidth float64 // NIC to router
	// EjectionBandwidth is the router-to-NIC rate. Zero means symmetric
	// (InjectionBandwidth), which is the Aries configuration; setting it
	// differently models asymmetric NIC rates and — because it decouples
	// the inject and eject flit clocks at a node — is also what the
	// network package's fused-equivalence tests use to keep simultaneous
	// inject/eject completions from producing timestamp ties.
	EjectionBandwidth float64

	// Per-hop propagation + switch latency.
	Rank1Latency sim.Time
	Rank2Latency sim.Time
	Rank3Latency sim.Time
	NICLatency   sim.Time
}

// Capacity returns the total number of node slots (routers x nodes/router).
func (c Config) Capacity() int { return c.Routers() * c.NodesPerRouter }

// Routers returns the total router count.
func (c Config) Routers() int { return c.Groups * c.RoutersPerGroup() }

// RoutersPerGroup returns routers in one group.
func (c Config) RoutersPerGroup() int { return c.ChassisPerGroup * c.SlotsPerChassis }

// Validate reports the first structural problem in the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.Groups < 2:
		return fmt.Errorf("topology: need at least 2 groups, have %d", c.Groups)
	case c.ChassisPerGroup < 1:
		return fmt.Errorf("topology: ChassisPerGroup must be >= 1, have %d", c.ChassisPerGroup)
	case c.SlotsPerChassis < 1:
		return fmt.Errorf("topology: SlotsPerChassis must be >= 1, have %d", c.SlotsPerChassis)
	case c.NodesPerRouter < 1:
		return fmt.Errorf("topology: NodesPerRouter must be >= 1, have %d", c.NodesPerRouter)
	case c.ActiveNodes < 1 || c.ActiveNodes > c.Capacity():
		return fmt.Errorf("topology: ActiveNodes %d out of range 1..%d", c.ActiveNodes, c.Capacity())
	case c.Rank2LinksPerPair < 1 && c.ChassisPerGroup > 1:
		return fmt.Errorf("topology: Rank2LinksPerPair must be >= 1")
	case c.GlobalLinksPerPair < 1:
		return fmt.Errorf("topology: GlobalLinksPerPair must be >= 1")
	case c.Rank1Bandwidth <= 0 || c.Rank2Bandwidth <= 0 || c.Rank3Bandwidth <= 0 || c.InjectionBandwidth <= 0:
		return fmt.Errorf("topology: all bandwidths must be positive")
	case c.EjectionBandwidth < 0:
		return fmt.Errorf("topology: EjectionBandwidth must be >= 0 (0 = symmetric)")
	}
	return nil
}

// EjectBW returns the effective router-to-NIC bandwidth: EjectionBandwidth
// when set, else the symmetric InjectionBandwidth.
func (c Config) EjectBW() float64 {
	if c.EjectionBandwidth > 0 {
		return c.EjectionBandwidth
	}
	return c.InjectionBandwidth
}

const gb = 1e9 // bytes, decimal as in link-rate marketing

// ThetaConfig is ALCF Theta: 4392 KNL nodes, 12 groups, 12 optical cables
// between each pair of groups.
func ThetaConfig() Config {
	c := baseAries()
	c.Name = "theta"
	c.Groups = 12
	c.ActiveNodes = 4392
	c.GlobalLinksPerPair = 12
	return c
}

// CoriConfig is NERSC Cori (KNL partition): 9668 nodes and only 4 cables
// per group pair, i.e. a reduced bisection-to-injection ratio relative to
// Theta — the distinction the paper calls out.
func CoriConfig() Config {
	c := baseAries()
	c.Name = "cori"
	c.Groups = 26
	c.ActiveNodes = 9668
	c.GlobalLinksPerPair = 4
	return c
}

func baseAries() Config {
	return Config{
		ChassisPerGroup:    6,
		SlotsPerChassis:    16,
		NodesPerRouter:     4,
		Rank2LinksPerPair:  3,
		Rank1Bandwidth:     5.25 * gb, // 10.5 GB/s bidirectional
		Rank2Bandwidth:     5.25 * gb,
		Rank3Bandwidth:     4.69 * gb, // 9.38 GB/s bidirectional
		InjectionBandwidth: 8.0 * gb,
		Rank1Latency:       100 * sim.Nanosecond,
		Rank2Latency:       100 * sim.Nanosecond,
		Rank3Latency:       300 * sim.Nanosecond, // optical + longer span
		NICLatency:         500 * sim.Nanosecond,
	}
}

// ThetaMiniConfig is a scaled-down Theta used by the experiment harness:
// the same 12 groups and three-level structure, but 16 routers per group
// and 2 nodes per router (384 nodes total, ~11.4x smaller). Four global
// links per group pair keep minimal routing's rank-3 path diversity (on
// real Theta every pair has 12 cables — multiplicity is what lets strong
// minimal bias still balance load), and the per-link rank-3 bandwidth is
// reduced so the bisection-to-injection ratio matches full Theta
// (~0.115: 36 pair-cuts x 12 links x 4.69 GB/s over 2196 nodes x 8 GB/s).
func ThetaMiniConfig() Config {
	c := baseAries()
	c.Name = "theta-mini"
	c.Groups = 12
	c.ChassisPerGroup = 2
	c.SlotsPerChassis = 8
	c.NodesPerRouter = 2
	// Intra-group bandwidth must keep Aries' proportions: a real router
	// drives 15 rank-1 + 15 rank-2 links against 4 injecting nodes
	// (~2.5x each); with 8-slot chassis rows (7 rank-1 links) and one
	// column peer, 8 parallel rank-2 links restore the same ratios so
	// minimal routing is not structurally starved inside the group.
	c.Rank2LinksPerPair = 8
	c.GlobalLinksPerPair = 2
	c.Rank3Bandwidth = 2.35 * gb // 36 x 2 x 2.35 / (192 x 8) = Theta's 0.11
	c.ActiveNodes = c.Capacity()
	return c
}

// CoriMiniConfig is a scaled-down Cori: 26 groups of 16 routers (832
// nodes), keeping Cori's 4 cables per group pair and scaling per-link
// rank-3 bandwidth so the bisection-to-injection ratio matches full Cori
// (~0.082, i.e. ~71% of Theta's — the "reduced bisection-to-injection
// ratio" the paper calls out).
func CoriMiniConfig() Config {
	c := ThetaMiniConfig()
	c.Name = "cori-mini"
	c.Groups = 26
	c.Rank3Bandwidth = 1.68 * gb // 169 x 2 x 1.68 / (416 x 8) = Cori's 0.082
	c.ActiveNodes = c.Capacity()
	return c
}

// TestConfig returns a small but structurally complete dragonfly for unit
// tests: `groups` groups of 2 chassis x 4 slots with 2 nodes per router.
func TestConfig(groups int) Config {
	c := baseAries()
	c.Name = fmt.Sprintf("test-%dg", groups)
	c.Groups = groups
	c.ChassisPerGroup = 2
	c.SlotsPerChassis = 4
	c.NodesPerRouter = 2
	c.Rank2LinksPerPair = 2
	c.GlobalLinksPerPair = 4
	c.ActiveNodes = c.Capacity()
	return c
}
