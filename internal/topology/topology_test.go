package topology

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := TestConfig(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("TestConfig(3) invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Groups = 1 },
		func(c *Config) { c.ChassisPerGroup = 0 },
		func(c *Config) { c.SlotsPerChassis = 0 },
		func(c *Config) { c.NodesPerRouter = 0 },
		func(c *Config) { c.ActiveNodes = 0 },
		func(c *Config) { c.ActiveNodes = c.Capacity() + 1 },
		func(c *Config) { c.GlobalLinksPerPair = 0 },
		func(c *Config) { c.Rank1Bandwidth = 0 },
		func(c *Config) { c.Rank3Bandwidth = -1 },
	}
	for i, mutate := range bad {
		c := TestConfig(3)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestProductionConfigs(t *testing.T) {
	theta := ThetaConfig()
	if err := theta.Validate(); err != nil {
		t.Fatalf("theta: %v", err)
	}
	if theta.Routers() != 12*96 {
		t.Errorf("theta routers = %d, want 1152", theta.Routers())
	}
	if theta.Capacity() < theta.ActiveNodes {
		t.Errorf("theta capacity %d < active %d", theta.Capacity(), theta.ActiveNodes)
	}
	cori := CoriConfig()
	if err := cori.Validate(); err != nil {
		t.Fatalf("cori: %v", err)
	}
	if cori.ActiveNodes != 9668 {
		t.Errorf("cori nodes = %d", cori.ActiveNodes)
	}
	if cori.GlobalLinksPerPair >= theta.GlobalLinksPerPair {
		t.Error("cori should have fewer global links per pair than theta (reduced bisection)")
	}
}

func mustBuild(t *testing.T, cfg Config) *Topology {
	t.Helper()
	tp, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build(%s): %v", cfg.Name, err)
	}
	return tp
}

func TestBuildRejectsInvalid(t *testing.T) {
	c := TestConfig(3)
	c.Groups = 0
	if _, err := Build(c); err == nil {
		t.Fatal("Build accepted invalid config")
	}
}

func TestRouterCoordinates(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	cfg := tp.Cfg
	for _, r := range tp.Routers {
		back := int(r.Group)*cfg.RoutersPerGroup() + r.Chassis*cfg.SlotsPerChassis + r.Slot
		if back != int(r.ID) {
			t.Fatalf("router %d: coords (%d,%d,%d) round-trip to %d",
				r.ID, r.Group, r.Chassis, r.Slot, back)
		}
	}
}

func TestRank1Structure(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	cfg := tp.Cfg
	for _, r := range tp.Routers {
		peers := 0
		base := int(r.ID) - r.Slot
		for s := 0; s < cfg.SlotsPerChassis; s++ {
			peer := RouterID(base + s)
			id := tp.R1Link(r.ID, peer)
			if s == r.Slot {
				if id != -1 {
					t.Fatalf("self rank-1 link on router %d", r.ID)
				}
				continue
			}
			if id < 0 {
				t.Fatalf("missing rank-1 link %d->%d", r.ID, peer)
			}
			l := tp.Link(id)
			if l.Src != r.ID || l.Dst != peer || l.Class != Rank1 {
				t.Fatalf("bad rank-1 link record: %+v", l)
			}
			peers++
		}
		if peers != cfg.SlotsPerChassis-1 {
			t.Fatalf("router %d has %d rank-1 peers", r.ID, peers)
		}
	}
	// Not rank-1 peers: different chassis.
	if tp.R1Link(0, RouterID(tp.Cfg.SlotsPerChassis)) != -1 {
		t.Fatal("cross-chassis rank-1 link should not exist")
	}
}

func TestRank2Structure(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	cfg := tp.Cfg
	a := RouterID(0)                   // group 0, chassis 0, slot 0
	b := RouterID(cfg.SlotsPerChassis) // group 0, chassis 1, slot 0
	ls := tp.R2Links(a, b)
	if len(ls) != cfg.Rank2LinksPerPair {
		t.Fatalf("R2Links(0,%d) = %d links, want %d", b, len(ls), cfg.Rank2LinksPerPair)
	}
	for _, id := range ls {
		l := tp.Link(id)
		if l.Src != a || l.Dst != b || l.Class != Rank2 {
			t.Fatalf("bad rank-2 link: %+v", l)
		}
	}
	if tp.R2Links(a, 1) != nil {
		t.Fatal("same-chassis routers must not have rank-2 links")
	}
	if tp.R2Links(a, a) != nil {
		t.Fatal("self rank-2 links must not exist")
	}
}

func TestRank3Structure(t *testing.T) {
	tp := mustBuild(t, TestConfig(4))
	cfg := tp.Cfg
	for a := 0; a < cfg.Groups; a++ {
		for b := 0; b < cfg.Groups; b++ {
			ls := tp.GlobalLinks(GroupID(a), GroupID(b))
			if a == b {
				if ls != nil {
					t.Fatalf("GlobalLinks(%d,%d) should be nil", a, b)
				}
				continue
			}
			if len(ls) != cfg.GlobalLinksPerPair {
				t.Fatalf("GlobalLinks(%d,%d) = %d, want %d", a, b, len(ls), cfg.GlobalLinksPerPair)
			}
			for _, id := range ls {
				l := tp.Link(id)
				if l.Class != Rank3 {
					t.Fatalf("global link has class %v", l.Class)
				}
				if tp.GroupOfRouter(l.Src) != GroupID(a) || tp.GroupOfRouter(l.Dst) != GroupID(b) {
					t.Fatalf("global link %d endpoints in wrong groups", id)
				}
			}
		}
	}
}

func TestLinkTileAssignment(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	for _, l := range tp.Links {
		if l.Tile < 0 || l.Tile >= tp.TilesPerRouter() {
			t.Fatalf("link %d tile %d out of range 0..%d", l.ID, l.Tile, tp.TilesPerRouter())
		}
		var want TileClass
		switch l.Class {
		case Rank1:
			want = TileRank1
		case Rank2:
			want = TileRank2
		case Rank3:
			want = TileRank3
		}
		if got := tp.TileClassOf(l.Tile); got != want {
			t.Fatalf("link %d (class %v) on tile %d classified %v", l.ID, l.Class, l.Tile, got)
		}
	}
}

func TestProcTiles(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	for i := 0; i < tp.Cfg.NodesPerRouter; i++ {
		req, rsp := tp.ProcReqTile(i), tp.ProcRspTile(i)
		if tp.TileClassOf(req) != TileProcReq {
			t.Fatalf("ProcReqTile(%d)=%d classified %v", i, req, tp.TileClassOf(req))
		}
		if tp.TileClassOf(rsp) != TileProcRsp {
			t.Fatalf("ProcRspTile(%d)=%d classified %v", i, rsp, tp.TileClassOf(rsp))
		}
	}
}

func TestNodeMapping(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	cfg := tp.Cfg
	for n := 0; n < tp.NumNodes(); n++ {
		r := tp.RouterOfNode(NodeID(n))
		if int(r) != n/cfg.NodesPerRouter {
			t.Fatalf("node %d -> router %d", n, r)
		}
		if got := tp.NICIndexOfNode(NodeID(n)); got != n%cfg.NodesPerRouter {
			t.Fatalf("node %d NIC index %d", n, got)
		}
		if tp.GroupOfNode(NodeID(n)) != tp.GroupOfRouter(r) {
			t.Fatalf("node %d group mismatch", n)
		}
	}
}

func TestLinkCountFormula(t *testing.T) {
	tp := mustBuild(t, TestConfig(3))
	cfg := tp.Cfg
	s, ch, g := cfg.SlotsPerChassis, cfg.ChassisPerGroup, cfg.Groups
	wantR1 := g * ch * s * (s - 1)
	wantR2 := g * s * ch * (ch - 1) * cfg.Rank2LinksPerPair
	wantR3 := g * (g - 1) * cfg.GlobalLinksPerPair
	var gotR1, gotR2, gotR3 int
	for _, l := range tp.Links {
		switch l.Class {
		case Rank1:
			gotR1++
		case Rank2:
			gotR2++
		case Rank3:
			gotR3++
		}
	}
	if gotR1 != wantR1 || gotR2 != wantR2 || gotR3 != wantR3 {
		t.Fatalf("link counts r1=%d/%d r2=%d/%d r3=%d/%d",
			gotR1, wantR1, gotR2, wantR2, gotR3, wantR3)
	}
}

func TestBidirectionalSymmetry(t *testing.T) {
	tp := mustBuild(t, TestConfig(4))
	// Every directed link must have a reverse link of the same class.
	type key struct {
		src, dst RouterID
		class    LinkClass
	}
	count := map[key]int{}
	for _, l := range tp.Links {
		count[key{l.Src, l.Dst, l.Class}]++
	}
	for k, n := range count {
		rev := key{k.dst, k.src, k.class}
		if count[rev] != n {
			t.Fatalf("asymmetric links %v: %d forward, %d reverse", k, n, count[rev])
		}
	}
}

func TestThetaBuildScale(t *testing.T) {
	tp := mustBuild(t, ThetaConfig())
	if tp.NumRouters() != 1152 {
		t.Fatalf("theta routers = %d", tp.NumRouters())
	}
	if tp.NumNodes() != 4392 {
		t.Fatalf("theta nodes = %d", tp.NumNodes())
	}
	// Paper: ~40 network tiles + 8 processor tiles per router.
	if tp.TilesPerRouter() < 38 || tp.TilesPerRouter() > 50 {
		t.Fatalf("theta tiles per router = %d, want ~48", tp.TilesPerRouter())
	}
}

// Property: for random small configs, every router's outgoing links have
// distinct tiles within each class, and all endpoints are in-range.
func TestTopologyInvariantsProperty(t *testing.T) {
	f := func(gRaw, chRaw, slRaw, glRaw uint8) bool {
		cfg := TestConfig(2 + int(gRaw)%5)
		cfg.ChassisPerGroup = 1 + int(chRaw)%4
		cfg.SlotsPerChassis = 1 + int(slRaw)%6
		cfg.GlobalLinksPerPair = 1 + int(glRaw)%6
		cfg.ActiveNodes = cfg.Capacity()
		tp, err := Build(cfg)
		if err != nil {
			return false
		}
		// endpoint ranges and per-router-per-class tile uniqueness for
		// rank-1/rank-2 (rank-3 tiles may legitimately be shared when a
		// router hosts more global endpoints than its tile budget).
		seen := map[[2]int]bool{}
		for _, l := range tp.Links {
			if int(l.Src) >= tp.NumRouters() || int(l.Dst) >= tp.NumRouters() || l.Src == l.Dst {
				return false
			}
			if l.Class == Rank3 {
				continue
			}
			k := [2]int{int(l.Src), l.Tile}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
