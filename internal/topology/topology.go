package topology

import (
	"fmt"

	"repro/internal/sim"
)

// Identifier types. All are dense indices starting at zero.
type (
	// RouterID identifies one Aries router (one blade).
	RouterID int32
	// NodeID identifies one compute node (4 per router on Aries).
	NodeID int32
	// LinkID identifies one directed router-to-router channel.
	LinkID int32
	// GroupID identifies one electrical group.
	GroupID int32
)

// LinkClass distinguishes the three dragonfly link ranks.
type LinkClass uint8

// Link ranks, in the paper's color coding: rank-1 green (intra-chassis
// row), rank-2 grey (intra-group column), rank-3 blue (optical global).
const (
	Rank1 LinkClass = iota
	Rank2
	Rank3
	numLinkClasses
)

func (c LinkClass) String() string {
	switch c {
	case Rank1:
		return "rank1"
	case Rank2:
		return "rank2"
	case Rank3:
		return "rank3"
	}
	return fmt.Sprintf("LinkClass(%d)", uint8(c))
}

// TileClass classifies a router tile for counter aggregation, matching the
// paper's Fig. 6 breakdown: the three network ranks plus processor-tile
// request and response traffic.
type TileClass uint8

// Tile classes.
const (
	TileRank1 TileClass = iota
	TileRank2
	TileRank3
	TileProcReq
	TileProcRsp
	NumTileClasses
)

func (c TileClass) String() string {
	switch c {
	case TileRank1:
		return "Rank1"
	case TileRank2:
		return "Rank2"
	case TileRank3:
		return "Rank3"
	case TileProcReq:
		return "Proc_req"
	case TileProcRsp:
		return "Proc_rsp"
	}
	return fmt.Sprintf("TileClass(%d)", uint8(c))
}

// Link is one directed router-to-router channel.
type Link struct {
	ID        LinkID
	Src, Dst  RouterID
	Class     LinkClass
	Tile      int     // tile index at Src occupied by this output port
	Bandwidth float64 // bytes/second, this direction
	Latency   sim.Time
}

// Router is one Aries router blade.
type Router struct {
	ID      RouterID
	Group   GroupID
	Chassis int // 0..ChassisPerGroup-1
	Slot    int // 0..SlotsPerChassis-1
}

// Topology is an immutable built dragonfly instance.
type Topology struct {
	Cfg     Config
	Routers []Router
	Links   []Link

	// tile layout (identical for every router)
	tilesPerRouter int
	r2TileBase     int // first rank-2 tile index
	r3TileBase     int // first rank-3 tile index
	procTileBase   int // first processor tile index

	// adjacency
	r1    [][]LinkID // [router][peerSlot] -> link (self slot = -1)
	r2    [][]LinkID // [router][peerChassisIdx*Rank2LinksPerPair+k]
	r3    [][]LinkID // [srcGroup*Groups+dstGroup] -> rank-3 links
	r3Out [][]LinkID // [router] -> outgoing rank-3 links
}

// Build constructs the dragonfly described by cfg.
func Build(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{Cfg: cfg}
	nr := cfg.Routers()
	rpg := cfg.RoutersPerGroup()

	t.Routers = make([]Router, nr)
	for r := 0; r < nr; r++ {
		g := r / rpg
		in := r % rpg
		t.Routers[r] = Router{
			ID:      RouterID(r),
			Group:   GroupID(g),
			Chassis: in / cfg.SlotsPerChassis,
			Slot:    in % cfg.SlotsPerChassis,
		}
	}

	// Tile layout: [rank1 ports][rank2 ports][rank3 ports][proc tiles].
	nR1 := cfg.SlotsPerChassis - 1
	nR2 := (cfg.ChassisPerGroup - 1) * cfg.Rank2LinksPerPair
	nR3 := t.maxR3PortsPerRouter()
	nProc := 2 * cfg.NodesPerRouter // one request + one response tile per NIC
	t.r2TileBase = nR1
	t.r3TileBase = nR1 + nR2
	t.procTileBase = nR1 + nR2 + nR3
	t.tilesPerRouter = nR1 + nR2 + nR3 + nProc

	t.r1 = make([][]LinkID, nr)
	t.r2 = make([][]LinkID, nr)
	t.r3Out = make([][]LinkID, nr)
	for r := range t.r1 {
		t.r1[r] = make([]LinkID, cfg.SlotsPerChassis)
		for i := range t.r1[r] {
			t.r1[r][i] = -1
		}
		t.r2[r] = make([]LinkID, (cfg.ChassisPerGroup-1)*cfg.Rank2LinksPerPair)
		for i := range t.r2[r] {
			t.r2[r][i] = -1
		}
	}
	t.r3 = make([][]LinkID, cfg.Groups*cfg.Groups)

	addLink := func(src, dst RouterID, class LinkClass, tile int, bw float64, lat sim.Time) LinkID {
		id := LinkID(len(t.Links))
		t.Links = append(t.Links, Link{
			ID: id, Src: src, Dst: dst, Class: class, Tile: tile,
			Bandwidth: bw, Latency: lat,
		})
		return id
	}

	// Rank-1: all-to-all within each chassis row.
	for r := 0; r < nr; r++ {
		ri := t.Routers[r]
		base := int(ri.ID) - ri.Slot // first router of this chassis
		for peer := 0; peer < cfg.SlotsPerChassis; peer++ {
			if peer == ri.Slot {
				continue
			}
			// tile index: peers in slot order, skipping self
			tile := peer
			if peer > ri.Slot {
				tile = peer - 1
			}
			id := addLink(ri.ID, RouterID(base+peer), Rank1, tile,
				cfg.Rank1Bandwidth, cfg.Rank1Latency)
			t.r1[r][peer] = id
		}
	}

	// Rank-2: parallel links between same-slot routers of different chassis
	// within a group.
	for r := 0; r < nr; r++ {
		ri := t.Routers[r]
		groupBase := int(ri.Group) * rpg
		pi := 0 // peer chassis index (skipping own chassis)
		for pc := 0; pc < cfg.ChassisPerGroup; pc++ {
			if pc == ri.Chassis {
				continue
			}
			peer := RouterID(groupBase + pc*cfg.SlotsPerChassis + ri.Slot)
			for k := 0; k < cfg.Rank2LinksPerPair; k++ {
				tile := t.r2TileBase + pi*cfg.Rank2LinksPerPair + k
				id := addLink(ri.ID, peer, Rank2, tile,
					cfg.Rank2Bandwidth, cfg.Rank2Latency)
				t.r2[r][pi*cfg.Rank2LinksPerPair+k] = id
			}
			pi++
		}
	}

	// Rank-3: GlobalLinksPerPair optical cables between every pair of
	// groups, endpoints spread deterministically over each group's routers.
	r3PortUsed := make([]int, nr) // next free rank-3 tile slot per router
	for a := 0; a < cfg.Groups; a++ {
		for b := a + 1; b < cfg.Groups; b++ {
			for l := 0; l < cfg.GlobalLinksPerPair; l++ {
				// Spread the parallel cables of one pair across the
				// whole group (stride rpg/L) rather than on adjacent
				// routers, as on the real machine: the funnel toward a
				// destination group then uses several chassis' worth
				// of intra-group links instead of one corner.
				stride := rpg / cfg.GlobalLinksPerPair
				if stride < 1 {
					stride = 1
				}
				ra := RouterID(a*rpg + (b+l*stride)%rpg)
				rb := RouterID(b*rpg + (a+l*stride)%rpg)
				ta := t.r3TileBase + r3PortUsed[ra]%nR3
				tb := t.r3TileBase + r3PortUsed[rb]%nR3
				r3PortUsed[ra]++
				r3PortUsed[rb]++
				ab := addLink(ra, rb, Rank3, ta, cfg.Rank3Bandwidth, cfg.Rank3Latency)
				ba := addLink(rb, ra, Rank3, tb, cfg.Rank3Bandwidth, cfg.Rank3Latency)
				t.r3[a*cfg.Groups+b] = append(t.r3[a*cfg.Groups+b], ab)
				t.r3[b*cfg.Groups+a] = append(t.r3[b*cfg.Groups+a], ba)
				t.r3Out[ra] = append(t.r3Out[ra], ab)
				t.r3Out[rb] = append(t.r3Out[rb], ba)
			}
		}
	}

	return t, nil
}

// maxR3PortsPerRouter computes the rank-3 tile budget: enough for the
// busiest router under the deterministic endpoint spreading.
func (t *Topology) maxR3PortsPerRouter() int {
	cfg := t.Cfg
	rpg := cfg.RoutersPerGroup()
	total := (cfg.Groups - 1) * cfg.GlobalLinksPerPair // endpoints per group
	per := (total + rpg - 1) / rpg
	if per < 1 {
		per = 1
	}
	// Allow slack: spreading is modular, not perfectly balanced.
	return per + 1
}

// NumRouters returns the router count.
func (t *Topology) NumRouters() int { return len(t.Routers) }

// NumNodes returns the active node count.
func (t *Topology) NumNodes() int { return t.Cfg.ActiveNodes }

// TilesPerRouter returns the per-router tile count (network + processor).
func (t *Topology) TilesPerRouter() int { return t.tilesPerRouter }

// TileClassOf classifies tile index `tile` (same layout on every router).
// Processor tiles alternate request, response per NIC.
func (t *Topology) TileClassOf(tile int) TileClass {
	switch {
	case tile < t.r2TileBase:
		return TileRank1
	case tile < t.r3TileBase:
		return TileRank2
	case tile < t.procTileBase:
		return TileRank3
	default:
		if (tile-t.procTileBase)%2 == 0 {
			return TileProcReq
		}
		return TileProcRsp
	}
}

// ProcReqTile returns the request tile index for the i-th NIC of a router.
func (t *Topology) ProcReqTile(i int) int { return t.procTileBase + 2*i }

// ProcRspTile returns the response tile index for the i-th NIC of a router.
func (t *Topology) ProcRspTile(i int) int { return t.procTileBase + 2*i + 1 }

// RouterOfNode maps a node to its router.
func (t *Topology) RouterOfNode(n NodeID) RouterID {
	return RouterID(int(n) / t.Cfg.NodesPerRouter)
}

// NICIndexOfNode returns which of the router's NICs serves node n.
func (t *Topology) NICIndexOfNode(n NodeID) int {
	return int(n) % t.Cfg.NodesPerRouter
}

// GroupOfRouter maps a router to its group.
func (t *Topology) GroupOfRouter(r RouterID) GroupID {
	return GroupID(int(r) / t.Cfg.RoutersPerGroup())
}

// GroupOfNode maps a node to its group.
func (t *Topology) GroupOfNode(n NodeID) GroupID {
	return t.GroupOfRouter(t.RouterOfNode(n))
}

// R1Link returns the rank-1 link from a to b (same group, same chassis) or
// -1 if they are not rank-1 peers.
func (t *Topology) R1Link(a, b RouterID) LinkID {
	ra, rb := t.Routers[a], t.Routers[b]
	if ra.Group != rb.Group || ra.Chassis != rb.Chassis || a == b {
		return -1
	}
	return t.r1[a][rb.Slot]
}

// R2Links returns the parallel rank-2 links from a to b (same group, same
// slot, different chassis), or nil.
func (t *Topology) R2Links(a, b RouterID) []LinkID {
	ra, rb := t.Routers[a], t.Routers[b]
	if ra.Group != rb.Group || ra.Slot != rb.Slot || ra.Chassis == rb.Chassis {
		return nil
	}
	pi := rb.Chassis
	if rb.Chassis > ra.Chassis {
		pi--
	}
	k := t.Cfg.Rank2LinksPerPair
	return t.r2[a][pi*k : pi*k+k]
}

// GlobalLinks returns the rank-3 links from group a to group b.
func (t *Topology) GlobalLinks(a, b GroupID) []LinkID {
	if a == b {
		return nil
	}
	return t.r3[int(a)*t.Cfg.Groups+int(b)]
}

// R3LinksOf returns the outgoing rank-3 links of one router.
func (t *Topology) R3LinksOf(r RouterID) []LinkID { return t.r3Out[r] }

// Link returns the link record for id.
func (t *Topology) Link(id LinkID) *Link { return &t.Links[id] }
