package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("mean = %g", m)
	}
	// Sample std with n-1: variance = 32/7.
	if s := StdDev(xs); !approx(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("std = %g", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/single-sample edge cases")
	}
}

func TestZScores(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	zs := ZScores(xs)
	if !approx(Mean(zs), 0, 1e-12) {
		t.Errorf("z mean = %g", Mean(zs))
	}
	if !approx(StdDev(zs), 1, 1e-12) {
		t.Errorf("z std = %g", StdDev(zs))
	}
	// Constant input: all zeros.
	for _, z := range ZScores([]float64{3, 3, 3}) {
		if z != 0 {
			t.Error("constant input should give zero scores")
		}
	}
}

func TestZScoresAgainst(t *testing.T) {
	zs := ZScoresAgainst([]float64{10, 20}, 10, 5)
	if zs[0] != 0 || zs[1] != 2 {
		t.Errorf("zs = %v", zs)
	}
	zs = ZScoresAgainst([]float64{10}, 0, 0)
	if zs[0] != 0 {
		t.Error("zero std should yield zero scores")
	}
}

func TestFilterOutliers(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 10, 11, 9, 10, 10, 9, 11, 10, 25}
	out := FilterOutliers(xs, 3)
	for _, x := range out {
		if x == 25 {
			t.Fatal("outlier survived")
		}
	}
	if len(out) != len(xs)-1 {
		t.Fatalf("filtered to %d, want %d", len(out), len(xs)-1)
	}
	// Constant data passes through.
	if got := FilterOutliers([]float64{5, 5, 5}, 3); len(got) != 3 {
		t.Error("constant data should pass through")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	multi := Percentiles(xs, []float64{0, 50, 100})
	if multi[0] != 1 || !approx(multi[1], 5.5, 1e-9) || multi[2] != 10 {
		t.Errorf("multi = %v", multi)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, -1, 99}
	h := NewHistogram(xs, 0, 3, 3)
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	// -1 clamps into bin 0, 99 into bin 2.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	// PDF integrates to 1.
	integral := 0.0
	for i := range h.Counts {
		integral += h.PDF(i) * h.BinSize
	}
	if !approx(integral, 1, 1e-12) {
		t.Errorf("pdf integral = %g", integral)
	}
	if !approx(h.BinCenter(1), 1.5, 1e-12) {
		t.Errorf("bin center = %g", h.BinCenter(1))
	}
}

func TestWeightedCCDF(t *testing.T) {
	// Job sizes with core-hour weights.
	xs := []float64{128, 256, 128, 512}
	ws := []float64{10, 20, 30, 40}
	ccdf := WeightedCCDF(xs, ws)
	if len(ccdf) != 3 {
		t.Fatalf("points = %d", len(ccdf))
	}
	// At x=128 all mass is >=128.
	if ccdf[0].X != 128 || !approx(ccdf[0].Frac, 1.0, 1e-12) {
		t.Errorf("ccdf[0] = %+v", ccdf[0])
	}
	if ccdf[1].X != 256 || !approx(ccdf[1].Frac, 0.6, 1e-12) {
		t.Errorf("ccdf[1] = %+v", ccdf[1])
	}
	if ccdf[2].X != 512 || !approx(ccdf[2].Frac, 0.4, 1e-12) {
		t.Errorf("ccdf[2] = %+v", ccdf[2])
	}
	if WeightedCCDF(nil, nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{542, 540, 545, 538, 541, 543}
	b := []float64{482, 480, 485, 479, 483, 481}
	tt, df := WelchT(a, b)
	if tt < 10 {
		t.Errorf("clearly different samples: t = %g", tt)
	}
	if df <= 0 {
		t.Errorf("df = %g", df)
	}
	// Identical distributions: small t.
	tt, _ = WelchT(a, a)
	if tt != 0 {
		t.Errorf("self t = %g", tt)
	}
}

func TestPercentImprovement(t *testing.T) {
	a := []float64{100, 100}
	b := []float64{88, 88}
	if got := PercentImprovement(a, b); !approx(got, 12, 1e-12) {
		t.Errorf("improvement = %g", got)
	}
	if PercentImprovement([]float64{0, 0}, b) != 0 {
		t.Error("zero baseline should return 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %g,%g", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty minmax")
	}
}

// Property: Z-scores of any sample with spread have mean ~0 and std ~1;
// outlier filtering never removes more than it should nor returns more
// elements than given.
func TestStatsProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 3 {
			return true
		}
		if StdDev(xs) > 0 {
			zs := ZScores(xs)
			if !approx(Mean(zs), 0, 1e-6) || !approx(StdDev(zs), 1, 1e-6) {
				return false
			}
		}
		filtered := FilterOutliers(xs, 3)
		if len(filtered) > len(xs) {
			return false
		}
		// Percentiles are monotone.
		ps := Percentiles(xs, []float64{5, 25, 50, 75, 95})
		for i := 1; i < len(ps); i++ {
			if ps[i] < ps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CCDF fractions are monotonically nonincreasing in x and start
// at 1.
func TestCCDFProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		xs := make([]float64, len(sizes))
		ws := make([]float64, len(sizes))
		for i, s := range sizes {
			xs[i] = float64(s%1024) + 1
			ws[i] = float64(s%97) + 1
		}
		ccdf := WeightedCCDF(xs, ws)
		if len(ccdf) == 0 {
			return false
		}
		if !approx(ccdf[0].Frac, 1, 1e-9) {
			return false
		}
		for i := 1; i < len(ccdf); i++ {
			if ccdf[i].Frac > ccdf[i-1].Frac || ccdf[i].X <= ccdf[i-1].X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
