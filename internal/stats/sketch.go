package stats

import "math"

// sketchBins is the default resolution of the streaming quantile sketch.
// The rank-space error of a fixed-grid sketch is bounded by one bin width
// in VALUE space: |estimate - exact| <= (hi-lo)/bins after range growth,
// where [lo, hi) is the final (power-of-two multiple of the initial)
// range. 512 bins keep the worst-case value error under 0.2% of the
// observed range while the whole sketch stays ~4KB — fixed-size no matter
// how many samples stream through it.
const sketchBins = 512

// Sketch is a deterministic fixed-size streaming quantile sketch: a
// fixed-width histogram over a range that grows by doubling. There is no
// randomization anywhere — Add, Merge, and Quantile are pure functions of
// the value sequence — and growth only ever collapses whole bin pairs
// (doubling keeps old bin boundaries aligned with new ones), so the same
// insertion order always yields bit-identical state. Merging folds the
// other sketch's bins in at their centers; campaign pipelines merge in
// seed order, which keeps worker-count invariance by construction.
type Sketch struct {
	lo, hi float64 // current range; values bin uniformly into [lo, hi)
	counts []uint64
	n      uint64
}

// NewSketch builds a sketch with an initial range [lo, hi) and the given
// bin count (rounded up to even; < 2 uses the default resolution). A
// degenerate range (hi <= lo) is widened to one unit, mirroring
// NewHistogram.
func NewSketch(lo, hi float64, bins int) *Sketch {
	if bins < 2 {
		bins = sketchBins
	}
	bins += bins % 2
	if hi <= lo {
		hi = lo + 1
	}
	return &Sketch{lo: lo, hi: hi, counts: make([]uint64, bins)}
}

// Count returns the number of values added.
func (s *Sketch) Count() uint64 { return s.n }

// Range returns the current covered range.
func (s *Sketch) Range() (lo, hi float64) { return s.lo, s.hi }

// binWidth returns the current width of one bin.
func (s *Sketch) binWidth() float64 {
	return (s.hi - s.lo) / float64(len(s.counts))
}

// Add records one value.
func (s *Sketch) Add(x float64) { s.AddN(x, 1) }

// AddN records a value with multiplicity w.
func (s *Sketch) AddN(x float64, w uint64) {
	if w == 0 {
		return
	}
	s.cover(x)
	s.counts[s.binOf(x)] += w
	s.n += w
}

// binOf maps a covered value to its bin, clamping edge cases (x == hi
// after cover, or non-finite values that exhausted the growth budget)
// into the boundary bins.
func (s *Sketch) binOf(x float64) int {
	i := int((x - s.lo) / s.binWidth())
	if i < 0 {
		i = 0
	}
	if i >= len(s.counts) {
		i = len(s.counts) - 1
	}
	return i
}

// cover grows the range by doubling until x falls inside [lo, hi). The
// iteration budget bounds pathological inputs (±Inf, NaN): any finite
// value is reached in well under 4096 doublings from any finite range,
// and non-finite values simply clamp into an edge bin.
func (s *Sketch) cover(x float64) {
	for i := 0; i < 4096 && x < s.lo; i++ {
		s.growDown()
	}
	for i := 0; i < 4096 && x >= s.hi; i++ {
		s.growUp()
	}
}

// growUp doubles the range upward: adjacent bin pairs collapse into the
// lower half and the upper half opens empty.
func (s *Sketch) growUp() {
	b := s.counts
	h := len(b) / 2
	for i := 0; i < h; i++ {
		b[i] = b[2*i] + b[2*i+1]
	}
	for i := h; i < len(b); i++ {
		b[i] = 0
	}
	s.hi = s.lo + 2*(s.hi-s.lo)
}

// growDown doubles the range downward: pairs collapse into the upper
// half (written top-down so no source bin is clobbered before it is
// read) and the lower half opens empty.
func (s *Sketch) growDown() {
	b := s.counts
	h := len(b) / 2
	for i := len(b) - 1; i >= h; i-- {
		b[i] = b[2*(i-h)] + b[2*(i-h)+1]
	}
	for i := 0; i < h; i++ {
		b[i] = 0
	}
	s.lo = s.hi - 2*(s.hi-s.lo)
}

// Merge folds o into s by re-adding each of o's occupied bins at its
// center. The result depends on the merge order (bin centers re-quantize
// into s's grid), so callers that need run-to-run determinism must merge
// in a fixed order — the campaign runners merge in seed order.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	ow := o.binWidth()
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		s.AddN(o.lo+(float64(i)+0.5)*ow, c)
	}
}

// Quantile estimates the p-th percentile (0..100) with the same
// rank-interpolation convention as Percentile: position p/100*(n-1) in
// the sorted order, values assumed uniform within a bin. The error is at
// most one bin width.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	rank := p / 100 * float64(s.n-1)
	if rank < 0 {
		rank = 0
	}
	if rank > float64(s.n-1) {
		rank = float64(s.n - 1)
	}
	w := s.binWidth()
	var cum uint64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		if rank < float64(cum+c) {
			off := (rank - float64(cum) + 0.5) / float64(c)
			if off < 0 {
				off = 0
			}
			if off > 1 {
				off = 1
			}
			return s.lo + (float64(i)+off)*w
		}
		cum += c
	}
	return s.hi
}

// Histogram re-bins the sketch onto a caller-specified fixed grid (the
// streaming replacement for NewHistogram over retained values): each
// occupied sketch bin contributes its count at its center. Resolution is
// limited by the sketch's own bin width.
func (s *Sketch) Histogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), BinSize: (hi - lo) / float64(bins)}
	w := s.binWidth()
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		center := s.lo + (float64(i)+0.5)*w
		j := int((center - lo) / h.BinSize)
		if j < 0 {
			j = 0
		}
		if j >= bins {
			j = bins - 1
		}
		h.Counts[j] += int(c)
		h.Total += int(c)
	}
	return h
}

// clone returns an independent copy.
func (s *Sketch) clone() *Sketch {
	c := *s
	c.counts = append([]uint64(nil), s.counts...)
	return &c
}
