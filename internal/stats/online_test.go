package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// aggFrom folds xs into a fresh default-cap aggregate.
func aggFrom(xs []float64) *Agg {
	a := NewAgg()
	a.AddAll(xs)
	return a
}

// randomValues draws n values from a mix of scales so the sketch sees
// range growth in both directions.
func randomValues(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch r.Intn(3) {
		case 0:
			xs[i] = r.NormFloat64()
		case 1:
			xs[i] = 100 + 50*r.NormFloat64()
		default:
			xs[i] = r.Float64() * 1e-3
		}
	}
	return xs
}

// TestAggExactMatchesBatch pins the exact-mode contract: below the cap,
// every read is bit-identical to the batch function it replaces.
func TestAggExactMatchesBatch(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = float64(i)
			}
		}
		a := aggFrom(xs)
		if !a.Exact() {
			return len(xs) > ExactCap
		}
		if a.Mean() != Mean(xs) || a.Std() != StdDev(xs) {
			return false
		}
		mn, mx := MinMax(xs)
		if a.Min() != mn || a.Max() != mx {
			return false
		}
		for _, p := range []float64{0, 25, 50, 95, 100} {
			got, want := a.Percentile(p), Percentile(xs, p)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				return false
			}
		}
		gotPs := a.Percentiles([]float64{50, 95})
		wantPs := Percentiles(xs, []float64{50, 95})
		for i := range gotPs {
			if gotPs[i] != wantPs[i] && !(math.IsNaN(gotPs[i]) && math.IsNaN(wantPs[i])) {
				return false
			}
		}
		if !reflect.DeepEqual(a.Hist(-1, 1, 8), NewHistogram(xs, -1, 1, 8)) {
			return false
		}
		if !reflect.DeepEqual(a.FilterOutliers(3).Values(), FilterOutliers(xs, 3)) {
			// FilterOutliers on an empty slice returns an empty non-nil
			// slice while an empty Agg holds nil; both read identically.
			return len(xs) == 0 && a.FilterOutliers(3).Count() == 0
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAggExactNormalizedMatchesZScores pins Normalized against
// ZScoresAgainst in exact mode.
func TestAggExactNormalizedMatchesZScores(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := randomValues(r, 100)
	a := aggFrom(xs)
	m, s := MeanStd(xs)
	for _, std := range []float64{s, 0} {
		got := a.Normalized(m, std).Values()
		want := ZScoresAgainst(xs, m, std)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Normalized(std=%v) = %v, want %v", std, got, want)
		}
	}
}

// TestAggStreamingMoments checks that the streaming mean/std/min/max
// agree with the batch computation to floating-point tolerance once the
// aggregate has spilled past its exact cap.
func TestAggStreamingMoments(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := randomValues(r, 5000)
	a := NewAggLimit(64)
	a.AddAll(xs)
	if a.Exact() {
		t.Fatal("aggregate did not spill past its cap")
	}
	if a.Count() != len(xs) {
		t.Fatalf("Count = %d, want %d", a.Count(), len(xs))
	}
	m, s := MeanStd(xs)
	if !approx(a.Mean(), m, 1e-9*math.Abs(m)) {
		t.Fatalf("streaming mean %v, batch %v", a.Mean(), m)
	}
	if !approx(a.Std(), s, 1e-9*s) {
		t.Fatalf("streaming std %v, batch %v", a.Std(), s)
	}
	mn, mx := MinMax(xs)
	if a.Min() != mn || a.Max() != mx {
		t.Fatalf("streaming min/max %v/%v, batch %v/%v", a.Min(), a.Max(), mn, mx)
	}
}

// TestAggMergeSeedOrderDeterminism is the worker-count invariance
// argument in miniature: folding per-chunk aggregates in chunk (seed)
// order must be bit-identical to the sequential fold, for any chunking —
// exact and streaming modes both.
func TestAggMergeSeedOrderDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	xs := randomValues(r, 900)
	for _, limit := range []int{0, 32} { // 0 = default cap (stays exact)
		seq := NewAggLimit(limit)
		if limit == 0 {
			seq = NewAgg()
		}
		seq.AddAll(xs)
		for _, workers := range []int{1, 2, 8} {
			chunks := make([]*Agg, workers)
			for i := range chunks {
				if limit == 0 {
					chunks[i] = NewAgg()
				} else {
					chunks[i] = NewAggLimit(limit)
				}
			}
			// Round-robin like a work-stealing pool would, then merge in
			// chunk order — the runner's seed-order merge.
			for i, x := range xs {
				chunks[i%workers].Add(x)
			}
			merged := NewAgg()
			if limit != 0 {
				merged = NewAggLimit(limit)
			}
			for _, c := range chunks {
				merged.Merge(c)
			}
			// Exact-mode chunks replay in insertion order, so the merged
			// buffer is the round-robin interleave, not xs — but merging
			// the SAME chunks must be bit-identical regardless of how
			// many there are only when the interleave matches. The
			// production pattern is contiguous blocks in index order:
			blocks := make([]*Agg, workers)
			per := (len(xs) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				if limit == 0 {
					blocks[w] = NewAgg()
				} else {
					blocks[w] = NewAggLimit(limit)
				}
				lo, hi := w*per, (w+1)*per
				if hi > len(xs) {
					hi = len(xs)
				}
				blocks[w].AddAll(xs[lo:hi])
			}
			got := NewAgg()
			if limit != 0 {
				got = NewAggLimit(limit)
			}
			for _, b := range blocks {
				got.Merge(b)
			}
			if got.Exact() != seq.Exact() {
				t.Fatalf("limit=%d workers=%d: mode mismatch", limit, workers)
			}
			if got.Exact() {
				if !reflect.DeepEqual(got.Values(), seq.Values()) {
					t.Fatalf("limit=%d workers=%d: merged buffer differs from sequential", limit, workers)
				}
				continue
			}
			// Streaming: block merges are NOT bit-identical to the
			// sequential fold (different float association), but they
			// must be bit-identical across worker counts when the block
			// boundaries are — here we instead pin the weaker, still
			// essential property: statistics agree to tolerance.
			if !approx(got.Mean(), seq.Mean(), 1e-9*math.Abs(seq.Mean())) ||
				!approx(got.Std(), seq.Std(), 1e-9*seq.Std()) ||
				got.Min() != seq.Min() || got.Max() != seq.Max() ||
				got.Count() != seq.Count() {
				t.Fatalf("limit=%d workers=%d: merged stats diverge from sequential", limit, workers)
			}
		}
	}
}

// TestAggMergeExactBitIdentical pins the strong form the campaign relies
// on: with exact-mode per-run aggregates (the production regime — runs
// per figure are far below ExactCap), merging in seed order equals the
// sequential fold exactly, bit for bit, including percentile reads.
func TestAggMergeExactBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	xs := randomValues(r, 240)
	seq := aggFrom(xs)
	for _, workers := range []int{1, 2, 3, 8} {
		merged := NewAgg()
		per := (len(xs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > len(xs) {
				hi = len(xs)
			}
			merged.Merge(aggFrom(xs[lo:hi]))
		}
		if !reflect.DeepEqual(merged, seq) {
			t.Fatalf("workers=%d: merged aggregate state differs from sequential", workers)
		}
		for _, p := range []float64{25, 50, 75, 95, 99} {
			if merged.Percentile(p) != seq.Percentile(p) {
				t.Fatalf("workers=%d: p%v differs", workers, p)
			}
		}
	}
}

// TestSketchErrorBound checks the documented guarantee: streaming
// percentiles land within one sketch bin width of the exact answer.
func TestSketchErrorBound(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		r := rand.New(rand.NewSource(seed))
		xs := randomValues(r, 20000)
		a := NewAggLimit(1)
		a.AddAll(xs)
		if a.Exact() {
			t.Fatal("expected streaming mode")
		}
		lo, hi := a.sk.Range()
		binW := (hi - lo) / float64(len(a.sk.counts))
		for _, p := range []float64{1, 5, 25, 50, 75, 90, 95, 99, 99.9} {
			got := a.Percentile(p)
			want := Percentile(xs, p)
			if math.Abs(got-want) > binW {
				t.Fatalf("seed %d p%v: sketch %v vs exact %v exceeds bin width %v",
					seed, p, got, want, binW)
			}
		}
		// Extremes are exact by construction.
		mn, mx := MinMax(xs)
		if a.Percentile(0) != mn || a.Percentile(100) != mx {
			t.Fatalf("seed %d: p0/p100 not clamped to true extremes", seed)
		}
	}
}

// TestSketchRangeGrowth exercises both growth directions and the merge
// path across disjoint ranges.
func TestSketchRangeGrowth(t *testing.T) {
	s := NewSketch(0, 1, 8)
	s.Add(0.5)
	s.Add(100) // forces upward doubling
	s.Add(-50) // forces downward doubling
	if n := s.Count(); n != 3 {
		t.Fatalf("Count = %d after growth, want 3", n)
	}
	lo, hi := s.Range()
	if lo > -50 || hi <= 100 {
		t.Fatalf("range [%v,%v) does not cover inserted values", lo, hi)
	}
	var total uint64
	for _, c := range s.counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("bin mass %d leaked during growth, want 3", total)
	}

	a := NewSketch(0, 1, 64)
	b := NewSketch(1000, 2000, 64)
	for i := 0; i < 100; i++ {
		a.Add(float64(i) / 100)
		b.Add(1000 + 10*float64(i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d, want 200", a.Count())
	}
	if q := a.Quantile(99); q < 900 {
		t.Fatalf("upper tail lost in merge: p99 = %v", q)
	}
}

// TestSketchDeterminism: identical insertion order → identical state.
func TestSketchDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := randomValues(r, 3000)
	a, b := NewSketch(0, 1, 128), NewSketch(0, 1, 128)
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same insertion order produced different sketch state")
	}
}

// TestWelchTAggMatchesBatch pins the aggregate Welch-t against the batch
// version bit-for-bit in exact mode.
func TestWelchTAggMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	xs, ys := randomValues(r, 40), randomValues(r, 60)
	gt, gdf := WelchTAgg(aggFrom(xs), aggFrom(ys))
	wt, wdf := WelchT(xs, ys)
	if gt != wt || gdf != wdf {
		t.Fatalf("WelchTAgg = (%v,%v), WelchT = (%v,%v)", gt, gdf, wt, wdf)
	}
	if imp := PercentImprovementAgg(aggFrom(xs), aggFrom(ys)); imp != PercentImprovement(xs, ys) {
		t.Fatalf("PercentImprovementAgg = %v, want %v", imp, PercentImprovement(xs, ys))
	}
	// Degenerate guards.
	if tt, df := WelchTAgg(aggFrom(xs[:1]), aggFrom(ys)); tt != 0 || df != 0 {
		t.Fatal("WelchTAgg under-n guard missing")
	}
}

// TestAggEmptyAndNil pins the empty/nil read semantics shared with the
// batch functions.
func TestAggEmptyAndNil(t *testing.T) {
	var nilAgg *Agg
	for _, a := range []*Agg{nilAgg, NewAgg()} {
		if a.Count() != 0 || a.Mean() != 0 || a.Std() != 0 || a.Min() != 0 || a.Max() != 0 || a.Sum() != 0 {
			t.Fatal("empty aggregate reads nonzero")
		}
		if !math.IsNaN(a.Percentile(50)) {
			t.Fatal("empty percentile should be NaN")
		}
		if !a.Exact() {
			t.Fatal("empty aggregate should be exact")
		}
		if h := a.Hist(0, 1, 4); h.Total != 0 {
			t.Fatal("empty histogram has mass")
		}
	}
	a := NewAgg()
	a.Merge(nilAgg)
	a.Merge(NewAgg())
	if a.Count() != 0 {
		t.Fatal("merging empties added values")
	}
}

// TestAggStreamingFilterOutliers checks the streaming outlier filter
// keeps the bulk and drops far spikes.
func TestAggStreamingFilterOutliers(t *testing.T) {
	a := NewAggLimit(1)
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 10000; i++ {
		a.Add(r.NormFloat64())
	}
	a.Add(1000) // a spike far outside 3 sigma
	f := a.FilterOutliers(3)
	if f.Count() >= a.Count() {
		t.Fatalf("filter dropped nothing: %d of %d", f.Count(), a.Count())
	}
	// The surviving mass sits at sketch bin centers, so the bound is
	// 3 sigma plus one bin width (the documented filter error).
	lo, hi := a.sk.Range()
	binW := (hi - lo) / float64(len(a.sk.counts))
	if limit := 3*a.Std() + binW; f.Max() > limit {
		t.Fatalf("spike survived the filter: max %v > %v", f.Max(), limit)
	}
	if f.Count() < 9000 {
		t.Fatalf("filter too aggressive: kept %d of %d", f.Count(), a.Count())
	}
}

// TestAggStreamingNormalized checks the affine transform of a streaming
// aggregate against the batch z-scores to tolerance.
func TestAggStreamingNormalized(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	xs := randomValues(r, 8000)
	a := NewAggLimit(8)
	a.AddAll(xs)
	m, s := MeanStd(xs)
	z := a.Normalized(m, s)
	zs := ZScoresAgainst(xs, m, s)
	bm, bs := MeanStd(zs)
	if !approx(z.Mean(), bm, 1e-6) || !approx(z.Std(), bs, 1e-6) {
		t.Fatalf("normalized stream mean/std (%v,%v) vs batch (%v,%v)", z.Mean(), z.Std(), bm, bs)
	}
	mn, mx := MinMax(zs)
	if !approx(z.Min(), mn, 1e-12) || !approx(z.Max(), mx, 1e-12) {
		t.Fatalf("normalized extremes (%v,%v) vs batch (%v,%v)", z.Min(), z.Max(), mn, mx)
	}
	if z.Normalized(0, 0).Count() != z.Count() {
		t.Fatal("std=0 normalization lost values")
	}
}
