package stats

import "math"

// ExactCap is the default number of values an Agg retains verbatim
// before switching to streaming (Welford moments + quantile sketch)
// mode. Below the cap every read delegates to the batch functions in
// this package over the insertion-order buffer, so results are
// bit-identical to the pre-streaming pipelines — this is what keeps the
// figure/table goldens byte-stable. Above the cap memory is fixed
// (~4KB sketch + a few scalars) regardless of how many values stream
// through; percentile error is then bounded by one sketch bin width
// (see Sketch).
const ExactCap = 4096

// Agg is an online, mergeable aggregate: count/sum/min/max, mean and
// variance, percentiles, and histograms over a value stream, in memory
// bounded by ExactCap. Determinism contract: an Agg's state is a pure
// function of its value insertion order. Merging an exact-mode Agg
// replays its values in insertion order — so folding per-run aggregates
// in seed order reproduces the sequential fold bit-for-bit, and
// worker-count invariance holds by construction. The zero value and nil
// are both empty, ready-to-read aggregates (but Add requires a non-nil
// receiver).
type Agg struct {
	n        uint64
	sum      float64
	min, max float64

	// limit overrides ExactCap: 0 means default, negative means stream
	// from the first value. Tests use NewAggLimit to exercise the
	// streaming path on small inputs.
	limit int

	// exact holds the values in insertion order while n <= cap; nil once
	// spilled to streaming mode.
	exact []float64

	// Streaming state (valid once sk != nil): Welford/West weighted
	// moments and the quantile sketch. wn tracks the total weight folded
	// into the moments.
	wn, mean, m2 float64
	sk           *Sketch
}

// NewAgg returns an empty aggregate with the default exact-mode cap.
func NewAgg() *Agg { return &Agg{} }

// NewAggLimit returns an empty aggregate that holds at most limit values
// exactly before spilling to streaming mode; limit < 1 streams from the
// first value.
func NewAggLimit(limit int) *Agg {
	if limit < 1 {
		limit = -1
	}
	return &Agg{limit: limit}
}

func (a *Agg) capLimit() int {
	switch {
	case a.limit == 0:
		return ExactCap
	case a.limit < 0:
		return 0
	default:
		return a.limit
	}
}

// Add records one value.
func (a *Agg) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.sum += x
	if a.sk == nil {
		if len(a.exact) < a.capLimit() {
			a.exact = append(a.exact, x)
			return
		}
		a.spill()
	}
	a.addMoments(x, 1)
	a.sk.AddN(x, 1)
}

// AddAll records every value in order.
func (a *Agg) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// addN records x with multiplicity w (internal: used by streaming
// transforms that re-deposit sketch bins).
func (a *Agg) addN(x float64, w uint64) {
	if w == 0 {
		return
	}
	if a.sk == nil && len(a.exact)+int(w) <= a.capLimit() {
		for i := uint64(0); i < w; i++ {
			a.Add(x)
		}
		return
	}
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n += w
	a.sum += x * float64(w)
	if a.sk == nil {
		a.spill()
	}
	a.addMoments(x, float64(w))
	a.sk.AddN(x, w)
}

// spill converts the aggregate to streaming mode, replaying the exact
// buffer (in insertion order) into the moments and a fresh sketch
// spanning the observed range.
func (a *Agg) spill() {
	a.sk = NewSketch(a.min, a.max, sketchBins)
	for _, v := range a.exact {
		a.addMoments(v, 1)
		a.sk.AddN(v, 1)
	}
	a.exact = nil
}

// addMoments folds one weighted value into the Welford/West moments.
func (a *Agg) addMoments(x, w float64) {
	a.wn += w
	d := x - a.mean
	r := d * w / a.wn
	a.mean += r
	a.m2 += (a.wn - w) * d * r
}

// Merge folds b into a. An exact-mode b is replayed value-by-value in
// insertion order — equivalent to having Add-ed b's stream after a's, so
// seed-ordered merges are bit-identical to a sequential fold. A
// streaming b combines moments with the Chan et al. parallel update and
// merges sketches. b is not modified.
func (a *Agg) Merge(b *Agg) {
	if b == nil || b.n == 0 {
		return
	}
	if b.sk == nil {
		for _, x := range b.exact {
			a.Add(x)
		}
		return
	}
	if a.n == 0 {
		a.min, a.max = b.min, b.max
	} else {
		if b.min < a.min {
			a.min = b.min
		}
		if b.max > a.max {
			a.max = b.max
		}
	}
	a.n += b.n
	a.sum += b.sum
	if a.sk == nil {
		a.spill()
	}
	w := a.wn + b.wn
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*a.wn*b.wn/w
	a.mean += d * b.wn / w
	a.wn = w
	a.sk.Merge(b.sk)
}

// Clone returns an independent copy of the aggregate.
func (a *Agg) Clone() *Agg {
	if a == nil {
		return &Agg{}
	}
	c := *a
	c.exact = append([]float64(nil), a.exact...)
	if a.sk != nil {
		c.sk = a.sk.clone()
	}
	return &c
}

// Count returns the number of values folded in.
func (a *Agg) Count() int {
	if a == nil {
		return 0
	}
	return int(a.n)
}

// Sum returns the running sum.
func (a *Agg) Sum() float64 {
	if a == nil {
		return 0
	}
	return a.sum
}

// Min returns the smallest value seen (0 if empty, matching MinMax).
func (a *Agg) Min() float64 {
	if a == nil || a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest value seen (0 if empty, matching MinMax).
func (a *Agg) Max() float64 {
	if a == nil || a.n == 0 {
		return 0
	}
	return a.max
}

// Exact reports whether the aggregate still holds every value verbatim
// (reads are bit-identical to the batch functions).
func (a *Agg) Exact() bool { return a == nil || a.sk == nil }

// Values returns the insertion-order buffer in exact mode, nil once
// streaming. Callers must not mutate it.
func (a *Agg) Values() []float64 {
	if a == nil {
		return nil
	}
	return a.exact
}

// Mean returns the arithmetic mean (0 if empty, matching Mean).
func (a *Agg) Mean() float64 {
	if a == nil || a.n == 0 {
		return 0
	}
	if a.sk == nil {
		return Mean(a.exact)
	}
	return a.mean
}

// Std returns the sample standard deviation (n-1; 0 below two values,
// matching StdDev).
func (a *Agg) Std() float64 {
	if a == nil || a.n < 2 {
		return 0
	}
	if a.sk == nil {
		return StdDev(a.exact)
	}
	return math.Sqrt(a.m2 / (a.wn - 1))
}

// Percentile returns the p-th percentile: exact (batch Percentile) below
// the cap, sketch estimate clamped to the true observed [min, max]
// above it. NaN if empty, matching Percentile.
func (a *Agg) Percentile(p float64) float64 {
	if a == nil || a.n == 0 {
		return math.NaN()
	}
	if a.sk == nil {
		return Percentile(a.exact, p)
	}
	if p <= 0 {
		return a.min
	}
	if p >= 100 {
		return a.max
	}
	q := a.sk.Quantile(p)
	if q < a.min {
		q = a.min
	}
	if q > a.max {
		q = a.max
	}
	return q
}

// Percentiles returns the given percentiles, sorting the exact buffer
// once (matching Percentiles) or querying the sketch per point.
func (a *Agg) Percentiles(ps []float64) []float64 {
	if a == nil || a.sk == nil {
		return Percentiles(a.Values(), ps)
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = a.Percentile(p)
	}
	return out
}

// Hist bins the aggregate onto a fixed grid: exact mode delegates to
// NewHistogram over the retained values; streaming mode re-bins the
// sketch.
func (a *Agg) Hist(lo, hi float64, bins int) *Histogram {
	if a == nil || a.sk == nil {
		return NewHistogram(a.Values(), lo, hi, bins)
	}
	return a.sk.Histogram(lo, hi, bins)
}

// FilterOutliers returns a new aggregate keeping values within k
// standard deviations of the mean. Exact mode replays the batch
// FilterOutliers result in order (bit-identical downstream); streaming
// mode keeps the sketch bins whose centers fall inside the band (error
// bounded by one bin width, like the quantiles).
func (a *Agg) FilterOutliers(k float64) *Agg {
	if a == nil || a.n == 0 {
		return &Agg{}
	}
	if a.sk == nil {
		out := &Agg{limit: a.limit}
		out.AddAll(FilterOutliers(a.exact, k))
		return out
	}
	m, s := a.Mean(), a.Std()
	if s == 0 {
		return a.Clone()
	}
	out := &Agg{limit: -1}
	w := a.sk.binWidth()
	for i, c := range a.sk.counts {
		if c == 0 {
			continue
		}
		center := a.sk.lo + (float64(i)+0.5)*w
		if math.Abs(center-m) <= k*s {
			out.addN(center, c)
		}
	}
	return out
}

// Normalized returns an aggregate of (x-mean)/std over a's values,
// matching ZScoresAgainst (std == 0 maps every value to 0). Exact mode
// transforms each retained value in order; streaming mode transforms the
// moments and sketch affinely.
func (a *Agg) Normalized(mean, std float64) *Agg {
	if a == nil || a.n == 0 {
		return &Agg{}
	}
	out := &Agg{limit: a.limit}
	if a.sk == nil {
		for _, x := range a.exact {
			if std == 0 {
				out.Add(0)
			} else {
				out.Add((x - mean) / std)
			}
		}
		return out
	}
	if std == 0 {
		out.addN(0, a.n)
		return out
	}
	out.n = a.n
	out.sum = (a.sum - mean*float64(a.n)) / std
	out.min = (a.min - mean) / std
	out.max = (a.max - mean) / std
	out.wn = a.wn
	out.mean = (a.mean - mean) / std
	out.m2 = a.m2 / (std * std)
	out.sk = &Sketch{
		lo:     (a.sk.lo - mean) / std,
		hi:     (a.sk.hi - mean) / std,
		counts: append([]uint64(nil), a.sk.counts...),
		n:      a.sk.n,
	}
	return out
}

// WelchTAgg computes Welch's t statistic and degrees of freedom between
// two aggregates, with the same arithmetic and guards as WelchT.
func WelchTAgg(a, b *Agg) (t, df float64) {
	na, nb := a.Count(), b.Count()
	if na < 2 || nb < 2 {
		return 0, 0
	}
	ma, sa := a.Mean(), a.Std()
	mb, sb := b.Mean(), b.Std()
	va := sa * sa / float64(na)
	vb := sb * sb / float64(nb)
	if va+vb == 0 {
		return 0, 0
	}
	t = (ma - mb) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(na-1) + vb*vb/float64(nb-1))
	return t, df
}

// PercentImprovementAgg mirrors PercentImprovement over two aggregates:
// (mean(a)-mean(b))/mean(a) * 100, 0 when a's mean is 0.
func PercentImprovementAgg(a, b *Agg) float64 {
	ma := a.Mean()
	if ma == 0 {
		return 0
	}
	return (ma - b.Mean()) / ma * 100
}
