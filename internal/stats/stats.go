// Package stats provides the statistical machinery the paper's analysis
// uses: mean/σ, Z-score normalization, percentiles, histogram PDFs, CCDFs,
// the ±3σ outlier filter applied to run samples, and a Welch t-test used
// to check that reported improvements are significant.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 when
// fewer than two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanStd returns both moments in one pass over the data.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// ZScores normalizes xs to zero mean and unit standard deviation. When the
// deviation is zero every score is zero.
func ZScores(xs []float64) []float64 {
	m, s := MeanStd(xs)
	out := make([]float64, len(xs))
	if s == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / s
	}
	return out
}

// ZScoresAgainst normalizes xs using an externally supplied mean and
// deviation (the paper normalizes each job size against the pooled mean of
// both routing modes).
func ZScoresAgainst(xs []float64, mean, std float64) []float64 {
	out := make([]float64, len(xs))
	if std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out
}

// FilterOutliers removes samples more than k standard deviations from the
// mean — the paper removes ±3σ outliers attributed to extreme congestion
// events, amounting to <1% of samples.
func FilterOutliers(xs []float64, k float64) []float64 {
	m, s := MeanStd(xs)
	if s == 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-m) <= k*s {
			out = append(out, x)
		}
	}
	return out
}

// Percentile returns the p-th percentile (0..100) by linear interpolation
// between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Percentiles computes several percentiles with a single sort.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram is a fixed-width binned density estimate.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Total   int
	BinSize float64
}

// NewHistogram bins xs into `bins` equal-width bins spanning [lo, hi].
// Samples outside the range are clamped into the edge bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), BinSize: (hi - lo) / float64(bins)}
	for _, x := range xs {
		i := int((x - lo) / h.BinSize)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// PDF returns the probability density of bin i (integrates to ~1).
func (h *Histogram) PDF(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total) / h.BinSize
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinSize
}

// CCDFPoint is one point of a complementary CDF.
type CCDFPoint struct {
	X    float64
	Frac float64 // fraction of mass at values >= X
}

// WeightedCCDF computes the complementary cumulative distribution of
// weight over x: for each distinct x, the fraction of total weight at
// values >= x. This is the form of the paper's Fig. 1 (core-hours vs job
// size).
func WeightedCCDF(xs, weights []float64) []CCDFPoint {
	if len(xs) != len(weights) || len(xs) == 0 {
		return nil
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, len(xs))
	total := 0.0
	for i := range xs {
		ps[i] = pair{xs[i], weights[i]}
		total += weights[i]
	}
	if total == 0 {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	// Collapse duplicates, then accumulate from the top.
	var merged []pair
	for _, p := range ps {
		if len(merged) > 0 && merged[len(merged)-1].x == p.x {
			merged[len(merged)-1].w += p.w
		} else {
			merged = append(merged, p)
		}
	}
	out := make([]CCDFPoint, len(merged))
	tail := 0.0
	for i := len(merged) - 1; i >= 0; i-- {
		tail += merged[i].w
		out[i] = CCDFPoint{X: merged[i].x, Frac: tail / total}
	}
	return out
}

// WelchT returns the Welch t-statistic and approximate degrees of freedom
// for the difference of means between two samples. |t| >~ 2 indicates a
// significant difference at the usual 95% level for the sample sizes used
// in the paper (>30 runs).
func WelchT(a, b []float64) (t, df float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	va, vb := sa*sa/float64(len(a)), sb*sb/float64(len(b))
	if va+vb == 0 {
		return 0, 0
	}
	t = (ma - mb) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1))
	return t, df
}

// PercentImprovement returns how much smaller b's mean is than a's, in
// percent (positive = b improved over a), the paper's headline metric.
func PercentImprovement(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	if ma == 0 {
		return 0
	}
	return (ma - mb) / ma * 100
}

// MinMax returns the extrema (0,0 for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
