package viz

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("scaling broken: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should yield empty string")
	}
	// Constant input: all minimum.
	for _, r := range Sparkline([]float64{5, 5, 5}) {
		if r != '▁' {
			t.Errorf("constant input rendered %q", r)
		}
	}
}

func TestHeatStrip(t *testing.T) {
	s := HeatStrip([]float64{0, 0.25, 0.5, 0.75, 1}, 1)
	runes := []rune(s)
	if len(runes) != 5 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != ' ' || runes[4] != '#' {
		t.Errorf("intensity scaling broken: %q", s)
	}
	// Auto-max path.
	s2 := HeatStrip([]float64{0, 2, 4}, 0)
	if []rune(s2)[2] != '#' {
		t.Errorf("auto max broken: %q", s2)
	}
}

func TestGroupHeatmap(t *testing.T) {
	values := make([]float64, 8)
	values[3] = 1.0
	values[7] = 0.5
	out := GroupHeatmap(values, 4)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "g0") || !strings.HasPrefix(lines[1], "g1") {
		t.Errorf("captions: %v", lines)
	}
	if !strings.Contains(lines[0], "max=1.00") {
		t.Errorf("row max missing: %s", lines[0])
	}
	if GroupHeatmap(nil, 4) != "" || GroupHeatmap(values, 0) != "" {
		t.Error("degenerate inputs should yield empty output")
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"AD0", "AD3"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %s", lines[0])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("half bar wrong: %s", lines[1])
	}
}
