// Package viz renders small text visualizations for terminal output:
// sparkline series for counter time series and heat-strips for per-router
// distributions, standing in for the paper's scatter/trend plots.
package viz

import (
	"fmt"
	"strings"
)

// sparkRunes are eight vertical bar levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a compact bar series scaled to [min, max].
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// heatRunes are five intensity levels for heat strips.
var heatRunes = []rune(" .:*#")

// HeatStrip renders values as an intensity strip with a shared scale
// [0, max]; useful for per-router ratio maps (one character per router).
func HeatStrip(xs []float64, max float64) string {
	if max <= 0 {
		for _, x := range xs {
			if x > max {
				max = x
			}
		}
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if max > 0 {
			idx = int(x / max * float64(len(heatRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(heatRunes) {
			idx = len(heatRunes) - 1
		}
		b.WriteRune(heatRunes[idx])
	}
	return b.String()
}

// GroupHeatmap renders per-router values as one heat-strip row per
// dragonfly group (routersPerGroup wide), with a caption per row. Values
// beyond full groups are ignored.
func GroupHeatmap(values []float64, routersPerGroup int) string {
	if routersPerGroup <= 0 || len(values) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	groups := len(values) / routersPerGroup
	for g := 0; g < groups; g++ {
		row := values[g*routersPerGroup : (g+1)*routersPerGroup]
		fmt.Fprintf(&b, "g%-3d |%s| max=%.2f\n", g, HeatStrip(row, max), rowMax(row))
	}
	return b.String()
}

func rowMax(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram renders counts as horizontal bars with labels.
func Histogram(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-12s %8.3g %s\n", label, v, strings.Repeat("#", n))
	}
	return b.String()
}
